#!/usr/bin/env python3
"""A cost-based optimizer session backed by a statistics catalog.

Builds a per-tag statistics catalog for an XMark-like document once (as a
DBMS would at load time), then answers a stream of optimizer requests —
join-size estimates, chain join ordering, twig selectivities — without
ever touching the base data again.

Run:  python examples/catalog_optimizer.py
"""

from repro.catalog import StatisticsCatalog
from repro.core.budget import SpaceBudget
from repro.datasets import generate_xmark
from repro.estimators.base import Estimate, Estimator
from repro.join import containment_join_size
from repro.optimizer import optimize, plan_cost
from repro.optimizer.twig import estimate_twig_selectivity, twig, twig_semijoin_count


class CatalogEstimator(Estimator):
    """Adapter: estimates joins by catalogued tag names."""

    name = "CATALOG"

    def __init__(self, catalog: StatisticsCatalog) -> None:
        self.catalog = catalog

    def estimate(self, ancestors, descendants, workspace=None) -> Estimate:
        return self.catalog.estimate_join(ancestors.name, descendants.name)


def main() -> None:
    dataset = generate_xmark(scale=0.2, seed=21)
    tree = dataset.tree
    budget = SpaceBudget(800)
    catalog = StatisticsCatalog(tree, budget)
    print(f"document: {tree.size} elements, {len(catalog)} tags catalogued, "
          f"catalog size {catalog.nbytes()} bytes "
          f"({budget} per tag)\n")

    estimator = CatalogEstimator(catalog)

    # 1. Point estimates vs truth, straight from the catalog.
    print("join-size estimates (no base-data access):")
    for anc, desc in [("item", "name"), ("desp", "listitem"),
                      ("open_auction", "text")]:
        a, d = dataset.node_set(anc), dataset.node_set(desc)
        true = containment_join_size(a, d)
        estimate = catalog.estimate_join(anc, desc)
        print(f"  {anc:13s} // {desc:9s} true {true:7d}  "
              f"est {estimate.value:9.1f}  "
              f"({estimate.relative_error(true):6.2f}%)")

    # 2. Chain join ordering from catalog estimates.
    tags = ["desp", "parlist", "listitem", "text"]
    sets = [dataset.node_set(tag) for tag in tags]
    plan = optimize(sets, estimator)
    print(f"\nchain {' // '.join(tags)}:")
    print(f"  chosen plan {plan.describe(tags)}, "
          f"estimated intermediate cost {plan_cost(plan):.0f}")

    # 3. Twig predicate selectivity.
    pattern = twig("open_auction", twig("annotation", "text"), "reserve")
    selectivity = estimate_twig_selectivity(
        dataset.node_set, pattern, estimator, tree.workspace()
    )
    actual = twig_semijoin_count(dataset.node_set, pattern)
    total = len(dataset.node_set("open_auction"))
    print(f"\ntwig predicate //{pattern}:")
    print(f"  estimated selectivity {selectivity * 100:.1f}%, "
          f"actual {actual}/{total} = {actual / total * 100:.1f}%")


if __name__ == "__main__":
    main()
