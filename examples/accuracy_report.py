#!/usr/bin/env python3
"""Mini version of the paper's overall-performance experiment (Fig. 5/6).

Runs PH, PL, IM and PM over a full Table 3 workload at one space budget
and prints the per-query relative errors — like one panel of Figure 5 —
on a document scale of your choosing.

Run:  python examples/accuracy_report.py [--dataset xmark|dblp|xmach]
                                         [--budget 400] [--scale 0.2]
                                         [--runs 5]
"""

import argparse

from repro.core.budget import SpaceBudget
from repro.datasets import ALL_WORKLOADS, generate_dblp, generate_xmach, generate_xmark
from repro.experiments.harness import evaluate, paper_methods
from repro.experiments.report import format_table

GENERATORS = {
    "xmark": generate_xmark,
    "dblp": generate_dblp,
    "xmach": generate_xmach,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=sorted(GENERATORS), default="xmark")
    parser.add_argument("--budget", type=int, default=400,
                        help="space budget in bytes (paper: 200/400/800)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="document scale factor (1.0 = Table 2 sizes)")
    parser.add_argument("--runs", type=int, default=5,
                        help="repetitions for the sampling methods")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = GENERATORS[args.dataset](scale=args.scale, seed=args.seed)
    queries = ALL_WORKLOADS[args.dataset]
    budget = SpaceBudget(args.budget)
    print(f"dataset: {args.dataset} at scale {args.scale} "
          f"({dataset.tree.size} elements); budget {budget} => "
          f"{budget.ph_buckets} PH cells / {budget.pl_buckets} PL buckets / "
          f"{budget.samples} samples; {args.runs} runs\n")

    rows = evaluate(dataset, queries, paper_methods(budget),
                    runs=args.runs, seed=args.seed)
    print(format_table(
        ["query", "ancestor", "descendant", "true size", "PH", "PL", "IM", "PM"],
        [[r.query.id, r.query.ancestor, r.query.descendant, r.true_size,
          r.errors["PH"], r.errors["PL"], r.errors["IM"], r.errors["PM"]]
         for r in rows],
        title="relative error (%) per query",
    ))


if __name__ == "__main__":
    main()
