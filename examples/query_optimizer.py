#!/usr/bin/env python3
"""Cost-based containment-join ordering — the paper's motivating use case.

The introduction's example: evaluating ``//paper[appendix/table]`` needs a
join order, and the better order depends on intermediate result sizes.
This script plays that scenario on an XMark-like document with the chain

    open_auction // annotation // text

and a deeper four-way chain, comparing the plans chosen by three
pluggable cardinality generators — IM-DA-Est sampling, the pessimistic
upper bound, and the exact oracle — against the true cost of every
possible parenthesization.

Run:  python examples/query_optimizer.py
"""

from itertools import count

from repro.datasets import generate_xmark
from repro.optimizer import optimize, plan_cost, resolve_generator
from repro.optimizer.regret import all_plans, true_plan_cost

GENERATORS = {
    "IM": lambda: resolve_generator("IM", num_samples=100, seed=11),
    "UBOUND": lambda: resolve_generator("UBOUND"),
    "EXACT": lambda: resolve_generator("EXACT"),
}


def analyze(dataset, tags: list[str]) -> None:
    node_sets = [dataset.node_set(tag) for tag in tags]
    workspace = dataset.tree.workspace()
    print(f"chain query: {' // '.join(tags)}")
    print("  operand sizes:", {t: len(s) for t, s in zip(tags, node_sets)})

    chosen_shapes = {}
    for name, factory in GENERATORS.items():
        chosen = optimize(node_sets, factory(), workspace=workspace)
        chosen_shapes[name] = chosen.describe(tags)
        print(f"  {name:6s} plan {chosen.describe(tags)}: "
              f"estimated cost {plan_cost(chosen):.0f}, "
              f"true cost {true_plan_cost(chosen, node_sets)}")

    # Exhaustive comparison: how good were the choices?
    candidates = all_plans(0, len(node_sets) - 1)
    ranked = sorted(
        (true_plan_cost(plan, node_sets), plan.describe(tags))
        for plan in candidates
    )
    print("  all parenthesizations by true cost:")
    for rank, (cost, description) in zip(count(1), ranked):
        pickers = [n for n, shape in chosen_shapes.items()
                   if shape == description]
        marker = f" <= {', '.join(pickers)}" if pickers else ""
        print(f"    {rank}. {description}: {cost}{marker}")
    print()


def main() -> None:
    dataset = generate_xmark(scale=0.2, seed=5)
    print(f"document: {dataset.tree.size} elements\n")
    analyze(dataset, ["open_auction", "annotation", "text"])
    analyze(dataset, ["desp", "parlist", "listitem", "text"])


if __name__ == "__main__":
    main()
