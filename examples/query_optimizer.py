#!/usr/bin/env python3
"""Cost-based containment-join ordering — the paper's motivating use case.

The introduction's example: evaluating ``//paper[appendix/table]`` needs a
join order, and the better order depends on intermediate result sizes.
This script plays that scenario on an XMark-like document with the chain

    open_auction // annotation // text

and a deeper four-way chain, comparing the plan chosen from IM-DA-Est
estimates against the true cost of every possible parenthesization.

Run:  python examples/query_optimizer.py
"""

from itertools import count

from repro.datasets import generate_xmark
from repro.estimators import IMSamplingEstimator
from repro.optimizer import chain_join_size, optimize_chain, plan_cost
from repro.optimizer.planner import JoinPlan


def all_plans(lo: int, hi: int, sizes) -> list[JoinPlan]:
    """Enumerate every parenthesization of the segment (for the report)."""
    if lo == hi:
        return [JoinPlan(lo, hi, sizes[lo][hi])]
    plans = []
    for split in range(lo, hi):
        for left in all_plans(lo, split, sizes):
            for right in all_plans(split + 1, hi, sizes):
                plans.append(JoinPlan(lo, hi, sizes[lo][hi], left, right))
    return plans


def true_cost(plan: JoinPlan, node_sets, is_root: bool = True) -> int:
    """Exact total intermediate-result size of a plan."""
    if plan.is_leaf:
        return 0
    own = (
        0
        if is_root
        else chain_join_size(node_sets[plan.lo : plan.hi + 1])
    )
    return (
        own
        + true_cost(plan.left, node_sets, False)
        + true_cost(plan.right, node_sets, False)
    )


def analyze(dataset, tags: list[str]) -> None:
    node_sets = [dataset.node_set(tag) for tag in tags]
    workspace = dataset.tree.workspace()
    print(f"chain query: {' // '.join(tags)}")
    print("  operand sizes:", {t: len(s) for t, s in zip(tags, node_sets)})

    estimator = IMSamplingEstimator(num_samples=100, seed=11)
    chosen = optimize_chain(node_sets, estimator, workspace)
    print(f"  chosen plan:  {chosen.describe(tags)}")
    print(f"  estimated intermediate cost: {plan_cost(chosen):.0f}")
    print(f"  true intermediate cost:      {true_cost(chosen, node_sets)}")

    # Exhaustive comparison: how good was the choice?
    k = len(node_sets)
    sizes = [[0.0] * k for _ in range(k)]
    candidates = all_plans(0, k - 1, sizes)
    ranked = sorted(
        (true_cost(plan, node_sets), plan.describe(tags))
        for plan in candidates
    )
    print("  all parenthesizations by true cost:")
    for rank, (cost, description) in zip(count(1), ranked):
        marker = " <= chosen" if description == chosen.describe(tags) else ""
        print(f"    {rank}. {description}: {cost}{marker}")
    print()


def main() -> None:
    dataset = generate_xmark(scale=0.2, seed=5)
    print(f"document: {dataset.tree.size} elements\n")
    analyze(dataset, ["open_auction", "annotation", "text"])
    analyze(dataset, ["desp", "parlist", "listitem", "text"])


if __name__ == "__main__":
    main()
