#!/usr/bin/env python3
"""Quickstart: estimate a containment join size five different ways.

Generates a small XMark-like document, picks the Table 3 query
``item // name`` and compares every estimator against the exact join size
computed by the stack-tree structural join.

Run:  python examples/quickstart.py
"""

from repro.core.budget import SpaceBudget
from repro.datasets import generate_xmark
from repro.estimators import make_estimator
from repro.join import containment_join_size

def main() -> None:
    # A ~5% scale document: ~13k elements, generated in milliseconds.
    dataset = generate_xmark(scale=0.05, seed=7)
    tree = dataset.tree
    print(f"generated {dataset.name}: {tree.size} elements, "
          f"height {tree.height}, workspace {tuple(tree.workspace())}")

    ancestors = dataset.node_set("item")
    descendants = dataset.node_set("name")
    true_size = containment_join_size(ancestors, descendants)
    print(f"\nquery: item // name   |A| = {len(ancestors)}, "
          f"|D| = {len(descendants)}, exact join size = {true_size}\n")

    budget = SpaceBudget(800)  # the paper's largest budget: 800 bytes
    configs = [
        ("PH", {"budget": budget}),
        ("PL", {"budget": budget}),
        ("IM", {"budget": budget, "seed": 42}),
        ("PM", {"budget": budget, "seed": 42}),
        ("COV", {"budget": budget, "mode": "local"}),
    ]
    print(f"{'method':8s} {'estimate':>12s} {'rel. error':>12s}")
    for name, kwargs in configs:
        estimate = make_estimator(name, **kwargs).estimate(
            ancestors, descendants, tree.workspace()
        )
        print(f"{name:8s} {estimate.value:12.1f} "
              f"{estimate.relative_error(true_size):11.2f}%")

    # The PL histogram also reports its MRE confidence measure.
    pl = make_estimator("PL", budget=budget)
    estimate = pl.estimate(ancestors, descendants, tree.workspace())
    print(f"\nPL diagnostics: average cov = "
          f"{estimate.details['average_cov']:.3f}, MRE = {estimate.mre:.3f}")


if __name__ == "__main__":
    main()
