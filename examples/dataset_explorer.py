#!/usr/bin/env python3
"""Explore the synthetic datasets: statistics, XML round-trips, indexes.

* generates all three calibrated datasets at a small scale and prints
  their Table 2-style statistics;
* serializes a tiny document to XML text and parses it back, verifying
  that region codes survive the round trip;
* builds a T-tree and an XR-tree over an ancestor set and cross-checks
  their stabbing counts.

Run:  python examples/dataset_explorer.py
"""

from repro.datasets import generate_dblp, generate_xmach, generate_xmark
from repro.index import StabbingCounter, TTree, XRTree
from repro.xmltree import parse_xml, to_xml


def show_statistics() -> None:
    for generator in (generate_xmark, generate_dblp, generate_xmach):
        dataset = generator(scale=0.1, seed=123)
        print(f"== {dataset.name}: {dataset.tree.size} elements, "
              f"height {dataset.tree.height}")
        for stats in dataset.statistics():
            target = round(stats.paper_count * 0.1)
            print(f"   {stats.predicate:14s} {stats.count:6d} "
                  f"(scaled target ~{target:6d})  {stats.overlap_label}")
        print()


def show_round_trip() -> None:
    tiny = generate_dblp(scale=0.0005, seed=9)
    xml_text = to_xml(tiny.tree)
    print("== tiny DBLP document as XML:")
    print(xml_text)
    reparsed = parse_xml(xml_text)
    same = [
        (a.tag, a.start, a.end) == (b.tag, b.start, b.end)
        for a, b in zip(tiny.tree.elements, reparsed.elements)
    ]
    print(f"round trip: {reparsed.size} elements, "
          f"region codes identical: {all(same)}\n")


def show_indexes() -> None:
    dataset = generate_xmark(scale=0.05, seed=3)
    ancestors = dataset.node_set("parlist")  # a self-nesting set
    ttree = TTree(ancestors)
    xrtree = XRTree(ancestors)
    oracle = StabbingCounter(ancestors)
    probes = [e.start + 1 for e in ancestors.elements[:5]]
    print(f"== index probes over {len(ancestors)} parlist intervals "
          f"({ttree.turning_point_count} turning points):")
    for position in probes:
        print(f"   position {position}: rank oracle={oracle.count(position)} "
              f"T-tree={ttree.count(position)} "
              f"XR-tree={xrtree.stab_count(position)}")


def main() -> None:
    show_statistics()
    show_round_trip()
    show_indexes()


if __name__ == "__main__":
    main()
