#!/usr/bin/env python3
"""Extensions tour: disk-resident probing, sketch/wavelet, semijoins.

Shows the pieces that go beyond the paper's core algorithms:

1. element sets serialized to 4 KiB page files, probed through an LRU
   buffer pool, with per-probe page-access accounting (the Section 5.3.1
   cost argument);
2. the future-work estimators of Section 7 — an AGMS sketch and a Haar
   wavelet synopsis over the position-model tables;
3. XPath-predicate selectivities (containment semijoins) with their
   sampling estimators;
4. hard cardinality bounds and estimate clamping.

Run:  python examples/disk_and_extensions.py
"""

import tempfile
from pathlib import Path

from repro.core.budget import SpaceBudget
from repro.datasets import generate_xmark
from repro.estimators import (
    IMSamplingEstimator,
    SketchEstimator,
    WaveletEstimator,
    clamp_estimate,
    join_size_bounds,
)
from repro.estimators.base import Estimate
from repro.estimators.semijoin_sampling import SemijoinAncestorsEstimator
from repro.join import containment_join_size, semijoin_ancestors_size
from repro.storage import DiskNodeSet, im_da_est_disk, write_node_set


def main() -> None:
    dataset = generate_xmark(scale=0.2, seed=11)
    tree = dataset.tree
    ancestors = dataset.node_set("desp")
    descendants = dataset.node_set("text")
    true = containment_join_size(ancestors, descendants)
    print(f"document: {tree.size} elements; desp//text exact size = {true}\n")

    # 1. Disk-resident probing -----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        write_node_set(base / "desp.db", ancestors)
        write_node_set(base / "text.db", descendants)
        with DiskNodeSet(base / "desp.db", buffer_capacity=32) as disk_a:
            with DiskNodeSet(base / "text.db") as disk_d:
                result = im_da_est_disk(disk_a, disk_d, num_samples=100,
                                        seed=3)
        print("1. IM-DA-Est over page files:")
        print(f"   estimate {result.estimate:.0f} "
              f"(error {abs(result.estimate - true) / true * 100:.1f}%), "
              f"{result.accesses_per_probe:.1f} page accesses per probe, "
              f"{result.misses_per_probe:.2f} misses per probe\n")

    # 2. Future-work estimators ----------------------------------------
    budget = SpaceBudget(800)
    workspace = tree.workspace()
    sketch = SketchEstimator(budget=budget, seed=5).estimate(
        ancestors, descendants, workspace
    )
    wavelet = WaveletEstimator(budget=budget).estimate(
        ancestors, descendants, workspace
    )
    sampled = IMSamplingEstimator(budget=budget, seed=5).estimate(
        ancestors, descendants, workspace
    )
    print("2. future-work estimators at 800 bytes:")
    for label, estimate in (
        ("AGMS sketch", sketch),
        ("Haar wavelet", wavelet),
        ("IM-DA-Est", sampled),
    ):
        print(f"   {label:13s} {estimate.value:10.0f} "
              f"({estimate.relative_error(true):6.2f}%)")
    print()

    # 3. Semijoin selectivities ----------------------------------------
    auctions = dataset.node_set("open_auction")
    reserves = dataset.node_set("reserve")
    matching = semijoin_ancestors_size(auctions, reserves)
    estimated = SemijoinAncestorsEstimator(num_samples=100, seed=7).estimate(
        auctions, reserves
    )
    print("3. predicate selectivity //open_auction[reserve]:")
    print(f"   exact {matching}/{len(auctions)} "
          f"({matching / len(auctions) * 100:.1f}%), "
          f"sampled estimate {estimated.value:.0f}\n")

    # 4. Bounds and clamping -------------------------------------------
    bounds = join_size_bounds(ancestors, descendants)
    wild = Estimate(true * 100.0, "WILD")
    clamped = clamp_estimate(wild, ancestors, descendants)
    print("4. structural bounds:")
    print(f"   0 <= |A ⋈ D| <= {bounds.upper} (true {true})")
    print(f"   a wild estimate of {wild.value:.0f} clamps to "
          f"{clamped.value:.0f}")


if __name__ == "__main__":
    main()
