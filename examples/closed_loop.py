#!/usr/bin/env python3
"""Closing the loop: feedback-driven routing and error correction.

Every other example is open-loop — an estimate is produced and its
accuracy is never seen again.  This one wires the loop shut:

1. serve with a UCB1 bandit **router** choosing the answering method
   per query class (PL histogram / IM / PM sampling / the structural
   BOUND) while a **feedback store** records every answer;
2. feed the exact join sizes back in with ``observe_truth`` so the
   bandit's reward — mean relative error per arm — becomes observable;
3. fit a **correction model** on the accumulated (estimate, exact)
   pairs and serve again, showing the corrected answers and the
   disclosed ``corrected_from`` detail.

Routing is a pure function of (seed, feedback history), so this script
prints the same routes and values on every run.

Run:  PYTHONPATH=src python examples/closed_loop.py
"""

import repro
from repro.datasets import generate_xmark
from repro.join import containment_join_size


def main() -> None:
    dataset = generate_xmark(scale=0.05, seed=7)
    queries = [
        (dataset.node_set("item"), dataset.node_set("name")),
        (dataset.node_set("listitem"), dataset.node_set("text")),
        (dataset.node_set("keyword"), dataset.node_set("bold")),
    ]
    exacts = [float(containment_join_size(a, d)) for a, d in queries]

    # Arms the router chooses between.  Sample counts are pinned per
    # arm so a pull is reproducible; BOUND is the closed-form
    # structural bound, answered inline.
    def arms_for(a, d):
        samples = max(1, min(len(a), len(d)) // 4)
        return {
            "PL": {"num_buckets": 16},
            "IM": {"num_samples": samples, "seed": 11},
            "PM": {"num_samples": samples, "seed": 11},
            "BOUND": {},
        }

    store = repro.FeedbackStore()
    for (a, d), exact in zip(queries, exacts):
        store.observe_truth(a, d, exact)  # truth source: the exact join

    router = repro.resolve_router("ucb1", seed=7, exploration=0.1)
    rounds = 8
    print(f"phase 1 — bandit routing, {rounds} rounds x "
          f"{len(queries)} queries\n")
    print(f"{'round':>5s}  {'query':<18s} {'routed':>6s} "
          f"{'estimate':>12s} {'rel. error':>10s}")
    with repro.serve(workers=0, router=router, feedback=store,
                     memoize=False) as service:
        for rnd in range(rounds):
            for qi, ((a, d), exact) in enumerate(zip(queries, exacts)):
                config = dict(arms_for(a, d)["IM"])
                config["seed"] = 1_000 * rnd + qi
                response = service.estimate(a, d, "IM", **config)
                err = response.estimate.relative_error(exact)
                if rnd in (0, rounds - 1):
                    label = f"{a.name}//{d.name}"
                    print(f"{rnd:5d}  {label:<18s} "
                          f"{response.routed_method:>6s} "
                          f"{response.estimate.value:12.1f} "
                          f"{err:9.1f}%")
            if rnd == 0:
                print("  ...")

    print("\narm pulls per query class (what the bandit learned):")
    for qc in store.classes():
        pulls = {m: s.count for m, s in store.method_stats(qc).items()}
        print(f"  {qc:<24s} {pulls}")

    # Phase 2: fit the correction model on everything the loop saw.
    model = repro.CorrectionModel()
    report = model.fit(store)
    fitted = {c: row for c, row in report.items() if row["fitted"]}
    print(f"\nphase 2 — correction model: {len(fitted)}/{len(report)} "
          f"cells fitted")
    for cell, row in sorted(fitted.items()):
        print(f"  {cell:<32s} MRE {row['mre_before']:7.2%} "
              f"-> {row['mre_after']:7.2%}")

    print("\ncorrected answers (same requests, correction enabled):")
    with repro.serve(workers=0, router=repro.resolve_router("ucb1", seed=7),
                     feedback=repro.FeedbackStore(), correction=model,
                     memoize=False) as service:
        for (a, d), exact in zip(queries, exacts):
            config = dict(arms_for(a, d)["IM"])
            config["seed"] = 0
            response = service.estimate(a, d, "IM", **config)
            details = response.estimate.details
            raw = details.get("corrected_from", response.estimate.value)
            label = f"{a.name}//{d.name}"
            print(f"  {label:<18s} raw {raw:10.1f} "
                  f"corrected {response.estimate.value:10.1f} "
                  f"exact {exact:10.1f}")


if __name__ == "__main__":
    main()
