"""Tests for repro.estimators.base and the registry."""

import math

import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators import available_estimators, make_estimator
from repro.estimators.base import Estimate, Estimator


class TestEstimate:
    def test_relative_error(self):
        estimate = Estimate(90.0, "X")
        assert estimate.relative_error(100) == pytest.approx(10.0)
        assert Estimate(110.0, "X").relative_error(100) == pytest.approx(10.0)

    def test_relative_error_zero_truth(self):
        # The true_size == 0 branch: an exactly-zero estimate is a
        # perfect answer, anything else is infinitely wrong (the paper
        # leaves this case undefined; this pins our convention).
        assert Estimate(0.0, "X").relative_error(0) == 0.0
        assert Estimate(5.0, "X").relative_error(0) == math.inf
        assert Estimate(1e-300, "X").relative_error(0) == math.inf

    def test_signed_relative_error(self):
        assert Estimate(90.0, "X").signed_relative_error(100) == (
            pytest.approx(-10.0)
        )
        assert Estimate(110.0, "X").signed_relative_error(100) == (
            pytest.approx(10.0)
        )
        assert Estimate(100.0, "X").signed_relative_error(100) == 0.0

    def test_signed_relative_error_zero_truth(self):
        assert Estimate(0.0, "X").signed_relative_error(0) == 0.0
        assert Estimate(5.0, "X").signed_relative_error(0) == math.inf

    def test_signed_matches_unsigned_magnitude(self):
        for value, truth in ((37.0, 50), (63.0, 50), (0.0, 7), (12.0, 0)):
            estimate = Estimate(value, "X")
            assert abs(estimate.signed_relative_error(truth)) == (
                pytest.approx(estimate.relative_error(truth))
            )

    def test_defaults(self):
        estimate = Estimate(1.0, "X")
        assert estimate.mre is None
        assert estimate.details == {}


class TestResolveWorkspace:
    def test_explicit_passthrough(self):
        workspace = Workspace(1, 9)
        a = NodeSet([Element("a", 1, 2)])
        assert Estimator.resolve_workspace(a, a, workspace) == workspace

    def test_spans_both_operands(self):
        a = NodeSet([Element("a", 5, 9)])
        d = NodeSet([Element("d", 1, 3)])
        assert Estimator.resolve_workspace(a, d, None) == Workspace(1, 9)

    def test_single_nonempty_operand(self):
        a = NodeSet([Element("a", 5, 9)])
        assert Estimator.resolve_workspace(a, NodeSet([]), None) == (
            Workspace(5, 9)
        )

    def test_both_empty(self):
        workspace = Estimator.resolve_workspace(NodeSet([]), NodeSet([]), None)
        assert workspace.width >= 1

    def test_invalid_explicit_workspace_rejected(self):
        a = NodeSet([Element("a", 1, 2)])
        with pytest.raises(Exception):
            Estimator.resolve_workspace(a, a, Workspace(5, 4))


class TestRegistry:
    def test_available(self):
        names = available_estimators()
        assert {
            "PL", "PH", "IM", "PM", "COV", "CROSS", "SYS", "BIFOCAL",
            "SKETCH", "WAVELET", "SEMI-D", "SEMI-A", "2SAMPLE",
        } <= set(names)
        assert names == sorted(names)

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("PL", {"num_buckets": 10}),
            ("PH", {"num_cells": 25}),
            ("IM", {"num_samples": 10, "seed": 0}),
            ("PM", {"num_samples": 10, "seed": 0}),
            ("COV", {"num_buckets": 10}),
            ("CROSS", {"num_samples": 10, "seed": 0}),
            ("SYS", {"num_samples": 10, "seed": 0}),
            ("BIFOCAL", {"num_samples": 10, "seed": 0}),
            ("SKETCH", {"num_counters": 10, "depth": 2, "seed": 0}),
            ("WAVELET", {"num_coefficients": 10}),
            ("SEMI-D", {"num_samples": 3, "seed": 0}),
            ("SEMI-A", {"num_samples": 3, "seed": 0}),
            ("2SAMPLE", {"num_samples": 3, "seed": 0}),
        ],
    )
    def test_construct_each(self, name, kwargs, figure1_tree):
        a, d = figure1_tree
        estimator = make_estimator(name, **kwargs)
        assert estimator.name == name
        result = estimator.estimate(a, d, Workspace(1, 22))
        assert result.value >= 0.0

    def test_case_insensitive(self):
        assert make_estimator("pl", num_buckets=4).name == "PL"

    def test_unknown_name(self):
        with pytest.raises(EstimationError, match="unknown estimator"):
            make_estimator("ORACLE9000")
