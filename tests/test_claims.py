"""Tests for the claims scoreboard (small-scale run)."""

import pytest

from repro.experiments.claims import ClaimResult, render_claims, verify_all


@pytest.fixture(scope="module")
def results():
    return verify_all(scale=0.1, runs=2, seed=0)


class TestClaims:
    def test_all_pass_at_small_scale(self, results):
        failed = [r.claim for r in results if not r.passed]
        assert not failed

    def test_coverage(self, results):
        sources = {r.source for r in results}
        assert any("Theorem 1" in s for s in sources)
        assert any("Theorem 2" in s for s in sources)
        assert any("Table 2" in s for s in sources)
        assert any("Table 4" in s for s in sources)
        assert any("Figure 5" in s for s in sources)
        assert any("Figure 7" in s for s in sources)
        assert any("Figure 8" in s for s in sources)

    def test_measured_fields_populated(self, results):
        for result in results:
            assert result.measured
            assert isinstance(result, ClaimResult)

    def test_render(self, results):
        text = render_claims(results)
        assert "Reproduction scoreboard" in text
        assert "PASS" in text
        assert "FAIL" not in text

    def test_render_shows_failures(self):
        fake = [ClaimResult("x", "y", False, "z")]
        assert "FAIL" in render_claims(fake)
