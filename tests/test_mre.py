"""Tests for repro.estimators.mre: Equation 2 and the Figure 3 curve."""

import math

import pytest

from repro.estimators.mre import cov_value, maximum_relative_error, mre_series


class TestCovValue:
    def test_basic(self):
        # cov = l / w * n_D
        assert cov_value(5.0, 10, 50.0) == pytest.approx(1.0)
        assert cov_value(2.0, 30, 60.0) == pytest.approx(1.0)

    def test_zero_descendants(self):
        assert cov_value(5.0, 0, 50.0) == 0.0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            cov_value(1.0, 1, 0.0)


class TestMaximumRelativeError:
    def test_zero_cov(self):
        assert maximum_relative_error(0.0) == 0.0

    def test_unbounded_below_one(self):
        """The paper: MRE is unbounded when 0 < cov < 1."""
        assert maximum_relative_error(0.5) == math.inf
        assert maximum_relative_error(0.999) == math.inf

    def test_integer_cov_is_exact(self):
        for cov in (1.0, 2.0, 5.0, 10.0):
            assert maximum_relative_error(cov) == 0.0

    def test_half_values(self):
        # cov = 1.5: max((2-1.5)/2, (1.5-1)/1) = 0.5
        assert maximum_relative_error(1.5) == pytest.approx(0.5)
        # cov = 2.5: max((3-2.5)/3, 0.5/2) = 0.25
        assert maximum_relative_error(2.5) == pytest.approx(0.25)

    def test_bounded_above_one(self):
        """0 <= MRE < 1 whenever cov >= 1 (Section 4.2)."""
        for i in range(100, 1001):
            cov = i / 100.0
            assert 0.0 <= maximum_relative_error(cov) < 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            maximum_relative_error(-0.1)


class TestFigure3Curve:
    def test_series_shape(self):
        points = mre_series(1.0, 10.0, 0.01)
        assert points[0] == (1.0, 0.0)
        assert points[-1][0] == pytest.approx(10.0)
        assert len(points) == 901

    def test_sawtooth_period_maxima_decrease(self):
        """Figure 3: the maximum MRE within each unit period decreases."""
        points = mre_series(1.0, 10.0, 0.001)
        maxima = []
        for period in range(1, 10):
            values = [
                error for cov, error in points if period <= cov < period + 1
            ]
            maxima.append(max(values))
        assert maxima == sorted(maxima, reverse=True)
        assert maxima[0] < 1.0

    def test_zero_at_integers(self):
        points = dict(mre_series(1.0, 10.0, 0.5))
        for integer in range(1, 11):
            assert points[float(integer)] == 0.0

    def test_bad_step(self):
        with pytest.raises(ValueError):
            mre_series(step=0.0)
