"""Bench-report schema: checked-in artifacts and drift detection."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.qa.bench_schema import (
    BenchSchemaError,
    schema_kind_for_path,
    validate_bench_file,
    validate_bench_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


class TestCheckedInArtifacts:
    def test_artifacts_exist(self):
        assert {p.name for p in BENCH_FILES} == {
            "BENCH_kernels.json",
            "BENCH_optimizer.json",
            "BENCH_router.json",
            "BENCH_sampling.json",
            "BENCH_service.json",
            "BENCH_stream.json",
        }

    @pytest.mark.parametrize(
        "path", BENCH_FILES, ids=[p.name for p in BENCH_FILES]
    )
    def test_checked_in_report_matches_schema(self, path):
        kind = validate_bench_file(path)
        assert kind == path.stem[len("BENCH_"):]

    def test_optimizer_artifact_gate_invariants(self):
        """The checked-in regret report satisfies the CI gates: exact
        oracle regret 0 everywhere, the pessimistic bound never below a
        true intermediate size, and a meaningful sweep width."""
        data = json.loads(
            (REPO_ROOT / "BENCH_optimizer.json").read_text()
        )
        assert data["generators"]["EXACT"]["max_regret"] == 0.0
        assert (
            data["generators"]["UBOUND"]["underestimated_segments"] == 0
        )
        assert len(data["generators"]) >= 4
        for chain in data["chains"]:
            assert chain["plans"]["EXACT"]["regret"] == 0.0
            assert chain["plans"]["UBOUND"]["underestimated_segments"] == 0


class TestKindDetection:
    def test_kind_from_any_directory(self, tmp_path):
        assert (
            schema_kind_for_path(tmp_path / "BENCH_sampling.json")
            == "sampling"
        )

    def test_non_bench_name_rejected(self):
        with pytest.raises(BenchSchemaError):
            schema_kind_for_path("results.json")

    def test_unknown_kind_rejected(self):
        with pytest.raises(BenchSchemaError, match="unknown bench report"):
            schema_kind_for_path("BENCH_mystery.json")

    def test_unknown_kind_in_validate(self):
        with pytest.raises(BenchSchemaError):
            validate_bench_report({}, "mystery")


class TestDriftDetection:
    """Mutations of the real artifacts must fail validation."""

    @pytest.fixture()
    def sampling(self):
        return json.loads(
            (REPO_ROOT / "BENCH_sampling.json").read_text()
        )

    def test_missing_required_key(self, sampling):
        del sampling["identical"]
        with pytest.raises(BenchSchemaError, match="identical"):
            validate_bench_report(sampling, "sampling")

    def test_wrong_type(self, sampling):
        sampling["speedup"] = "fast"
        with pytest.raises(BenchSchemaError, match="speedup"):
            validate_bench_report(sampling, "sampling")

    def test_bool_is_not_a_number(self, sampling):
        sampling["speedup"] = True
        with pytest.raises(BenchSchemaError, match="speedup"):
            validate_bench_report(sampling, "sampling")

    def test_nested_backend_shape_enforced(self, sampling):
        first = next(iter(sampling["backends"]))
        del sampling["backends"][first]["trials"]
        with pytest.raises(BenchSchemaError, match="trials"):
            validate_bench_report(sampling, "sampling")

    def test_unknown_extra_key_is_allowed(self, sampling):
        sampling["future_section"] = {"anything": 1}
        validate_bench_report(sampling, "sampling")

    def test_optimizer_plan_shape_enforced(self):
        optimizer = json.loads(
            (REPO_ROOT / "BENCH_optimizer.json").read_text()
        )
        chain = optimizer["chains"][0]
        first = next(iter(chain["plans"]))
        del chain["plans"][first]["regret"]
        with pytest.raises(BenchSchemaError, match="regret"):
            validate_bench_report(optimizer, "optimizer")

    def test_kernels_service_section_optional(self):
        kernels = json.loads(
            (REPO_ROOT / "BENCH_kernels.json").read_text()
        )
        kernels.pop("service", None)
        validate_bench_report(kernels, "kernels")
        kernels["parallel"] = None  # --skip-parallel writes null
        validate_bench_report(kernels, "kernels")
