"""Tests for repro.estimators.bifocal and repro.estimators.boosting."""

import statistics

import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.bifocal import BifocalEstimator, dense_runs
from repro.estimators.boosting import BoostedEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def operands():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    a = dataset.node_set("desp")
    d = dataset.node_set("text")
    return a, d, dataset.tree.workspace(), containment_join_size(a, d)


class TestDenseRuns:
    def test_figure1_threshold_two(self, figure1_tree):
        a, __ = figure1_tree
        runs = dense_runs(a, threshold=2)
        # PMA reaches 2 on [2, 7] and [18, 21].
        assert runs == [(2, 7, 2), (18, 21, 2)]

    def test_threshold_one_covers_everything_covered(self, figure1_tree):
        a, __ = figure1_tree
        runs = dense_runs(a, threshold=1)
        covered = sum(last - first + 1 for first, last, __ in runs)
        assert covered == 22  # the whole [1, 22] workspace is covered

    def test_high_threshold_empty(self, figure1_tree):
        a, __ = figure1_tree
        assert dense_runs(a, threshold=3) == []

    def test_empty_set(self):
        assert dense_runs(NodeSet([]), threshold=1) == []


class TestBifocalEstimator:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            BifocalEstimator()

    def test_invalid_threshold(self):
        with pytest.raises(EstimationError):
            BifocalEstimator(num_samples=5, threshold=0)

    def test_threshold_one_is_exact(self, figure1_tree):
        """τ=1 makes every covered position dense -> fully exact estimate."""
        a, d = figure1_tree
        estimator = BifocalEstimator(num_samples=5, seed=0, threshold=1)
        result = estimator.estimate(a, d, Workspace(1, 22))
        assert result.value == 6.0
        assert result.details["sparse_estimate"] == 0.0

    def test_degenerates_to_pm_when_no_dense(self, operands):
        """Section 5's simplification claim: with H < τ, bifocal == PM-Est
        in distribution (no dense runs, pure position sampling)."""
        a, d, workspace, __ = operands
        result = BifocalEstimator(num_samples=50, seed=9).estimate(
            a, d, workspace
        )
        assert result.details["dense_runs"] == 0
        assert result.details["dense_exact"] == 0

    def test_unbiased(self, operands):
        a, d, workspace, true = operands
        estimator = BifocalEstimator(num_samples=200, seed=31)
        estimates = [
            estimator.estimate(a, d, workspace).value for __ in range(300)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.10

    def test_forced_low_threshold_reduces_variance(self, operands):
        """Moving mass to the exact dense part shrinks the spread."""
        a, d, workspace, true = operands
        plain = [
            BifocalEstimator(num_samples=50, seed=s)
            .estimate(a, d, workspace)
            .value
            for s in range(40)
        ]
        assisted = [
            BifocalEstimator(num_samples=50, seed=s, threshold=1)
            .estimate(a, d, workspace)
            .value
            for s in range(40)
        ]
        assert statistics.pstdev(assisted) < statistics.pstdev(plain)

    def test_empty_operands(self):
        estimator = BifocalEstimator(num_samples=5, seed=0)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0


class TestBoosting:
    def test_invalid_groups(self):
        base = IMSamplingEstimator(num_samples=5, seed=0)
        with pytest.raises(EstimationError):
            BoostedEstimator(base, s1=0)
        with pytest.raises(EstimationError):
            BoostedEstimator(base, s2=0)

    def test_single_group_single_run_equals_one_draw(self, operands):
        a, d, workspace, __ = operands
        base = IMSamplingEstimator(num_samples=20, seed=77)
        boosted = BoostedEstimator(base, s1=1, s2=1)
        reference = IMSamplingEstimator(num_samples=20, seed=77).estimate(
            a, d, workspace
        )
        assert boosted.estimate(a, d, workspace).value == reference.value

    def test_details(self, operands):
        a, d, workspace, __ = operands
        base = PMSamplingEstimator(num_samples=30, seed=5)
        result = BoostedEstimator(base, s1=3, s2=5).estimate(a, d, workspace)
        assert result.details["base"] == "PM"
        assert len(result.details["group_averages"]) == 5
        assert result.estimator == "BOOST"

    def test_boosting_reduces_error_spread(self, operands):
        """Section 5.3.2: median-of-means tightens the estimate."""
        a, d, workspace, true = operands
        raw = [
            PMSamplingEstimator(num_samples=30, seed=s)
            .estimate(a, d, workspace)
            .value
            for s in range(30)
        ]
        boosted = [
            BoostedEstimator(
                PMSamplingEstimator(num_samples=30, seed=1000 + s), s1=3, s2=5
            )
            .estimate(a, d, workspace)
            .value
            for s in range(30)
        ]
        raw_spread = statistics.pstdev(raw)
        boosted_spread = statistics.pstdev(boosted)
        assert boosted_spread < raw_spread
