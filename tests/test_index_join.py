"""Tests for repro.join.index_join: XR-tree and B+-tree assisted joins."""

import pytest

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.index.bplus import BPlusTree
from repro.index.xrtree import XRTree
from repro.join import (
    descendant_start_index,
    nested_loop_join,
    probe_ancestors_join,
    probe_descendants_join,
)


def pair_codes(pairs):
    return sorted((a.start, d.start) for a, d in pairs)


class TestProbeAncestorsJoin:
    def test_matches_reference_on_figure1(self, figure1_tree):
        a, d = figure1_tree
        assert pair_codes(probe_ancestors_join(a, d)) == pair_codes(
            nested_loop_join(a, d)
        )

    def test_accepts_prebuilt_index(self, figure1_tree):
        a, d = figure1_tree
        xrtree = XRTree(a, page_size=2)
        assert pair_codes(probe_ancestors_join(xrtree, d)) == pair_codes(
            nested_loop_join(a, d)
        )

    def test_self_join_excludes_identity(self):
        a = NodeSet([Element("a", 1, 10), Element("a", 2, 9)])
        pairs = probe_ancestors_join(a, a)
        assert pair_codes(pairs) == [(1, 2)]

    def test_empty(self, figure1_tree):
        a, __ = figure1_tree
        assert probe_ancestors_join(a, NodeSet([])) == []
        assert probe_ancestors_join(NodeSet([]), a) == []

    def test_matches_on_dataset(self, xmark_small):
        a = xmark_small.node_set("open_auction")
        d = xmark_small.node_set("reserve")
        assert pair_codes(probe_ancestors_join(a, d)) == pair_codes(
            nested_loop_join(a, d)
        )


class TestProbeDescendantsJoin:
    def test_matches_reference_on_figure1(self, figure1_tree):
        a, d = figure1_tree
        assert pair_codes(probe_descendants_join(a, d)) == pair_codes(
            nested_loop_join(a, d)
        )

    def test_accepts_prebuilt_index(self, figure1_tree):
        a, d = figure1_tree
        index = descendant_start_index(d)
        assert isinstance(index, BPlusTree)
        assert pair_codes(probe_descendants_join(a, index)) == pair_codes(
            nested_loop_join(a, d)
        )

    def test_strict_boundaries(self):
        # d.start must lie strictly inside (a.start, a.end).
        a = NodeSet([Element("a", 5, 10)])
        d = NodeSet(
            [Element("d", 5, 10**5), Element("d", 10, 10**5 + 1)],
            validate=False,
        )
        assert probe_descendants_join(a, d) == []

    def test_empty(self, figure1_tree):
        a, __ = figure1_tree
        assert probe_descendants_join(a, NodeSet([])) == []
        assert probe_descendants_join(NodeSet([]), a) == []

    def test_matches_on_dataset(self, xmark_small):
        a = xmark_small.node_set("parlist")
        d = xmark_small.node_set("listitem")
        assert pair_codes(probe_descendants_join(a, d)) == pair_codes(
            nested_loop_join(a, d)
        )

    def test_index_reuse_across_joins(self, xmark_small):
        """The amortization case: one descendant index, many ancestors."""
        d = xmark_small.node_set("text")
        index = descendant_start_index(d)
        for anc_tag in ("desp", "parlist", "open_auction"):
            a = xmark_small.node_set(anc_tag)
            assert pair_codes(
                probe_descendants_join(a, index)
            ) == pair_codes(nested_loop_join(a, d)), anc_tag
