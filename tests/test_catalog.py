"""Tests for repro.catalog and the two-sample estimator."""

import statistics

import pytest

from repro.catalog import StatisticsCatalog
from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.two_sample import TwoSampleEstimator
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def dataset():
    from repro.datasets import generate_xmark

    return generate_xmark(scale=0.05, seed=101)


class TestTwoSampleEstimator:
    def test_requires_size(self):
        with pytest.raises(EstimationError):
            TwoSampleEstimator()
        with pytest.raises(EstimationError):
            TwoSampleEstimator(num_samples=0)

    def test_budget_split(self):
        assert TwoSampleEstimator(budget=SpaceBudget(800)).num_samples == 50

    def test_full_samples_exact(self, dataset):
        a = dataset.node_set("desp")
        d = dataset.node_set("text")
        estimator = TwoSampleEstimator(num_samples=10**9, seed=0)
        assert estimator.estimate(a, d).value == containment_join_size(a, d)

    def test_unbiased(self, dataset):
        a = dataset.node_set("desp")
        d = dataset.node_set("text")
        true = containment_join_size(a, d)
        estimates = [
            TwoSampleEstimator(num_samples=80, seed=s).estimate(a, d).value
            for s in range(200)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.10

    def test_higher_variance_than_im(self, dataset):
        """Synopsis-only probing costs accuracy vs full-data probing."""
        from repro.estimators.im_sampling import IMSamplingEstimator

        a = dataset.node_set("desp")
        d = dataset.node_set("text")
        two_sample = [
            TwoSampleEstimator(num_samples=60, seed=s).estimate(a, d).value
            for s in range(40)
        ]
        im = [
            IMSamplingEstimator(num_samples=60, seed=s)
            .estimate(a, d)
            .value
            for s in range(40)
        ]
        assert statistics.pstdev(two_sample) > statistics.pstdev(im)

    def test_empty(self):
        estimator = TwoSampleEstimator(num_samples=5, seed=0)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0


class TestStatisticsCatalog:
    def test_histogram_catalog_build(self, dataset):
        catalog = StatisticsCatalog(dataset.tree, SpaceBudget(400))
        assert "item" in catalog
        assert catalog.cardinality("item") == len(dataset.node_set("item"))
        assert len(catalog) == len(dataset.tree.tags())

    def test_unknown_tag(self, dataset):
        catalog = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), tags=["item"]
        )
        with pytest.raises(EstimationError):
            catalog.entry("unknown")

    def test_restricted_tags(self, dataset):
        catalog = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), tags=["item", "name"]
        )
        assert catalog.tags == ["item", "name"]

    def test_invalid_method(self, dataset):
        with pytest.raises(EstimationError):
            StatisticsCatalog(
                dataset.tree, SpaceBudget(400), method="oracle"
            )

    def test_histogram_estimates_match_direct_pl(self, dataset):
        """Catalog estimation == running PL directly, same bucket count."""
        from repro.estimators.pl_histogram import PLHistogramEstimator

        budget = SpaceBudget(400)
        catalog = StatisticsCatalog(dataset.tree, budget)
        buckets = max(1, budget.pl_buckets // 2)
        direct = PLHistogramEstimator(num_buckets=buckets)
        for anc, desc in [("item", "name"), ("desp", "text")]:
            via_catalog = catalog.estimate_join(anc, desc).value
            directly = direct.estimate(
                dataset.node_set(anc),
                dataset.node_set(desc),
                dataset.tree.workspace(),
            ).value
            assert via_catalog == pytest.approx(directly)

    @pytest.mark.parametrize("num_shards", [2, 3, 7])
    def test_sharded_build_matches_unsharded(self, dataset, num_shards):
        """K per-shard builds merged == the one-pass build.

        Bucket counts are integer sums and must match bit-exactly;
        per-bucket total_length is the same float sum re-bracketed at
        shard seams, so it gets the merge layer's 1e-12 contract.
        """
        budget = SpaceBudget(400)
        plain = StatisticsCatalog(dataset.tree, budget)
        sharded = StatisticsCatalog(
            dataset.tree, budget, num_shards=num_shards
        )
        assert sharded.num_shards == num_shards
        assert sharded.tags == plain.tags
        for tag in plain.tags:
            theirs, mine = plain.entry(tag), sharded.entry(tag)
            assert mine.cardinality == theirs.cardinality
            for role in ("ancestor_histogram", "descendant_histogram"):
                a, b = getattr(theirs, role), getattr(mine, role)
                assert len(a) == len(b)
                for ref, got in zip(a.buckets, b.buckets):
                    assert (got.wss, got.wse) == (ref.wss, ref.wse)
                    assert got.n == ref.n
                    assert got.total_length == pytest.approx(
                        ref.total_length, rel=1e-12, abs=1e-12
                    )

    def test_sharded_estimates_track_unsharded(self, dataset):
        """Plan-time answers from a sharded catalog agree to rounding."""
        plain = StatisticsCatalog(dataset.tree, SpaceBudget(400))
        sharded = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), num_shards=4
        )
        for anc, desc in [("item", "name"), ("desp", "text")]:
            assert sharded.estimate_join(anc, desc).value == pytest.approx(
                plain.estimate_join(anc, desc).value, rel=1e-9
            )

    def test_sharded_more_shards_than_elements(self, dataset):
        """Tags with cardinality below K still build (empty shards skip)."""
        tiny = min(
            dataset.tree.tags(),
            key=lambda tag: len(dataset.node_set(tag)),
        )
        sharded = StatisticsCatalog(
            dataset.tree,
            SpaceBudget(400),
            tags=[tiny],
            num_shards=len(dataset.node_set(tiny)) + 3,
        )
        plain = StatisticsCatalog(dataset.tree, SpaceBudget(400), tags=[tiny])
        mine = sharded.entry(tiny).ancestor_histogram
        theirs = plain.entry(tiny).ancestor_histogram
        assert [b.n for b in mine.buckets] == [b.n for b in theirs.buckets]

    def test_invalid_num_shards(self, dataset):
        with pytest.raises(EstimationError):
            StatisticsCatalog(dataset.tree, SpaceBudget(400), num_shards=0)

    def test_sample_mode_ignores_sharding(self, dataset):
        """One global draw keeps the sample uniform across shard counts."""
        plain = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), method="sample", seed=7
        )
        sharded = StatisticsCatalog(
            dataset.tree,
            SpaceBudget(400),
            method="sample",
            seed=7,
            num_shards=3,
        )
        for tag in plain.tags:
            assert sharded.entry(tag).sample == plain.entry(tag).sample

    def test_sample_catalog_unbiased(self, dataset):
        a = dataset.node_set("desp")
        d = dataset.node_set("text")
        true = containment_join_size(a, d)
        estimates = []
        for seed in range(120):
            catalog = StatisticsCatalog(
                dataset.tree,
                SpaceBudget(800),
                method="sample",
                seed=seed,
                tags=["desp", "text"],
            )
            estimates.append(catalog.estimate_join("desp", "text").value)
        assert abs(statistics.fmean(estimates) - true) / true < 0.15

    def test_size_accounting(self, dataset):
        budget = SpaceBudget(400)
        catalog = StatisticsCatalog(
            dataset.tree, budget, tags=["item", "name", "desp"]
        )
        total = catalog.nbytes()
        assert total > 0
        # Within a small factor of tags * per-tag budget (the +8 counters
        # and rounding keep it near, never wildly above).
        assert total <= 3 * (budget.nbytes + 16)

    def test_sample_entry_size_bounded(self, dataset):
        budget = SpaceBudget(200)
        catalog = StatisticsCatalog(
            dataset.tree, budget, method="sample", seed=0, tags=["text"]
        )
        entry = catalog.entry("text")
        assert len(entry.sample) <= budget.samples // 2
        assert entry.nbytes() <= budget.nbytes + 8

    def test_estimates_usable_for_optimization(self, dataset):
        """End-to-end: catalog feeds the chain optimizer."""
        from repro.optimizer import optimize

        catalog = StatisticsCatalog(dataset.tree, SpaceBudget(800))

        class CatalogEstimator:
            name = "CATALOG"

            def estimate(self, a, d, workspace=None):
                return catalog.estimate_join(a.name, d.name)

        sets = [
            dataset.node_set(tag)
            for tag in ("open_auction", "annotation", "text")
        ]
        plan = optimize(sets, CatalogEstimator())
        assert not plan.is_leaf


class TestCatalogPersistence:
    def test_histogram_catalog_round_trip(self, dataset, tmp_path):
        from repro.catalog import load_catalog, save_catalog

        original = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), tags=["item", "name", "desp"]
        )
        save_catalog(original, tmp_path / "catalog.json")
        restored = load_catalog(tmp_path / "catalog.json")
        assert restored.tags == original.tags
        assert restored.method == original.method
        for anc, desc in [("item", "name"), ("desp", "name")]:
            assert restored.estimate_join(anc, desc).value == (
                original.estimate_join(anc, desc).value
            )

    def test_sample_catalog_round_trip(self, dataset, tmp_path):
        from repro.catalog import load_catalog, save_catalog

        original = StatisticsCatalog(
            dataset.tree,
            SpaceBudget(800),
            method="sample",
            seed=3,
            tags=["desp", "text"],
        )
        save_catalog(original, tmp_path / "catalog.json")
        restored = load_catalog(tmp_path / "catalog.json")
        assert restored.estimate_join("desp", "text").value == (
            original.estimate_join("desp", "text").value
        )
        assert restored.nbytes() == original.nbytes()

    def test_missing_file(self, tmp_path):
        from repro.catalog import load_catalog
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            load_catalog(tmp_path / "absent.json")

    def test_version_check(self, dataset, tmp_path):
        import json

        from repro.catalog import load_catalog, save_catalog
        from repro.core.errors import ReproError

        original = StatisticsCatalog(
            dataset.tree, SpaceBudget(400), tags=["item"]
        )
        path = save_catalog(original, tmp_path / "catalog.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError):
            load_catalog(path)
