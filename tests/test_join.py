"""Tests for repro.join: the three join algorithms and the size oracle."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.join import (
    containment_join_size,
    merge_join,
    nested_loop_join,
    per_descendant_counts,
    stack_tree_join,
)
from repro.join.stack_tree import sorted_pairs
from repro.xmltree.tree import DataTree


def pair_codes(pairs):
    return sorted((a.start, d.start) for a, d in pairs)


class TestFigure1Example:
    def test_join_size_is_six(self, figure1_tree):
        """The paper's worked example: |A ⋈ D| = 6."""
        a, d = figure1_tree
        assert containment_join_size(a, d) == 6

    def test_all_algorithms_agree(self, figure1_tree):
        a, d = figure1_tree
        naive = nested_loop_join(a, d)
        merge = merge_join(a, d)
        stack = stack_tree_join(a, d)
        assert pair_codes(naive) == pair_codes(merge) == pair_codes(stack)
        assert len(naive) == 6

    def test_expected_pairs(self, figure1_tree):
        a, d = figure1_tree
        pairs = pair_codes(nested_loop_join(a, d))
        # a3=(1,22) joins every d; a1=(2,7) joins d1; a2=(18,21) joins d4.
        assert pairs == [(1, 3), (1, 9), (1, 11), (1, 19), (2, 3), (18, 19)]


class TestEdgeCases:
    def test_empty_operands(self):
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        assert containment_join_size(empty, some) == 0
        assert containment_join_size(some, empty) == 0
        assert nested_loop_join(empty, some) == []
        assert merge_join(some, empty) == []
        assert stack_tree_join(empty, empty) == []

    def test_no_matches(self):
        a = NodeSet([Element("a", 1, 2)])
        d = NodeSet([Element("d", 5, 6)])
        assert containment_join_size(a, d) == 0

    def test_deep_nesting_multiplicity(self):
        a = NodeSet(
            [Element("a", 1, 10), Element("a", 2, 9), Element("a", 3, 8)]
        )
        d = NodeSet([Element("d", 4, 5), Element("d", 6, 7)])
        assert containment_join_size(a, d) == 6  # every a contains every d

    def test_boundary_not_contained(self):
        # d.start must be strictly inside (a.start, a.end).
        a = NodeSet([Element("a", 2, 6)])
        d = NodeSet([Element("d", 7, 8)])
        assert containment_join_size(a, d) == 0

    def test_per_descendant_counts(self, figure1_tree):
        a, d = figure1_tree
        counts = per_descendant_counts(a, d)
        assert counts.tolist() == [2, 1, 1, 2]

    def test_per_descendant_counts_empty(self):
        empty = NodeSet([])
        d = NodeSet([Element("d", 1, 2)])
        assert per_descendant_counts(empty, d).tolist() == [0]

    def test_sorted_pairs_normalization(self, figure1_tree):
        a, d = figure1_tree
        stack = sorted_pairs(stack_tree_join(a, d))
        naive = sorted_pairs(nested_loop_join(a, d))
        assert stack == naive


class TestOnGeneratedTrees:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_algorithms_agree_on_random_trees(self, seed):
        rng = np.random.default_rng(seed)
        tree = _random_tree(rng, size=120, tags=("a", "d", "x"))
        a = tree.node_set("a")
        d = tree.node_set("d")
        naive = nested_loop_join(a, d)
        assert pair_codes(naive) == pair_codes(merge_join(a, d))
        assert pair_codes(naive) == pair_codes(stack_tree_join(a, d))
        assert containment_join_size(a, d) == len(naive)

    def test_self_tag_join(self):
        """Joining a recursive tag with itself (parlist // parlist)."""
        rng = np.random.default_rng(9)
        tree = _random_tree(rng, size=80, tags=("a",))
        a = tree.node_set("a")
        naive = nested_loop_join(a, a)
        assert containment_join_size(a, a) == len(naive)
        assert pair_codes(stack_tree_join(a, a)) == pair_codes(naive)

    def test_size_against_dataset(self, xmark_small):
        items = xmark_small.node_set("item")
        names = xmark_small.node_set("name")
        # Every item contains exactly one name, so the join size equals |A|.
        assert containment_join_size(items, names) == len(items)


def _random_tree(rng, size, tags):
    """Random tree via a random parent array (parents precede children)."""
    parents = [-1] + [int(rng.integers(0, i)) for i in range(1, size)]
    labels = [str(rng.choice(list(tags))) for __ in range(size)]
    children: list[list[int]] = [[] for __ in range(size)]
    for child, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(child)

    from repro.xmltree.tree import TreeBuilder

    builder = TreeBuilder()

    def emit(node):
        with builder.element(labels[node]):
            for child in children[node]:
                emit(child)

    emit(0)
    return builder.finish()
