"""Tests for the per-figure experiment runners (small-scale smoke runs)."""

import pytest

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import xmark_queries
from repro.experiments.histograms import (
    run_bucket_sweep,
    run_histogram_comparison,
)
from repro.experiments.overall import run_overall
from repro.experiments.sampling import run_sample_sweep, run_sampling_comparison

SCALE = 0.05


class TestOverallRunner:
    def test_default_budgets(self):
        results = run_overall("dblp", scale=SCALE, runs=2, seed=1)
        assert [r.budget.nbytes for r in results] == [200, 400, 800]
        for result in results:
            assert len(result.rows) == 6  # DBLP has Q1..Q6

    def test_render(self):
        results = run_overall(
            "dblp", budgets=(SpaceBudget(200),), scale=SCALE, runs=1, seed=1
        )
        text = results[0].render()
        assert "200B" in text
        assert "Q1" in text and "Q6" in text

    def test_xmach_runs(self):
        results = run_overall(
            "xmach", budgets=(SpaceBudget(200),), scale=0.1, runs=1, seed=1
        )
        assert len(results[0].rows) == 7


class TestHistogramSweep:
    def test_pl_sweep_series(self):
        queries = xmark_queries()[:3]
        sweep = run_bucket_sweep(
            "xmark", "PL", bucket_counts=(5, 10), scale=SCALE,
            queries=queries,
        )
        assert set(sweep.series) == {"Q1", "Q2", "Q3"}
        for points in sweep.series.values():
            assert [x for x, __ in points] == [5.0, 10.0]

    def test_ph_sweep_runs(self):
        sweep = run_bucket_sweep(
            "xmark", "PH", bucket_counts=(25,), scale=SCALE,
            queries=xmark_queries()[:2],
        )
        assert "PH" in sweep.render()

    def test_comparison_table(self):
        text = run_histogram_comparison("xmark", scale=SCALE)
        assert "PH" in text and "PL" in text and "Q11" in text


class TestSamplingSweep:
    def test_im_sweep(self):
        sweep = run_sample_sweep(
            "xmark", "IM", sample_counts=(25, 50), scale=SCALE, runs=2,
            queries=xmark_queries()[:2],
        )
        for points in sweep.series.values():
            assert len(points) == 2
            assert all(error >= 0 for __, error in points)

    def test_pm_sweep(self):
        sweep = run_sample_sweep(
            "xmark", "PM", sample_counts=(25,), scale=SCALE, runs=2,
            queries=xmark_queries()[:1],
        )
        assert "PM" in sweep.render()

    def test_comparison_table(self):
        text = run_sampling_comparison(
            "xmark", samples=50, scale=SCALE, runs=2
        )
        assert "IM" in text and "PM" in text

    def test_im_improves_with_samples(self):
        """Figure 8(a)'s trend, on the aggregate over queries."""
        sweep = run_sample_sweep(
            "xmark", "IM", sample_counts=(10, 200), scale=SCALE, runs=5,
        )
        small = sum(points[0][1] for points in sweep.series.values())
        large = sum(points[1][1] for points in sweep.series.values())
        assert large < small
