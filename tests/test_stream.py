"""Streaming churn layer: feeds, live workspaces, staleness, tenancy.

Covers the seeded :class:`MutationFeed`, incremental maintenance and
fingerprint bump-on-write invalidation in :class:`LiveWorkspace`, the
bounded-staleness contract through the estimation service (with an
injected clock), the wire-format disclosure fields, and the
multi-tenant :class:`CatalogStore` with LRU disk residency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import ServiceError, StreamError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.perf.cache import SummaryCache, _key_mentions
from repro.service import EstimationService
from repro.service.request import EstimateRequest
from repro.service.wire import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.stream import (
    CatalogStore,
    LiveWorkspace,
    Mutation,
    MutationBatch,
    MutationFeed,
)

WORKSPACE = Workspace(0, 4000)


def _pool(count: int = 20, offset: int = 0) -> list[Element]:
    """``count`` ancestor/descendant pairs, descendants nested inside."""
    elements = []
    for i in range(count):
        base = offset + 20 * i
        elements.append(Element("a", base + 1, base + 9))
        elements.append(Element("d", base + 2, base + 4))
    return elements


class FakeClock:
    """Injectable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMutationFeed:
    def test_same_seed_same_stream(self):
        pool = _pool()
        a = MutationFeed(pool, seed=7)
        b = MutationFeed(list(reversed(pool)), seed=7)
        assert a.bootstrap() == b.bootstrap()
        script_a = [
            [(m.op, m.element, m.replacement) for m in batch.mutations]
            for batch in a.batches(6, 5)
        ]
        script_b = [
            [(m.op, m.element, m.replacement) for m in batch.mutations]
            for batch in b.batches(6, 5)
        ]
        assert script_a == script_b

    def test_different_seed_diverges(self):
        pool = _pool()
        a = MutationFeed(pool, seed=1).bootstrap()
        b = MutationFeed(pool, seed=2).bootstrap()
        assert a != b

    def test_batches_are_sequentially_applicable(self):
        feed = MutationFeed(_pool(), seed=3)
        live = {(e.start, e.end) for e in feed.bootstrap()}
        for batch in feed.batches(20, 7):
            for mutation in batch.mutations:
                code = (mutation.element.start, mutation.element.end)
                if mutation.op == "insert":
                    assert code not in live
                    live.add(code)
                elif mutation.op == "delete":
                    assert code in live
                    live.remove(code)
                else:
                    new = (
                        mutation.replacement.start,
                        mutation.replacement.end,
                    )
                    assert code in live and new not in live
                    live.remove(code)
                    live.add(new)
        assert feed.live_size == len(live)

    def test_empty_pool_rejected(self):
        with pytest.raises(StreamError, match="non-empty pool"):
            MutationFeed([], seed=0)

    def test_duplicate_codes_rejected(self):
        element = Element("a", 1, 3)
        with pytest.raises(StreamError, match="duplicate region codes"):
            MutationFeed([element, Element("d", 1, 3)], seed=0)

    def test_bad_initial_fraction(self):
        with pytest.raises(StreamError, match="initial_fraction"):
            MutationFeed(_pool(), seed=0, initial_fraction=1.5)

    def test_bad_weights(self):
        with pytest.raises(StreamError, match="bad op weights"):
            MutationFeed(_pool(), seed=0, weights=(1.0, 1.0))
        with pytest.raises(StreamError, match="bad op weights"):
            MutationFeed(_pool(), seed=0, weights=(0.0, 0.0, 0.0))

    def test_negative_batch_size(self):
        with pytest.raises(StreamError, match="batch size"):
            MutationFeed(_pool(), seed=0).next_batch(-1)

    def test_mutation_validation(self):
        element = Element("a", 1, 3)
        with pytest.raises(StreamError, match="unknown mutation op"):
            Mutation("upsert", element)
        with pytest.raises(StreamError, match="replacement"):
            Mutation("insert", element, replacement=Element("a", 5, 7))
        with pytest.raises(StreamError, match="replacement"):
            Mutation("update", element)

    def test_batch_len_and_index(self):
        feed = MutationFeed(_pool(), seed=0)
        first = feed.next_batch(4)
        second = feed.next_batch(2)
        assert (len(first), first.index) == (4, 0)
        assert (len(second), second.index) == (2, 1)


class TestLiveWorkspace:
    def test_apply_updates_population(self):
        feed = MutationFeed(_pool(), seed=11)
        live = LiveWorkspace(WORKSPACE, elements=feed.bootstrap(), seed=11)
        before = live.size()
        batch = feed.next_batch(10)
        seq = live.apply(batch)
        assert seq == 1 and live.applied_seq == 1
        delta = sum(
            {"insert": 1, "delete": -1, "update": 0}[m.op]
            for m in batch.mutations
        )
        assert live.size() == before + delta
        assert live.applied_mutations == 10

    def test_ingest_defers_apply_catches_up(self):
        clock = FakeClock()
        live = LiveWorkspace(
            WORKSPACE, elements=_pool(), seed=0, clock=clock
        )
        seq = live.ingest([Mutation("delete", Element("a", 1, 9))])
        assert live.pending_batches == 1
        assert live.applied_seq == 0 and live.ingest_seq == seq == 1
        clock.now = 2.0
        assert live.staleness_s() == pytest.approx(2.0)
        assert live.apply_pending() == 1
        assert live.staleness_s() == 0.0
        assert live.applied_seq == 1

    def test_staleness_of_snapshot(self):
        clock = FakeClock()
        live = LiveWorkspace(
            WORKSPACE, elements=_pool(), seed=0, clock=clock
        )
        __, seq = live.snapshot("a", "d")
        assert live.staleness_of(seq) == 0.0
        clock.now = 1.0
        live.ingest([Mutation("delete", Element("a", 1, 9))])
        clock.now = 4.0
        # The snapshot misses the batch ingested at t=1.
        assert live.staleness_of(seq) == pytest.approx(3.0)
        live.apply_pending()
        assert live.staleness_of(live.applied_seq) == 0.0

    def test_snapshot_is_stable_until_write(self):
        live = LiveWorkspace(WORKSPACE, elements=_pool(), seed=0)
        (first, __), __seq = live.snapshot("a", "d"), None
        assert live.node_set("a") is first[0]
        live.apply([Mutation("delete", Element("a", 1, 9))])
        assert live.node_set("a") is not first[0]

    def test_unknown_tag(self):
        live = LiveWorkspace(WORKSPACE, elements=_pool(), seed=0)
        with pytest.raises(StreamError, match="unknown tag 'missing'"):
            live.node_set("missing")

    def test_out_of_workspace_mutation(self):
        live = LiveWorkspace(Workspace(0, 50), seed=0)
        with pytest.raises(StreamError, match="outside workspace"):
            live.apply([Mutation("insert", Element("a", 60, 70))])

    def test_update_moves_element_between_tags(self):
        live = LiveWorkspace(WORKSPACE, elements=_pool(), seed=0)
        old = Element("a", 1, 9)
        new = Element("d", 901, 903)
        live.apply([Mutation("update", old, new)])
        assert live.rebuild_node_set("a").elements.count(old) == 0
        assert new in live.rebuild_node_set("d").elements

    def test_coverage_bounds_match_node_set(self):
        from repro.estimators.coverage_histogram import (
            merged_interval_bounds,
        )

        live = LiveWorkspace(WORKSPACE, elements=_pool(), seed=0)
        live.apply([Mutation("delete", Element("a", 21, 29))])
        expected = merged_interval_bounds(live.rebuild_node_set("a"))
        assert np.array_equal(live.coverage_bounds("a"), expected)

    def test_stats_shape(self):
        live = LiveWorkspace(
            WORKSPACE, elements=_pool(), seed=0, tenant="t0"
        )
        live.apply([Mutation("delete", Element("a", 1, 9))])
        stats = live.stats()
        assert stats["tenant"] == "t0"
        assert stats["tags"]["a"]["deletes"] == 1
        assert stats["live_elements"] == live.size()
        assert stats["applied_batches"] == 1


class TestFingerprintInvalidation:
    """Writes bump fingerprints; stale cache entries can never serve."""

    def test_mutation_bumps_fingerprint(self):
        for seed in range(5):
            feed = MutationFeed(_pool(), seed=seed)
            live = LiveWorkspace(
                WORKSPACE, elements=feed.bootstrap(), seed=seed
            )
            seen = {tag: {live.fingerprint(tag)} for tag in live.tags()}
            for batch in feed.batches(8, 5):
                touched = {m.element.tag for m in batch.mutations} | {
                    m.replacement.tag
                    for m in batch.mutations
                    if m.replacement is not None
                }
                live.apply(batch)
                for tag in touched:
                    fingerprint = live.fingerprint(tag)
                    assert fingerprint not in seen[tag], (
                        f"fingerprint reused after write to {tag!r}"
                    )
                    seen[tag].add(fingerprint)

    def test_attached_cache_drops_old_fingerprint_entries(self):
        cache = SummaryCache()
        live = LiveWorkspace(WORKSPACE, elements=_pool(), seed=0)
        live.attach_caches(cache, None)  # None entries are ignored
        old_fp = live.fingerprint("a")
        cache.put(("summary", old_fp), "stale-value")
        cache.put(("summary", "unrelated-fp"), "other-tenant")
        live.apply([Mutation("delete", Element("a", 1, 9))])
        assert live.invalidated_entries == 1
        assert ("summary", old_fp) not in cache
        assert cache.peek(("summary", "unrelated-fp")) == "other-tenant"
        assert not any(
            _key_mentions(key, old_fp) for key in list(cache._data)
        )

    def test_post_mutation_estimates_never_stale(self):
        """Property: a served estimate always reflects the live data."""
        from repro.api import estimate as reference_estimate

        feed = MutationFeed(_pool(40), seed=13)
        live = LiveWorkspace(
            WORKSPACE, elements=feed.bootstrap(), num_buckets=8, seed=13
        )
        service = EstimationService(live=live, workers=0, memoize=False)
        try:
            for batch in feed.batches(10, 8):
                live.apply(batch)
                response = service.estimate(
                    "a", "d", "PL", workspace=WORKSPACE, num_buckets=8
                )
                expected = reference_estimate(
                    live.rebuild_node_set("a"),
                    live.rebuild_node_set("d"),
                    "PL",
                    workspace=WORKSPACE,
                    num_buckets=8,
                )
                assert response.estimate.value == pytest.approx(
                    expected.value, rel=1e-12
                )
        finally:
            service.close()

    def test_co_tenant_entries_survive_churn(self):
        cache = SummaryCache()
        store = CatalogStore()
        store.attach_caches(cache)
        alpha = store.create("alpha", WORKSPACE, elements=_pool())
        beta = store.create(
            "beta", WORKSPACE, elements=_pool(offset=500)
        )
        beta_fp = beta.fingerprint("a")
        cache.put(("summary", beta_fp), "beta-entry")
        cache.get_or_build(("summary", beta_fp), lambda: "never")
        hits_before = cache.hits
        toggle = Element("a", 1, 9)
        live_now = True  # toggle is in alpha's bootstrap population
        for __ in range(6):
            op = "delete" if live_now else "insert"
            alpha.apply([Mutation(op, toggle)])
            live_now = not live_now
            alpha.node_set("a")  # materialize so the next write drops it
        # Churn invalidated alpha's own fingerprints only: the
        # co-tenant's entry survives with its hit counter untouched.
        assert alpha.invalidated_entries == 0  # no alpha entries cached
        assert cache.hits == hits_before  # churn never read beta's key
        assert cache.peek(("summary", beta_fp)) == "beta-entry"
        assert ("summary", beta_fp) in cache


class TestServiceLiveWiring:
    def _service(self, clock=None, **kwargs):
        live = LiveWorkspace(
            WORKSPACE,
            elements=_pool(40),
            num_buckets=8,
            seed=5,
            clock=clock or FakeClock(),
        )
        service = EstimationService(
            live=live,
            workers=0,
            memoize=False,
            clock=clock or live._clock,
            **kwargs,
        )
        return service, live

    def test_string_operands_resolve_and_disclose(self):
        service, live = self._service()
        try:
            response = service.estimate("a", "d", "PL", num_buckets=8)
            assert response.staleness_s == 0.0
            assert response.applied_seq == live.applied_seq
            assert live.estimates_served == 1
        finally:
            service.close()

    def test_stale_snapshot_degrades(self):
        clock = FakeClock()
        service, live = self._service(clock=clock)
        try:
            future = service.submit(
                "a", "d", "PL", num_buckets=8, max_staleness_s=0.5
            )
            live.ingest([Mutation("delete", Element("a", 1, 9))])
            clock.now = 5.0
            service.help_drain((future,))
            response = future.result()
            assert response.degraded_reason == "stale"
            assert response.staleness_s > 0.5
            # Degrading IS the remedy: the violation counter tracks
            # only "ok" answers served over their bound.
            assert service.stats()["staleness_violations"] == 0
        finally:
            service.close()

    def test_fresh_snapshot_not_degraded(self):
        service, __ = self._service()
        try:
            response = service.estimate(
                "a", "d", "PL", num_buckets=8, max_staleness_s=0.5
            )
            assert response.degraded_reason != "stale"
            assert response.staleness_s == 0.0
        finally:
            service.close()

    def test_string_operand_without_live_rejected(self):
        service = EstimationService(workers=0)
        try:
            with pytest.raises(ServiceError, match="live workspace"):
                service.estimate("a", "d", "PL")
        finally:
            service.close()

    def test_tenant_mismatch_rejected(self):
        service, __ = self._service()
        try:
            with pytest.raises(ServiceError, match="elsewhere"):
                service.estimate("a", "d", "PL", tenant="elsewhere")
        finally:
            service.close()

    def test_multi_tenant_store_requires_tenant(self):
        store = CatalogStore()
        store.create("alpha", WORKSPACE, elements=_pool())
        store.create("beta", WORKSPACE, elements=_pool(offset=500))
        service = EstimationService(live=store, workers=0)
        try:
            with pytest.raises(ServiceError, match="tenant"):
                service.estimate("a", "d", "PL")
            response = service.estimate(
                "a", "d", "PL", tenant="beta", num_buckets=8
            )
            assert response.applied_seq == 0
        finally:
            service.close()

    def test_negative_max_staleness_rejected(self):
        service, __ = self._service()
        try:
            with pytest.raises(ServiceError, match="max_staleness_s"):
                service.estimate(
                    "a", "d", "PL", max_staleness_s=-1.0
                )
        finally:
            service.close()


class TestWireStalenessFields:
    def _operands(self):
        elements = _pool(10)
        ancestors = NodeSet(
            tuple(e for e in elements if e.tag == "a"), name="a"
        )
        descendants = NodeSet(
            tuple(e for e in elements if e.tag == "d"), name="d"
        )
        return ancestors, descendants

    @pytest.mark.parametrize("wire_format", ["binary", "json"])
    def test_request_round_trips_max_staleness(self, wire_format):
        ancestors, descendants = self._operands()
        request = EstimateRequest(
            ancestors,
            descendants,
            "PL",
            workspace=WORKSPACE,
            max_staleness_s=0.25,
        )
        decoded, detected = decode_request(
            encode_request(request, wire_format)
        )
        assert detected == wire_format
        assert decoded.max_staleness_s == 0.25

    def test_absent_max_staleness_means_no_bound(self):
        ancestors, descendants = self._operands()
        request = EstimateRequest(ancestors, descendants, "PL")
        decoded, __ = decode_request(encode_request(request))
        assert decoded.max_staleness_s is None

    @pytest.mark.parametrize("wire_format", ["binary", "json"])
    def test_response_round_trips_disclosure(self, wire_format):
        live = LiveWorkspace(
            WORKSPACE, elements=_pool(40), num_buckets=8, seed=5
        )
        service = EstimationService(live=live, workers=0, memoize=False)
        try:
            response = service.estimate("a", "d", "PL", num_buckets=8)
        finally:
            service.close()
        decoded = decode_response(encode_response(response, wire_format))
        assert decoded.staleness_s == response.staleness_s == 0.0
        assert decoded.applied_seq == response.applied_seq
        assert decoded.estimate.value == pytest.approx(
            response.estimate.value
        )


class TestCatalogStore:
    def test_create_get_contains_len(self):
        store = CatalogStore()
        alpha = store.create("alpha", WORKSPACE, elements=_pool())
        assert store.get("alpha") is alpha
        assert "alpha" in store and "missing" not in store
        assert len(store) == 1
        assert store.tenants() == ["alpha"]

    def test_duplicate_tenant_rejected(self):
        store = CatalogStore()
        store.create("alpha", WORKSPACE)
        with pytest.raises(StreamError, match="already exists"):
            store.create("alpha", WORKSPACE)

    def test_bad_tenant_name(self):
        store = CatalogStore()
        with pytest.raises(StreamError, match="tenant name"):
            store.create("no/slashes", WORKSPACE)

    def test_unknown_tenant(self):
        store = CatalogStore()
        with pytest.raises(StreamError, match="unknown tenant"):
            store.get("ghost")

    def test_eviction_disabled_without_root(self):
        store = CatalogStore(capacity=1)
        store.create("alpha", WORKSPACE, elements=_pool())
        store.create("beta", WORKSPACE, elements=_pool(offset=500))
        # Both stay resident: no spill root, capacity is ignored.
        assert store.resident_tenants() == ["alpha", "beta"]
        with pytest.raises(StreamError, match="eviction disabled"):
            store.evict("alpha")

    def test_lru_spill_and_reload(self, tmp_path):
        store = CatalogStore(tmp_path, capacity=1)
        alpha = store.create(
            "alpha", WORKSPACE, elements=_pool(), num_buckets=8
        )
        alpha.apply([Mutation("delete", Element("a", 1, 9))])
        population = alpha.rebuild_node_set("a").elements
        applied = alpha.applied_seq
        store.create("beta", WORKSPACE, elements=_pool(offset=500))
        # alpha was the LRU victim and is now on disk.
        assert store.resident_tenants() == ["beta"]
        assert "alpha" in store and len(store) == 2
        assert (tmp_path / "alpha.rpro").exists()
        assert (tmp_path / "alpha.meta.json").exists()
        reloaded = store.get("alpha")
        assert reloaded.rebuild_node_set("a").elements == population
        assert reloaded.applied_seq == applied
        assert reloaded.applied_mutations == 1
        stats = store.stats()["tenants"]["alpha"]
        assert stats["spills"] == 1 and stats["loads"] == 1
        assert 0.0 <= stats["last_load_hit_ratio"] <= 1.0

    def test_reload_round_trips_estimates(self, tmp_path):
        from repro.api import estimate as reference_estimate

        store = CatalogStore(tmp_path, capacity=1)
        alpha = store.create(
            "alpha", WORKSPACE, elements=_pool(40), num_buckets=8
        )
        expected = reference_estimate(
            alpha.rebuild_node_set("a"),
            alpha.rebuild_node_set("d"),
            "PL",
            workspace=WORKSPACE,
            num_buckets=8,
        ).value
        store.create("beta", WORKSPACE, elements=_pool(offset=900))
        service = EstimationService(live=store, workers=0, memoize=False)
        try:
            response = service.estimate(
                "a",
                "d",
                "PL",
                tenant="alpha",
                workspace=WORKSPACE,
                num_buckets=8,
            )
            assert response.estimate.value == pytest.approx(
                expected, rel=1e-12
            )
        finally:
            service.close()

    def test_touch_order_controls_victim(self, tmp_path):
        store = CatalogStore(tmp_path, capacity=2)
        store.create("alpha", WORKSPACE, elements=_pool())
        store.create("beta", WORKSPACE, elements=_pool(offset=500))
        store.get("alpha")  # beta becomes LRU
        store.create("gamma", WORKSPACE, elements=_pool(offset=800))
        assert sorted(store.resident_tenants()) == ["alpha", "gamma"]
        assert "beta" in store  # spilled, not lost
