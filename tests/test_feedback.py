"""Tests for the feedback subsystem (:mod:`repro.feedback`).

Covers the record/store layer (wire round-trips, truth back-fill
order-independence, the snapshot/merge protocol's commutativity), the
correction model (fit on synthetic bias reduces MRE, never worsens a
held-out cell, unfitted cells are *exactly* identity), the ambient
runtime, and the service/optimizer integration points.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro import api
from repro.core.errors import FeedbackError, ReproError
from repro.feedback import (
    CorrectionModel,
    FeedbackRecord,
    FeedbackStore,
    featurize,
    mean_relative_error,
    pair_key,
    query_class,
    record_feedback,
    use_feedback,
)
from repro.feedback import runtime as feedback_runtime
from repro.join.size import containment_join_size


def _operands(dataset, a_tag="item", d_tag="name"):
    return dataset.node_set(a_tag), dataset.node_set(d_tag)


def _record(
    qc="a[3]//d[4]",
    method="PL",
    estimate=10.0,
    exact=None,
    features=(1.0, 2.0),
    **kwargs,
):
    return FeedbackRecord(
        query_class=qc,
        method=method,
        estimate=estimate,
        features=features,
        exact=exact,
        **kwargs,
    )


# ----------------------------------------------------------------------
# query_class / featurize / pair_key
# ----------------------------------------------------------------------


class TestFeatures:
    def test_query_class_buckets_by_log2_size(self, xmark_small):
        a, d = _operands(xmark_small)
        label = query_class(a, d)
        assert label.startswith("item[") and "//name[" in label
        assert query_class(a, d) == label  # deterministic

    def test_featurize_shape_and_intercept(self, xmark_small):
        a, d = _operands(xmark_small)
        features = featurize(a, d)
        assert len(features) == 5
        assert features[0] == 1.0
        assert all(math.isfinite(f) for f in features)

    def test_pair_key_is_content_addressed(self, xmark_small):
        a, d = _operands(xmark_small)
        assert pair_key(a, d) == pair_key(a, d)
        assert pair_key(a, d) != pair_key(d, a)


# ----------------------------------------------------------------------
# FeedbackRecord
# ----------------------------------------------------------------------


class TestFeedbackRecord:
    def test_signed_relative_error(self):
        assert _record(estimate=12.0, exact=10.0).signed_relative_error == (
            pytest.approx(0.2)
        )
        assert _record(estimate=8.0, exact=10.0).signed_relative_error == (
            pytest.approx(-0.2)
        )
        assert _record(exact=None).signed_relative_error is None
        assert _record(estimate=0.0, exact=0.0).signed_relative_error == 0.0
        assert _record(estimate=3.0, exact=0.0).signed_relative_error == (
            math.inf
        )

    def test_wire_roundtrip_identical(self):
        record = _record(
            estimate=42.5,
            exact=40.0,
            latency_s=0.25,
            status="degraded",
            degraded_reason="deadline",
            pair_key="x//y",
            request_id="r-1",
        )
        rebuilt = FeedbackRecord.from_dict(record.to_dict())
        assert rebuilt == record

    def test_wire_roundtrip_non_finite(self):
        record = _record(estimate=math.inf, exact=None)
        rebuilt = FeedbackRecord.from_dict(record.to_dict())
        assert rebuilt.estimate == math.inf

    def test_bad_schema_version_rejected(self):
        payload = _record().to_dict()
        payload["schema_version"] = 999
        with pytest.raises(FeedbackError):
            FeedbackRecord.from_dict(payload)
        with pytest.raises(FeedbackError):
            FeedbackRecord.from_dict("not a mapping")

    def test_feedback_error_is_typed(self):
        assert issubclass(FeedbackError, ReproError)


# ----------------------------------------------------------------------
# FeedbackStore
# ----------------------------------------------------------------------


class TestFeedbackStore:
    def test_add_and_filtered_reads(self):
        store = FeedbackStore()
        store.add(_record(method="PL", estimate=10.0, exact=9.0))
        store.add(_record(method="IM", estimate=11.0))
        assert len(store) == 2
        assert len(store.records(method="PL")) == 1
        assert len(store.records(with_truth=True)) == 1
        assert store.classes() == ("a[3]//d[4]",)

    def test_truth_backfill_order_independent(self, xmark_small):
        """record-then-truth and truth-then-record give the same store."""
        a, d = _operands(xmark_small)
        exact = float(containment_join_size(a, d))
        key = pair_key(a, d)

        first = FeedbackStore()
        first.add(
            _record(
                qc=query_class(a, d), estimate=exact * 1.5, pair_key=key
            )
        )
        filled = first.observe_truth(a, d, exact)
        assert filled == 1

        second = FeedbackStore()
        second.observe_truth(a, d, exact)
        second.add(
            _record(
                qc=query_class(a, d), estimate=exact * 1.5, pair_key=key
            )
        )

        for store in (first, second):
            (record,) = store.records()
            assert record.exact == exact
        stats_a = first.method_stats(query_class(a, d))["PL"]
        stats_b = second.method_stats(query_class(a, d))["PL"]
        assert stats_a.truth_count == stats_b.truth_count == 1
        assert stats_a.abs_error_sum == stats_b.abs_error_sum
        assert first.truth_for(key) == exact

    def test_max_records_bound_keeps_aggregates(self):
        store = FeedbackStore(max_records=2)
        for i in range(5):
            store.add(_record(estimate=float(i), exact=1.0))
        assert len(store) == 2
        assert store.stats()["dropped"] == 3
        cell = store.method_stats("a[3]//d[4]")["PL"]
        assert cell.count == 5  # aggregates stay exact past the bound
        with pytest.raises(FeedbackError):
            FeedbackStore(max_records=-1)
        with pytest.raises(FeedbackError):
            store.add("not a record")

    def test_snapshot_merge_commutes(self):
        """Folding per-worker stores in any order gives equal aggregates."""
        left = FeedbackStore()
        right = FeedbackStore()
        for i in range(4):
            left.add(_record(method="PL", estimate=10.0 + i, exact=10.0))
            right.add(_record(method="PL", estimate=20.0 - i, exact=10.0))
            right.add(_record(method="IM", estimate=5.0 + i, exact=10.0))

        ab = FeedbackStore.from_snapshot(left.snapshot())
        ab.merge(right.snapshot())
        ba = FeedbackStore.from_snapshot(right.snapshot())
        ba.merge(left.snapshot())

        for method in ("PL", "IM"):
            mine = ab.method_stats("a[3]//d[4]").get(method)
            theirs = ba.method_stats("a[3]//d[4]").get(method)
            assert mine.count == theirs.count
            assert mine.truth_count == theirs.truth_count
            assert mine.abs_error_sum == theirs.abs_error_sum
            assert mine.error_sum == theirs.error_sum
            assert mine.latency_sum == theirs.latency_sum
            assert mine.ewma_latency_s == theirs.ewma_latency_s

    def test_snapshot_version_enforced(self):
        snapshot = FeedbackStore().snapshot()
        snapshot["schema_version"] = 0
        with pytest.raises(FeedbackError):
            FeedbackStore.from_snapshot(snapshot)


# ----------------------------------------------------------------------
# CorrectionModel
# ----------------------------------------------------------------------


def _biased_records(
    qc: str,
    *,
    method: str = "PL",
    bias: float = 0.5,
    count: int = 12,
    exact: float = 100.0,
):
    """Records whose estimates all carry the same multiplicative bias."""
    return [
        _record(
            qc=qc,
            method=method,
            estimate=exact * bias,
            exact=exact,
            features=(1.0, math.log1p(exact)),
        )
        for __ in range(count)
    ]


class TestCorrectionModel:
    def test_fit_reduces_mre_on_systematic_bias(self):
        records = _biased_records("q", bias=0.5)
        model = CorrectionModel()
        report = model.fit(records)
        (row,) = report.values()
        assert row["fitted"]
        assert row["mre_after"] < row["mre_before"]
        before = mean_relative_error(records)
        after = mean_relative_error(records, model)
        assert after < before  # strictly reduced
        assert after == pytest.approx(0.0, abs=1e-6)

    def test_unfitted_class_is_exact_identity(self):
        model = CorrectionModel()
        model.fit(_biased_records("q"))
        # A class the model never saw: multiplier is exactly 1.0 and
        # correct() returns the input object bit-identically.
        assert model.predict_multiplier("other", (1.0, 2.0)) == 1.0
        value = 123.456789
        assert model.correct(value, "other", (1.0, 2.0)) is value

    def test_per_method_cells_learn_distinct_biases(self):
        records = _biased_records("q", method="PL", bias=0.5)
        records += _biased_records("q", method="IM", bias=2.0)
        model = CorrectionModel()
        model.fit(records)
        features = (1.0, math.log1p(100.0))
        up = model.predict_multiplier("q", features, method="PL")
        down = model.predict_multiplier("q", features, method="IM")
        assert up > 1.0 > down
        # Pooled mode fits one cell per class instead.
        pooled = CorrectionModel(per_method=False)
        pooled.fit(records)
        assert pooled.cell("q", "PL") == pooled.cell("q", "IM") == "q"

    def test_holdout_never_worsens_a_cell(self):
        # Noise with no learnable structure: the fit must be dropped and
        # the cell left at the identity multiplier.
        records = []
        for i in range(20):
            estimate = 100.0 * (0.2 if i % 2 else 5.0)
            records.append(
                _record(qc="noisy", estimate=estimate, exact=100.0)
            )
        model = CorrectionModel()
        report = model.fit(records, holdout=0.5)
        row = report[model.cell("noisy", "PL")]
        assert row["mre_after"] <= row["mre_before"]
        before = mean_relative_error(records)
        after = mean_relative_error(records, model)
        assert after <= before

    def test_min_samples_gate(self):
        model = CorrectionModel(min_samples=50)
        report = model.fit(_biased_records("q", count=10))
        (row,) = report.values()
        assert not row["fitted"]
        assert model.fitted_classes == ()

    def test_median_mode(self):
        model = CorrectionModel(mode="median")
        model.fit(_biased_records("q", bias=0.5))
        after = mean_relative_error(_biased_records("q", bias=0.5), model)
        assert after == pytest.approx(0.0, abs=1e-6)

    def test_wire_roundtrip_preserves_predictions(self):
        model = CorrectionModel(mode="linear", max_multiplier=1e3)
        model.fit(_biased_records("q", bias=0.25))
        rebuilt = CorrectionModel.from_dict(model.to_dict())
        features = (1.0, math.log1p(100.0))
        assert rebuilt.predict_multiplier(
            "q", features, method="PL"
        ) == model.predict_multiplier("q", features, method="PL")
        assert rebuilt.fitted_classes == model.fitted_classes
        assert rebuilt.per_method == model.per_method

    def test_invalid_configuration_rejected(self):
        with pytest.raises(FeedbackError):
            CorrectionModel(mode="cubist")
        with pytest.raises(FeedbackError):
            CorrectionModel(min_samples=0)
        with pytest.raises(FeedbackError):
            CorrectionModel(max_multiplier=0.5)
        with pytest.raises(FeedbackError):
            CorrectionModel().fit([], holdout=1.0)
        payload = CorrectionModel().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(FeedbackError):
            CorrectionModel.from_dict(payload)

    def test_multiplier_clamped(self):
        model = CorrectionModel(max_multiplier=2.0)
        model.fit(_biased_records("q", bias=0.01))  # wants ~100x
        assert (
            model.predict_multiplier(
                "q", (1.0, math.log1p(100.0)), method="PL"
            )
            <= 2.0
        )


# ----------------------------------------------------------------------
# Ambient runtime
# ----------------------------------------------------------------------


class TestRuntime:
    def test_use_feedback_scopes_the_store(self, xmark_small):
        a, d = _operands(xmark_small)
        assert not feedback_runtime.enabled()
        with use_feedback() as store:
            assert feedback_runtime.enabled()
            assert feedback_runtime.get_store() is store
            record_feedback(a, d, "PL", 42.0)
            feedback_runtime.observe_truth(a, d, 40.0)
        assert not feedback_runtime.enabled()
        (record,) = store.records()
        assert record.method == "PL"
        assert record.exact == 40.0
        assert record.query_class == query_class(a, d)

    def test_record_feedback_explicit_store(self, xmark_small):
        a, d = _operands(xmark_small)
        store = FeedbackStore()
        record = record_feedback(a, d, "IM", 10.0, store=store)
        assert record.pair_key == pair_key(a, d)
        assert store.records() == [record]

    def test_exact_generator_records_truth(self, xmark_small):
        """The optimizer's exact oracle feeds the ambient store."""
        sets = [
            xmark_small.node_set("item"),
            xmark_small.node_set("desp"),
            xmark_small.node_set("text"),
        ]
        with use_feedback() as store:
            repro.optimize(sets, "exact")
        assert store.stats()["truths"] > 0
        assert store.truth_for(pair_key(sets[0], sets[1])) == float(
            containment_join_size(sets[0], sets[1])
        )


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestServiceIntegration:
    def test_service_records_feedback_with_truth(self, xmark_small):
        a, d = _operands(xmark_small)
        exact = float(containment_join_size(a, d))
        store = FeedbackStore()
        store.observe_truth(a, d, exact)
        with repro.serve(workers=0, feedback=store) as service:
            response = service.estimate(a, d, "PL", num_buckets=8)
        (record,) = store.records()
        assert record.method == "PL"
        assert record.estimate == response.estimate.value
        assert record.exact == exact
        assert record.status == "ok"

    def test_feedback_true_creates_store(self, xmark_small):
        a, d = _operands(xmark_small)
        with repro.serve(workers=0, feedback=True) as service:
            service.estimate(a, d, "PL", num_buckets=8)
            assert service.feedback is not None
            assert len(service.feedback) == 1
            assert service.stats()["feedback"]["records"] == 1

    def test_correction_applied_and_disclosed(self, xmark_small):
        a, d = _operands(xmark_small)
        exact = float(containment_join_size(a, d))
        raw = api.estimate(a, d, "PL", num_buckets=8).value

        store = FeedbackStore()
        store.observe_truth(a, d, exact)
        for __ in range(6):
            record_feedback(a, d, "PL", raw, store=store)
        model = CorrectionModel()
        model.fit(store)

        with repro.serve(workers=0, correction=model) as service:
            response = service.estimate(a, d, "PL", num_buckets=8)
        corrected = response.estimate.value
        assert corrected != raw
        assert abs(corrected - exact) < abs(raw - exact)
        assert response.estimate.details["corrected_from"] == raw

    def test_unfitted_correction_is_bit_identical(self, xmark_small):
        a, d = _operands(xmark_small)
        raw = api.estimate(a, d, "PL", num_buckets=8).value
        with repro.serve(
            workers=0, correction=CorrectionModel()
        ) as service:
            response = service.estimate(a, d, "PL", num_buckets=8)
        assert response.estimate.value == raw
        assert "corrected_from" not in response.estimate.details

    def test_degradation_reason_breakdown_in_stats(self, xmark_small):
        a, d = _operands(xmark_small)
        with repro.serve(workers=0) as service:
            future = service.submit(
                a, d, "IM", num_samples=8, seed=3, deadline_s=1e-9
            )
            service.help_drain((future,))
            response = future.result(timeout=30.0)
            stats = service.stats()
        assert response.status in ("degraded", "shed")
        breakdown = stats["degraded_by"]
        assert breakdown["IM"][response.degraded_reason] == 1

    def test_facade_exports(self):
        for name in (
            "CorrectionModel",
            "FeedbackRecord",
            "FeedbackStore",
            "record_feedback",
            "use_feedback",
        ):
            assert hasattr(repro, name)
            assert hasattr(api, name) or callable(getattr(repro, name))
