"""Tests for B+-tree deletion (borrow/merge rebalancing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bplus import BPlusTree


class TestBasicDeletion:
    def test_delete_existing(self):
        tree = BPlusTree(order=4)
        for key in range(10):
            tree.insert(key, key * 10)
        assert tree.delete(5) is True
        assert len(tree) == 9
        assert tree.get(5) is None
        assert 5 not in tree
        tree.validate()

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(2) is False
        assert len(tree) == 1
        tree.validate()

    def test_delete_from_empty(self):
        assert BPlusTree().delete(1) is False

    def test_delete_everything(self):
        tree = BPlusTree(order=3)
        for key in range(50):
            tree.insert(key, key)
        for key in range(50):
            assert tree.delete(key) is True
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.validate()

    def test_root_collapses(self):
        tree = BPlusTree(order=3)
        for key in range(30):
            tree.insert(key, key)
        tall = tree.height
        for key in range(25):
            tree.delete(key)
        tree.validate()
        assert tree.height < tall

    def test_reuse_after_emptying(self):
        tree = BPlusTree(order=3)
        for key in range(20):
            tree.insert(key, key)
        for key in range(20):
            tree.delete(key)
        tree.insert(7, "fresh")
        assert tree.get(7) == "fresh"
        tree.validate()

    def test_leaf_chain_intact_after_merges(self):
        tree = BPlusTree(order=3)
        for key in range(100):
            tree.insert(key, key)
        for key in range(0, 100, 2):
            tree.delete(key)
        tree.validate()
        assert [k for k, __ in tree.items()] == list(range(1, 100, 2))
        assert [k for k, __ in tree.range(10, 50)] == list(range(11, 50, 2))

    def test_floor_after_deletions(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 5):
            tree.insert(key, key)
        tree.delete(50)
        assert tree.floor_entry(52) == (45, 45)

    def test_interleaved_inserts_and_deletes(self):
        rng = np.random.default_rng(3)
        tree = BPlusTree(order=4)
        model: dict[int, int] = {}
        for step in range(2000):
            key = int(rng.integers(0, 300))
            if rng.random() < 0.5:
                tree.insert(key, step)
                model[key] = step
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            if step % 250 == 0:
                tree.validate()
                assert list(tree.items()) == sorted(model.items())
        tree.validate()
        assert list(tree.items()) == sorted(model.items())

    def test_delete_from_bulk_loaded(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(200)], order=8)
        for key in range(0, 200, 3):
            assert tree.delete(key)
        tree.validate()
        assert len(tree) == 200 - len(range(0, 200, 3))


class TestDeletionProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=1,
            max_size=250,
        ),
        st.integers(min_value=3, max_value=12),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_against_dict_model(self, operations, order, shuffler):
        tree = BPlusTree(order=order)
        model: dict[int, int] = {}
        for i, key in enumerate(operations):
            tree.insert(key, i)
            model[key] = i
        victims = list(dict.fromkeys(operations))
        shuffler.shuffle(victims)
        for key in victims[: len(victims) // 2]:
            assert tree.delete(key) is True
            del model[key]
        tree.validate()
        assert list(tree.items()) == sorted(model.items())
        assert len(tree) == len(model)
