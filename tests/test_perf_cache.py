"""Summary cache, ambient installation, and parallel-harness determinism."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import StatisticsCatalog
from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.datasets.workloads import ALL_WORKLOADS
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.data import get_dataset
from repro.experiments.harness import evaluate, paper_methods
from repro.perf import (
    SummaryCache,
    active_cache,
    resolve_cache,
    use_cache,
)


class TestSummaryCache:
    def test_get_or_build_builds_once(self):
        cache = SummaryCache()
        calls = []
        for __ in range(3):
            value = cache.get_or_build("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert calls == [1]
        assert cache.hits == 2
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = SummaryCache(maxsize=2)
        cache.get_or_build("a", lambda: 1)
        cache.get_or_build("b", lambda: 2)
        cache.get_or_build("a", lambda: 1)  # refresh a: b is now LRU
        cache.get_or_build("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            SummaryCache(maxsize=0)

    def test_stats_and_clear(self):
        cache = SummaryCache()
        cache.get_or_build("k", lambda: 1)
        cache.get_or_build("k", lambda: 1)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hit_rate"] == 0.0


class TestAmbientCache:
    def test_install_and_restore(self):
        assert active_cache() is None
        outer, inner = SummaryCache(), SummaryCache()
        with use_cache(outer):
            assert active_cache() is outer
            with use_cache(inner):
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None

    def test_none_disables_nested_region(self):
        with use_cache(SummaryCache()):
            with use_cache(None):
                assert active_cache() is None

    def test_resolve_prefers_explicit(self):
        explicit, ambient = SummaryCache(), SummaryCache()
        with use_cache(ambient):
            assert resolve_cache(explicit) is explicit
            assert resolve_cache(None) is ambient
        assert resolve_cache(None) is None


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = NodeSet([Element("x", 1, 4, 0), Element("x", 2, 3, 1)])
        b = NodeSet([Element("y", 2, 3, 1), Element("y", 1, 4, 0)])
        assert a.fingerprint == b.fingerprint  # tags/order don't matter

    def test_different_content_different_fingerprint(self):
        a = NodeSet([Element("x", 1, 4, 0)])
        b = NodeSet([Element("x", 1, 5, 0)])
        assert a.fingerprint != b.fingerprint


@pytest.fixture(scope="module")
def dblp():
    return get_dataset("dblp", scale=0.05)


class TestCachedEstimatorParity:
    """Cached results must be bit-identical to uncached ones."""

    def _operands(self, dataset):
        query = ALL_WORKLOADS["dblp"][0]
        return query.operands(dataset)

    @pytest.mark.parametrize(
        "make",
        [
            lambda c: PLHistogramEstimator(num_buckets=20, cache=c),
            lambda c: PLHistogramEstimator(
                num_buckets=20, bucketing="equi-depth", cache=c
            ),
            lambda c: PHHistogramEstimator(num_cells=49, cache=c),
            lambda c: CoverageHistogramEstimator(num_buckets=10, cache=c),
        ],
    )
    def test_estimates_identical(self, dblp, make):
        ancestors, descendants = self._operands(dblp)
        plain = make(None).estimate(ancestors, descendants)
        cache = SummaryCache()
        cached_estimator = make(cache)
        first = cached_estimator.estimate(ancestors, descendants)
        again = cached_estimator.estimate(ancestors, descendants)
        assert first.value == plain.value
        assert again.value == plain.value
        assert cache.hits > 0  # second call actually hit

    def test_catalog_uses_cache(self, dblp):
        cache = SummaryCache()
        catalog = StatisticsCatalog(dblp.tree, SpaceBudget(400), cache=cache)
        plain = StatisticsCatalog(dblp.tree, SpaceBudget(400))
        cached = catalog.estimate_join("inproceeding", "author")
        direct = plain.estimate_join("inproceeding", "author")
        assert cached.value == direct.value
        assert cache.misses > 0

    def test_evaluate_cached_equals_uncached(self, dblp):
        queries = ALL_WORKLOADS["dblp"][:3]
        methods = paper_methods(SpaceBudget(400))
        plain = evaluate(dblp, queries, methods, runs=2, seed=7)
        cache = SummaryCache()
        cached = evaluate(
            dblp, queries, methods, runs=2, seed=7, cache=cache
        )
        assert cached == plain
        assert cache.hits > 0


class TestParallelHarness:
    def test_workers_identical_to_serial(self, dblp):
        queries = ALL_WORKLOADS["dblp"]
        methods = paper_methods(SpaceBudget(400))
        serial = evaluate(dblp, queries, methods, runs=2, seed=11)
        parallel = evaluate(
            dblp, queries, methods, runs=2, seed=11, workers=2
        )
        assert parallel == serial

    def test_workers_with_cache_identical(self, dblp):
        queries = ALL_WORKLOADS["dblp"]
        methods = paper_methods(SpaceBudget(400))
        serial = evaluate(dblp, queries, methods, runs=2, seed=11)
        parallel = evaluate(
            dblp,
            queries,
            methods,
            runs=2,
            seed=11,
            workers=2,
            cache=SummaryCache(),
        )
        assert parallel == serial

    def test_single_worker_takes_serial_path(self, dblp):
        queries = ALL_WORKLOADS["dblp"][:2]
        methods = paper_methods(SpaceBudget(400))
        assert evaluate(
            dblp, queries, methods, runs=1, seed=3, workers=1
        ) == evaluate(dblp, queries, methods, runs=1, seed=3)
