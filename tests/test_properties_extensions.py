"""Property-based tests for the extension modules.

Random trees come from the same parent-array strategy as
tests/test_properties.py; each extension is checked against a brute-force
reference on arbitrary shapes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.base import Estimate, Estimator
from repro.estimators.bounds import join_size_bounds
from repro.estimators.wavelet import haar_transform, inverse_haar_transform
from repro.join import (
    containment_join_size,
    semijoin_ancestors_size,
    semijoin_descendants_size,
)
from repro.maintenance import DynamicTTree, IncrementalPLHistogram
from repro.models.position import turning_points
from repro.optimizer.twig import twig, twig_match_count, twig_semijoin_count
from repro.xmltree.tree import DataTree, TreeBuilder

TAGS = ("a", "b", "c")


@st.composite
def random_trees(draw, max_size=50):
    size = draw(st.integers(min_value=1, max_value=max_size))
    parents = [-1] + [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, size)
    ]
    tags = [draw(st.sampled_from(TAGS)) for __ in range(size)]
    children: list[list[int]] = [[] for __ in range(size)]
    for child, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(child)
    builder = TreeBuilder()

    def emit(node: int) -> None:
        with builder.element(tags[node]):
            for child in children[node]:
                emit(child)

    emit(0)
    return builder.finish()


class _ExactEstimator(Estimator):
    name = "EXACT"

    def estimate(self, ancestors, descendants, workspace=None):
        return Estimate(
            float(containment_join_size(ancestors, descendants)), self.name
        )


def brute_twig(provider, pattern):
    def embeddings(node, ancestor):
        total = 0
        for element in provider(node.tag):
            if ancestor is not None and not ancestor.is_ancestor_of(element):
                continue
            product = 1
            for child in node.children:
                product *= embeddings(child, element)
                if product == 0:
                    break
            total += product
        return total

    return embeddings(pattern, None)


class TestTwigProperties:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_chain_twig_matches_brute_force(self, tree: DataTree):
        pattern = twig("a", twig("b", "c"))
        assert twig_match_count(tree.node_set, pattern) == brute_twig(
            tree.node_set, pattern
        )

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_branching_twig_matches_brute_force(self, tree: DataTree):
        pattern = twig("a", "b", "c")
        assert twig_match_count(tree.node_set, pattern) == brute_twig(
            tree.node_set, pattern
        )

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_recursive_tag_twig(self, tree: DataTree):
        pattern = twig("a", twig("a", "b"))
        assert twig_match_count(tree.node_set, pattern) == brute_twig(
            tree.node_set, pattern
        )

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_semijoin_bounded_by_match_count(self, tree: DataTree):
        pattern = twig("a", twig("b", "c"))
        matches = twig_match_count(tree.node_set, pattern)
        distinct = twig_semijoin_count(tree.node_set, pattern)
        assert distinct <= matches
        assert distinct <= len(tree.node_set("a"))
        assert (matches == 0) == (distinct == 0)

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_two_node_twig_equals_containment_join(self, tree: DataTree):
        pattern = twig("a", "b")
        assert twig_match_count(
            tree.node_set, pattern
        ) == containment_join_size(tree.node_set("a"), tree.node_set("b"))


class TestSemijoinProperties:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_semijoin_sizes_match_brute_force(self, tree: DataTree):
        a = tree.node_set("a")
        d = tree.node_set("b")
        brute_a = sum(
            1 for x in a if any(x.is_ancestor_of(y) for y in d)
        )
        brute_d = sum(
            1 for y in d if any(x.is_ancestor_of(y) for x in a)
        )
        assert semijoin_ancestors_size(a, d) == brute_a
        assert semijoin_descendants_size(a, d) == brute_d

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_semijoin_below_join_size(self, tree: DataTree):
        a = tree.node_set("a")
        d = tree.node_set("b")
        join = containment_join_size(a, d)
        assert semijoin_ancestors_size(a, d) <= join or join == 0
        assert semijoin_descendants_size(a, d) <= join or join == 0


class TestBoundsProperties:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_bounds_always_enclose_truth(self, tree: DataTree):
        a = tree.node_set("a")
        d = tree.node_set("b")
        assert join_size_bounds(a, d).contains(containment_join_size(a, d))


class TestMaintenanceProperties:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_dynamic_ttree_equals_static(self, tree: DataTree):
        a = tree.node_set("a")
        dynamic = DynamicTTree.from_node_set(a)
        assert dynamic.turning_points() == turning_points(a)

    @given(random_trees(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_incremental_pl_equals_batch(self, tree: DataTree, buckets):
        from repro.estimators.pl_histogram import PLHistogram

        a = tree.node_set("a")
        if len(a) == 0:
            return
        workspace = tree.workspace()
        incremental = IncrementalPLHistogram(workspace, buckets)
        for element in a:
            incremental.insert(element)
        batch = PLHistogram.build_ancestor(a, workspace, buckets)
        live = incremental.ancestor_histogram()
        assert [b.n for b in batch.buckets] == [b.n for b in live.buckets]
        for built, maintained in zip(batch.buckets, live.buckets):
            assert abs(built.total_length - maintained.total_length) < 1e-9


class TestWaveletProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=130
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_haar_round_trip(self, values):
        array = np.array(values, dtype=np.float64)
        recovered = inverse_haar_transform(haar_transform(array))
        assert np.allclose(recovered[: len(array)], array)
        assert np.allclose(recovered[len(array) :], 0.0)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=64
        ),
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=64
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_haar_preserves_inner_products(self, xs, ys):
        size = max(len(xs), len(ys))
        x = np.zeros(size)
        y = np.zeros(size)
        x[: len(xs)] = xs
        y[: len(ys)] = ys
        transformed = np.dot(haar_transform(x), haar_transform(y))
        assert abs(transformed - np.dot(x, y)) < 1e-7
