"""Tests for repro.core.rng."""

import numpy as np

from repro.core.rng import make_rng, spawn


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert a.tolist() == b.tolist()

    def test_passthrough_generator(self):
        rng = np.random.default_rng(1)
        assert make_rng(rng) is rng

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count_and_independence(self):
        children = spawn(make_rng(7), 3)
        assert len(children) == 3
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3  # astronomically unlikely to collide

    def test_spawn_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn(make_rng(7), 3)]
        b = [c.integers(0, 10**9) for c in spawn(make_rng(7), 3)]
        assert a == b
