"""Tests for repro.xmltree.xpath."""

import pytest

from repro.core.errors import QueryError
from repro.xmltree import evaluate_path, parse_xml

DOC = parse_xml(
    "<site>"
    "<paper><appendix><table/></appendix></paper>"
    "<paper><appendix/></paper>"
    "<paper><section><table/></section></paper>"
    "<table/>"
    "</site>"
)


class TestAxes:
    def test_descendant_tag(self):
        assert len(evaluate_path(DOC, "//table")) == 3
        assert len(evaluate_path(DOC, "//paper")) == 3

    def test_root_child(self):
        assert len(evaluate_path(DOC, "/site")) == 1
        assert len(evaluate_path(DOC, "/paper")) == 0

    def test_child_chain(self):
        assert len(evaluate_path(DOC, "/site/paper/appendix")) == 2
        assert len(evaluate_path(DOC, "/site/paper/appendix/table")) == 1

    def test_child_then_descendant(self):
        assert len(evaluate_path(DOC, "/site//table")) == 3
        assert len(evaluate_path(DOC, "//paper//table")) == 2

    def test_descendant_of_descendant(self):
        assert len(evaluate_path(DOC, "//appendix//table")) == 1

    def test_wildcard(self):
        assert len(evaluate_path(DOC, "/site/*")) == 4
        assert len(evaluate_path(DOC, "//*")) == DOC.size

    def test_no_match(self):
        assert len(evaluate_path(DOC, "//nonexistent")) == 0
        assert len(evaluate_path(DOC, "//table/paper")) == 0


class TestPredicates:
    def test_intro_example(self):
        """The paper's motivating query //paper[appendix/table]."""
        matched = evaluate_path(DOC, "//paper[appendix/table]")
        assert len(matched) == 1

    def test_existence_predicate(self):
        assert len(evaluate_path(DOC, "//paper[appendix]")) == 2
        assert len(evaluate_path(DOC, "//paper[table]")) == 0

    def test_descendant_predicate_path(self):
        assert len(evaluate_path(DOC, "//paper[section/table]")) == 1

    def test_predicate_on_root_step(self):
        assert len(evaluate_path(DOC, "/site[paper]")) == 1
        assert len(evaluate_path(DOC, "/site[zzz]")) == 0


class TestResultProperties:
    def test_results_are_node_sets_in_document_order(self):
        result = evaluate_path(DOC, "//table")
        starts = [e.start for e in result]
        assert starts == sorted(starts)
        assert result.name == "//table"

    def test_matches_node_set_for_plain_tag(self):
        assert evaluate_path(DOC, "//table") == DOC.node_set("table")


class TestErrors:
    def test_relative_path_rejected(self):
        with pytest.raises(QueryError):
            evaluate_path(DOC, "paper/table")

    def test_empty_path_rejected(self):
        with pytest.raises(QueryError):
            evaluate_path(DOC, "")

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            evaluate_path(DOC, "//paper[")


class TestMultiplePredicates:
    def test_conjunction(self):
        doc = parse_xml(
            "<lib>"
            "<paper><appendix><table/></appendix><figure/></paper>"
            "<paper><appendix/></paper>"
            "<paper><figure/></paper>"
            "</lib>"
        )
        assert len(evaluate_path(doc, "//paper[appendix][figure]")) == 1
        assert len(evaluate_path(doc, "//paper[appendix]")) == 2
        assert len(evaluate_path(doc, "//paper[figure]")) == 2
        assert len(evaluate_path(doc, "//paper[appendix/table][figure]")) == 1
        assert len(evaluate_path(doc, "//paper[appendix][nonexistent]")) == 0

    def test_three_predicates(self):
        doc = parse_xml("<r><x><a/><b/><c/></x><x><a/><b/></x></r>")
        assert len(evaluate_path(doc, "//x[a][b][c]")) == 1
        assert len(evaluate_path(doc, "//x[a][b]")) == 2

    def test_predicates_on_root_step(self):
        doc = parse_xml("<r><a/><b/></r>")
        assert len(evaluate_path(doc, "/r[a][b]")) == 1
        assert len(evaluate_path(doc, "/r[a][z]")) == 0
