"""End-to-end integration tests across the whole pipeline."""

import statistics

import pytest

from repro.core.budget import SpaceBudget
from repro.datasets import ALL_WORKLOADS
from repro.estimators import make_estimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.join import containment_join_size
from repro.models import (
    covering_table,
    inner_product_size,
    point_view,
    stabbing_pairs_count,
    start_table,
)
from repro.optimizer import chain_join_size
from repro.xmltree import evaluate_path, parse_xml, to_xml


class TestTheoremsOnAllDatasets:
    @pytest.mark.parametrize("name", ["xmark", "dblp", "xmach"])
    def test_both_models_agree_with_exact_join(self, name, request):
        dataset = request.getfixturevalue(f"{name}_small")
        workspace = dataset.tree.workspace()
        for query in ALL_WORKLOADS[name]:
            a, d = query.operands(dataset)
            exact = containment_join_size(a, d)
            assert stabbing_pairs_count(a, point_view(d)) == exact, query
            assert inner_product_size(
                covering_table(a, workspace), start_table(d, workspace)
            ) == exact, query


class TestEndToEndEstimation:
    def test_im_converges_on_every_xmark_query(self, xmark_small):
        """With a generous sample budget IM lands within 15% everywhere."""
        workspace = xmark_small.tree.workspace()
        for query in ALL_WORKLOADS["xmark"]:
            a, d = query.operands(xmark_small)
            true = containment_join_size(a, d)
            errors = []
            for seed in range(5):
                estimator = IMSamplingEstimator(num_samples=400, seed=seed)
                errors.append(
                    estimator.estimate(a, d, workspace).relative_error(true)
                )
            assert statistics.fmean(errors) < 15.0, query

    def test_every_registry_estimator_on_every_dataset(self, request):
        """Every estimator runs end-to-end on every dataset's Q1."""
        specs = [
            ("PL", {"num_buckets": 20}),
            ("PH", {"num_cells": 50}),
            ("IM", {"num_samples": 50, "seed": 0}),
            ("PM", {"num_samples": 50, "seed": 0}),
            ("COV", {"num_buckets": 20, "mode": "local"}),
            ("CROSS", {"num_samples": 50, "seed": 0}),
            ("SYS", {"num_samples": 50, "seed": 0}),
            ("BIFOCAL", {"num_samples": 50, "seed": 0}),
        ]
        for name in ("xmark", "dblp", "xmach"):
            dataset = request.getfixturevalue(f"{name}_small")
            query = ALL_WORKLOADS[name][0]
            a, d = query.operands(dataset)
            workspace = dataset.tree.workspace()
            for est_name, kwargs in specs:
                estimator = make_estimator(est_name, **kwargs)
                result = estimator.estimate(a, d, workspace)
                assert result.value >= 0.0, (name, est_name)

    def test_budgeted_methods_share_byte_cost(self, dblp_small):
        """All four paper methods accept the same SpaceBudget object."""
        budget = SpaceBudget(400)
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        workspace = dblp_small.tree.workspace()
        for name in ("PL", "PH", "IM", "PM"):
            kwargs = {"budget": budget}
            if name in ("IM", "PM"):
                kwargs["seed"] = 0
            result = make_estimator(name, **kwargs).estimate(a, d, workspace)
            assert result.value > 0.0


class TestXPathToEstimationPipeline:
    def test_path_results_feed_estimators(self, xmark_small):
        """Node sets from the mini-XPath evaluator work as join operands."""
        tree = xmark_small.tree
        ancestors = evaluate_path(tree, "//open_auction")
        descendants = evaluate_path(tree, "//open_auction//text")
        assert len(descendants) > 0
        true = containment_join_size(ancestors, descendants)
        assert true == len(descendants)  # by construction of the path
        estimator = IMSamplingEstimator(num_samples=10**9, seed=0)
        assert estimator.estimate(
            ancestors, descendants, tree.workspace()
        ).value == true

    def test_chain_query_matches_xpath_counts(self, xmark_small):
        """chain_join_size over tags == counting XPath matches with
        multiplicity along bidder//increase."""
        tree = xmark_small.tree
        bidders = tree.node_set("bidder")
        increases = tree.node_set("increase")
        assert chain_join_size([bidders, increases]) == len(
            evaluate_path(tree, "//bidder//increase")
        )


class TestSerializationPipeline:
    def test_generated_dataset_survives_file_round_trip(
        self, tmp_path, dblp_small
    ):
        path = tmp_path / "dblp.xml"
        path.write_text(to_xml(dblp_small.tree))
        reparsed = parse_xml(path.read_text())
        assert reparsed.size == dblp_small.tree.size
        a = reparsed.node_set("inproceeding")
        d = reparsed.node_set("author")
        assert containment_join_size(a, d) == containment_join_size(
            dblp_small.node_set("inproceeding"),
            dblp_small.node_set("author"),
        )
