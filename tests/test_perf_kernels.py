"""Vectorized kernels must equal the retained ``*_reference`` loops.

Every comparison here is *bit for bit*: integer tables with
``np.array_equal``, float statistics with ``==``.  The vectorized paths
are built to accumulate floats in the reference order (``np.add.at``
applies updates sequentially), so exact equality is the contract, not an
approximation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.coverage_histogram import (
    CoverageHistogramEstimator,
    bucket_coverage,
    bucket_coverage_reference,
    merged_intervals,
    merged_intervals_reference,
)
from repro.estimators.ph_histogram import (
    PHHistogramEstimator,
    cell_histogram,
    cell_histogram_reference,
)
from repro.estimators.pl_histogram import (
    PLHistogram,
    PLHistogramEstimator,
    equi_depth_edges,
)
from repro.models.position import (
    covering_table,
    covering_table_reference,
    start_table,
    start_table_reference,
    turning_points,
    turning_points_reference,
)
from repro.xmltree.tree import TreeBuilder

TAGS = ("a", "b", "c")


@st.composite
def random_node_sets(draw, max_size=50):
    """A strictly nested node set from a random parent array."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    parents = [-1] + [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, size)
    ]
    tags = [draw(st.sampled_from(TAGS)) for __ in range(size)]
    children: list[list[int]] = [[] for __ in range(size)]
    for child, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(child)
    builder = TreeBuilder()

    def emit(node: int) -> None:
        with builder.element(tags[node]):
            for child in children[node]:
                emit(child)

    emit(0)
    tree = builder.finish()
    tag = draw(st.sampled_from(TAGS))
    return NodeSet(
        [e for e in tree.elements if e.tag == tag], name=tag, validate=False
    )


@st.composite
def node_set_and_workspace(draw):
    """A node set plus a workspace that may straddle its regions.

    The workspace is drawn independently of the region codes, so some
    elements lie fully outside it and others straddle its boundary —
    exactly the clipping paths the kernels must get right.
    """
    node_set = draw(random_node_sets())
    hi_limit = max(
        (int(e.end) for e in node_set), default=4
    ) + draw(st.integers(min_value=0, max_value=5))
    lo = draw(st.integers(min_value=0, max_value=max(hi_limit - 1, 0)))
    hi = draw(st.integers(min_value=lo + 1, max_value=hi_limit + 1))
    return node_set, Workspace(lo, hi)


EDGE_CASE_SETS = [
    NodeSet([]),
    NodeSet([Element("a", 1, 2, 0)]),
    NodeSet([Element("a", 1, 100, 0)]),
    NodeSet(
        [
            Element("a", 1, 40, 0),
            Element("a", 2, 9, 1),
            Element("a", 10, 39, 1),
            Element("a", 11, 20, 2),
        ]
    ),
]


class TestPositionKernels:
    @given(node_set_and_workspace())
    @settings(max_examples=80, deadline=None)
    def test_covering_table(self, case):
        node_set, workspace = case
        assert np.array_equal(
            covering_table(node_set, workspace),
            covering_table_reference(node_set, workspace),
        )

    @given(node_set_and_workspace())
    @settings(max_examples=80, deadline=None)
    def test_start_table(self, case):
        node_set, workspace = case
        assert np.array_equal(
            start_table(node_set, workspace),
            start_table_reference(node_set, workspace),
        )

    @given(random_node_sets())
    @settings(max_examples=80, deadline=None)
    def test_turning_points(self, node_set):
        assert turning_points(node_set) == turning_points_reference(
            node_set
        )

    @pytest.mark.parametrize("node_set", EDGE_CASE_SETS)
    def test_edge_cases(self, node_set):
        workspace = Workspace(3, 15)  # straddles every non-trivial set
        assert np.array_equal(
            covering_table(node_set, workspace),
            covering_table_reference(node_set, workspace),
        )
        assert np.array_equal(
            start_table(node_set, workspace),
            start_table_reference(node_set, workspace),
        )
        assert turning_points(node_set) == turning_points_reference(
            node_set
        )


class TestPLKernels:
    @staticmethod
    def _assert_histograms_identical(built, reference):
        assert len(built) == len(reference)
        for ours, theirs in zip(built.buckets, reference.buckets):
            assert ours == theirs  # dataclass equality: exact floats

    @given(
        node_set_and_workspace(),
        st.integers(min_value=1, max_value=9),
        st.sampled_from(["clipped", "full"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_build_ancestor(self, case, buckets, length_mode):
        node_set, workspace = case
        self._assert_histograms_identical(
            PLHistogram.build_ancestor(
                node_set, workspace, buckets, length_mode
            ),
            PLHistogram.build_ancestor_reference(
                node_set, workspace, buckets, length_mode
            ),
        )

    @given(node_set_and_workspace(), st.integers(min_value=2, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_build_ancestor_explicit_edges(self, case, buckets):
        node_set, workspace = case
        edges = equi_depth_edges(node_set, workspace, buckets)
        self._assert_histograms_identical(
            PLHistogram.build_ancestor(
                node_set, workspace, buckets, edges=edges
            ),
            PLHistogram.build_ancestor_reference(
                node_set, workspace, buckets, edges=edges
            ),
        )

    @pytest.mark.parametrize("node_set", EDGE_CASE_SETS)
    @pytest.mark.parametrize("length_mode", ["clipped", "full"])
    def test_edge_cases(self, node_set, length_mode):
        workspace = Workspace(3, 15)
        self._assert_histograms_identical(
            PLHistogram.build_ancestor(node_set, workspace, 4, length_mode),
            PLHistogram.build_ancestor_reference(
                node_set, workspace, 4, length_mode
            ),
        )


class TestPHKernels:
    @given(node_set_and_workspace(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_cell_histogram(self, case, side):
        node_set, workspace = case
        inside = node_set.restrict(workspace)
        built = cell_histogram(inside, workspace, side)
        reference = cell_histogram_reference(inside, workspace, side)
        assert built == reference
        # Insertion order must match too: it pins the downstream float
        # accumulation order of the positional estimate.
        assert list(built) == list(reference)

    @given(random_node_sets(), random_node_sets())
    @settings(max_examples=60, deadline=None)
    def test_full_estimate(self, ancestors, descendants):
        estimator = PHHistogramEstimator(num_cells=16, use_coverage=False)
        vectorized = estimator.estimate(ancestors, descendants)
        with perf.reference_kernels():
            reference = estimator.estimate(ancestors, descendants)
        assert vectorized.value == reference.value


class TestCoverageKernels:
    @given(random_node_sets())
    @settings(max_examples=80, deadline=None)
    def test_merged_intervals(self, node_set):
        assert merged_intervals(node_set) == merged_intervals_reference(
            node_set
        )

    @given(
        random_node_sets(),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.1, max_value=60.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_bucket_coverage(self, node_set, wss, width):
        merged = merged_intervals_reference(node_set)
        assert bucket_coverage(
            merged, wss, wss + width
        ) == bucket_coverage_reference(merged, wss, wss + width)

    def test_bucket_coverage_empty_and_degenerate(self):
        assert bucket_coverage([], 0.0, 10.0) == 0.0
        assert bucket_coverage([(1, 5)], 10.0, 10.0) == 0.0

    @given(random_node_sets(), random_node_sets())
    @settings(max_examples=40, deadline=None)
    def test_full_estimate_both_modes(self, ancestors, descendants):
        for mode in ("global", "local"):
            estimator = CoverageHistogramEstimator(num_buckets=5, mode=mode)
            vectorized = estimator.estimate(ancestors, descendants)
            with perf.reference_kernels():
                reference = estimator.estimate(ancestors, descendants)
            assert vectorized.value == reference.value, mode


class TestPLEstimatorParity:
    @given(random_node_sets(), random_node_sets())
    @settings(max_examples=40, deadline=None)
    def test_full_estimate(self, ancestors, descendants):
        for bucketing in ("equi-width", "equi-depth"):
            estimator = PLHistogramEstimator(
                num_buckets=6, bucketing=bucketing
            )
            vectorized = estimator.estimate(ancestors, descendants)
            with perf.reference_kernels():
                reference = estimator.estimate(ancestors, descendants)
            assert vectorized.value == reference.value, bucketing
            assert vectorized.mre == reference.mre, bucketing
