"""Tests for repro.experiments: harness, runners, reports, tables."""

import math

import pytest

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import Query, dblp_queries
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.experiments.data import get_dataset
from repro.experiments.harness import (
    MethodSpec,
    evaluate,
    paper_methods,
    run_method,
)
from repro.experiments.report import format_cell, format_series, format_table
from repro.experiments.tables import (
    PAPER_TABLE4,
    average_cov_table,
    render_table2,
    render_table3,
    render_table4,
)
from repro.join import containment_join_size

SCALE = 0.05


@pytest.fixture(scope="module")
def dblp():
    return get_dataset("dblp", scale=SCALE)


class TestHarness:
    def test_paper_methods_labels(self):
        labels = [m.label for m in paper_methods(SpaceBudget(400))]
        assert labels == ["PH", "PL", "IM", "PM"]

    def test_evaluate_shapes(self, dblp):
        queries = dblp_queries()[:2]
        rows = evaluate(
            dblp, queries, paper_methods(SpaceBudget(200)), runs=2, seed=0
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row.errors) == {"PH", "PL", "IM", "PM"}
            assert set(row.estimates) == {"PH", "PL", "IM", "PM"}
            assert row.true_size >= 0

    def test_true_sizes_match_oracle(self, dblp):
        queries = dblp_queries()[:1]
        rows = evaluate(
            dblp, queries, paper_methods(SpaceBudget(200)), runs=1, seed=0
        )
        a, d = queries[0].operands(dblp)
        assert rows[0].true_size == containment_join_size(a, d)

    def test_deterministic_given_seed(self, dblp):
        queries = dblp_queries()[:2]
        methods = paper_methods(SpaceBudget(200))
        first = evaluate(dblp, queries, methods, runs=3, seed=9)
        second = evaluate(dblp, queries, methods, runs=3, seed=9)
        for row_a, row_b in zip(first, second):
            assert row_a.errors == row_b.errors

    def test_deterministic_methods_run_once(self, dblp):
        calls = []

        def factory(seed):
            calls.append(seed)
            from repro.estimators.pl_histogram import PLHistogramEstimator

            return PLHistogramEstimator(num_buckets=5)

        spec = MethodSpec("X", factory, stochastic=False)
        evaluate(dblp, dblp_queries()[:1], [spec], runs=7, seed=0)
        assert len(calls) == 1

    def test_error_of_mean_below_mean_error_for_unbiased(self, dblp):
        """Averaging estimates before the error can only look better."""
        a, d = dblp_queries()[0].operands(dblp)
        workspace = dblp.tree.workspace()
        true = containment_join_size(a, d)
        spec = MethodSpec(
            "IM", lambda seed: IMSamplingEstimator(num_samples=10, seed=seed)
        )
        mean_error, __ = run_method(
            spec, a, d, workspace, true, runs=30, seed=4,
            aggregation="mean_error",
        )
        error_of_mean, __ = run_method(
            spec, a, d, workspace, true, runs=30, seed=4,
            aggregation="error_of_mean",
        )
        assert error_of_mean <= mean_error + 1e-9

    def test_zero_truth_handling(self, dblp):
        query = Query("QZ", "sup", "inproceeding")  # nothing under sup
        rows = evaluate(
            dblp, [query], paper_methods(SpaceBudget(200)), runs=1, seed=0
        )
        assert rows[0].true_size == 0
        assert rows[0].errors["IM"] == 0.0  # IM estimates exactly 0


class TestReport:
    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(math.inf) == "unbounded"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 5

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_format_series(self):
        assert format_series("Q1", [(5.0, 1.234), (10.0, 2.0)]) == (
            "Q1: 5=1.23, 10=2.00"
        )


class TestTables:
    def test_table2_contains_all_predicates(self):
        text = render_table2("dblp", scale=SCALE)
        for predicate in ("inproceeding", "author", "title", "cite", "sup",
                          "label"):
            assert predicate in text

    def test_table3_render(self):
        text = render_table3("xmach")
        assert "host" in text and "Q7" in text

    def test_table4_values_and_order(self):
        table = average_cov_table("dblp", num_buckets=20, scale=SCALE)
        assert [q for q, __ in table] == [f"Q{i}" for i in range(1, 7)]
        covs = dict(table)
        # The ordering of Table 4 must be preserved: Q1 largest by far,
        # Q4-Q6 tiny.
        assert covs["Q1"] > covs["Q2"] > covs["Q3"] > covs["Q4"]
        assert covs["Q4"] < 0.2 and covs["Q5"] < 0.05 and covs["Q6"] < 0.05

    def test_table4_render_includes_paper_values(self):
        text = render_table4(scale=SCALE)
        assert f"{PAPER_TABLE4['Q1']:.4f}" in text

    def test_get_dataset_cached(self):
        assert get_dataset("dblp", scale=SCALE) is get_dataset(
            "dblp", scale=SCALE
        )

    def test_get_dataset_unknown(self):
        from repro.core.errors import ReproError

        with pytest.raises(ReproError):
            get_dataset("shakespeare")
