"""Tests for repro.xmltree.tree: DataTree and TreeBuilder."""

import pytest

from repro.core.errors import ReproError
from repro.xmltree.tree import DataTree, TreeBuilder


class TestTreeBuilder:
    def test_region_codes_are_dfs_events(self):
        builder = TreeBuilder()
        with builder.element("a"):
            with builder.element("b"):
                builder.leaf("c")
            builder.leaf("d")
        tree = builder.finish()
        coded = [(e.tag, e.start, e.end) for e in tree.elements]
        assert coded == [("a", 1, 8), ("b", 2, 5), ("c", 3, 4), ("d", 6, 7)]

    def test_levels(self):
        tree = DataTree.from_nested(("a", [("b", [("c", [])]), ("d", [])]))
        assert [e.level for e in tree.elements] == [0, 1, 2, 1]

    def test_first_position(self):
        builder = TreeBuilder(first_position=100)
        builder.leaf("a")
        tree = builder.finish()
        assert (tree.root.start, tree.root.end) == (100, 101)

    def test_open_close_style(self):
        builder = TreeBuilder()
        builder.open("a")
        builder.open("b")
        builder.close()
        builder.close()
        assert builder.finish().size == 2

    def test_current_tag_and_depth(self):
        builder = TreeBuilder()
        assert builder.current_tag is None
        builder.open("a")
        builder.open("b")
        assert builder.current_tag == "b"
        assert builder.depth == 2
        builder.close()
        assert builder.current_tag == "a"

    def test_second_root_rejected(self):
        builder = TreeBuilder()
        builder.leaf("a")
        with pytest.raises(ReproError):
            builder.open("b")

    def test_close_without_open(self):
        with pytest.raises(ReproError):
            TreeBuilder().close()

    def test_finish_with_open_elements(self):
        builder = TreeBuilder()
        builder.open("a")
        with pytest.raises(ReproError):
            builder.finish()

    def test_finish_empty(self):
        with pytest.raises(ReproError):
            TreeBuilder().finish()

    def test_finished_builder_rejects_open(self):
        builder = TreeBuilder()
        builder.leaf("a")
        builder.finish()
        with pytest.raises(ReproError):
            builder.open("b")


class TestDataTree:
    @pytest.fixture()
    def tree(self):
        return DataTree.from_nested(
            ("site", [("item", [("name", [])]), ("item", []), ("name", [])])
        )

    def test_size_and_root(self, tree):
        assert tree.size == len(tree) == 5
        assert tree.root.tag == "site"

    def test_height(self, tree):
        assert tree.height == 3

    def test_workspace_covers_root(self, tree):
        workspace = tree.workspace()
        assert workspace.lo == tree.root.start
        assert workspace.hi == tree.root.end

    def test_tags(self, tree):
        assert tree.tags() == {"site": 1, "item": 2, "name": 2}

    def test_node_set(self, tree):
        names = tree.node_set("name")
        assert len(names) == 2
        assert names.name == "name"
        assert len(tree.node_set("missing")) == 0

    def test_parent_child_links(self, tree):
        assert tree.parent_index(0) == -1
        first_item = tree.indices_with_tag("item")[0]
        assert tree.parent_index(first_item) == 0
        assert tree.children_indices(0) == (1, 3, 4)
        assert tree.children_indices(first_item) == (2,)

    def test_descendant_indices(self, tree):
        descendants = set(tree.descendant_indices(0))
        assert descendants == {1, 2, 3, 4}
        assert set(tree.descendant_indices(1)) == {2}

    def test_ancestor_indices(self, tree):
        assert list(tree.ancestor_indices(2)) == [1, 0]
        assert list(tree.ancestor_indices(0)) == []

    def test_strict_nesting_of_all_codes(self, tree):
        for parent in tree.elements:
            for child in tree.elements:
                if parent is child:
                    continue
                assert not parent.region.partially_overlaps(child.region)

    def test_empty_tree_rejected(self):
        with pytest.raises(ReproError):
            DataTree([], [])

    def test_mismatched_parent_list(self, tree):
        with pytest.raises(ReproError):
            DataTree(tree.elements, [-1])

    def test_repr(self, tree):
        assert "DataTree" in repr(tree)
