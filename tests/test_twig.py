"""Tests for repro.optimizer.twig: twig pattern counting and estimation."""

import pytest

from repro.core.errors import EstimationError
from repro.estimators.base import Estimate, Estimator
from repro.join import containment_join_size
from repro.optimizer.twig import (
    TwigNode,
    estimate_twig_selectivity,
    estimate_twig_size,
    twig,
    twig_match_count,
    twig_semijoin_count,
)
from repro.xmltree import parse_xml

DOC = parse_xml(
    "<lib>"
    "<paper><appendix><table/><table/></appendix><figure/></paper>"
    "<paper><appendix/></paper>"
    "<paper><appendix><table/></appendix><figure/><figure/></paper>"
    "<table/>"
    "</lib>"
)


class _ExactEstimator(Estimator):
    name = "EXACT"

    def estimate(self, ancestors, descendants, workspace=None):
        return Estimate(
            float(containment_join_size(ancestors, descendants)), self.name
        )


def brute_twig_count(provider, pattern):
    """Exponential reference implementation."""

    def embeddings(node, required_ancestor):
        total = 0
        for element in provider(node.tag):
            if required_ancestor is not None and not (
                required_ancestor.is_ancestor_of(element)
            ):
                continue
            product = 1
            for child in node.children:
                product *= embeddings(child, element)
                if product == 0:
                    break
            total += product
        return total

    return embeddings(pattern, None)


class TestTwigConstruction:
    def test_twig_helper(self):
        pattern = twig("paper", twig("appendix", "table"), "figure")
        assert pattern.tag == "paper"
        assert [c.tag for c in pattern.children] == ["appendix", "figure"]
        assert str(pattern) == "paper[appendix[table]][figure]"

    def test_edges_and_nodes(self):
        pattern = twig("a", twig("b", "c"), "d")
        assert [(p.tag, c.tag) for p, c in pattern.edges()] == [
            ("a", "b"),
            ("b", "c"),
            ("a", "d"),
        ]
        assert [n.tag for n in pattern.nodes()] == ["a", "b", "c", "d"]


class TestExactTwigCounting:
    def test_chain_twig_matches_chain_join(self):
        pattern = twig("paper", twig("appendix", "table"))
        count = twig_match_count(DOC.node_set, pattern)
        assert count == 3  # 2 tables in paper 1, 1 in paper 3
        assert count == brute_twig_count(DOC.node_set, pattern)

    def test_branching_twig(self):
        # paper with both an appendix/table chain and a figure.
        pattern = twig("paper", twig("appendix", "table"), "figure")
        # paper 1: 2 tables * 1 figure = 2; paper 3: 1 table * 2 figures = 2.
        assert twig_match_count(DOC.node_set, pattern) == 4
        assert brute_twig_count(DOC.node_set, pattern) == 4

    def test_semijoin_semantics(self):
        pattern = twig("paper", twig("appendix", "table"), "figure")
        # Distinct papers matching the predicate: papers 1 and 3.
        assert twig_semijoin_count(DOC.node_set, pattern) == 2

    def test_single_node_twig(self):
        assert twig_match_count(DOC.node_set, twig("paper")) == 3
        assert twig_semijoin_count(DOC.node_set, twig("table")) == 4

    def test_unmatched_twig(self):
        pattern = twig("paper", "nonexistent")
        assert twig_match_count(DOC.node_set, pattern) == 0
        assert twig_semijoin_count(DOC.node_set, pattern) == 0

    def test_deep_twig(self):
        pattern = twig("lib", twig("paper", twig("appendix", "table")))
        assert twig_match_count(DOC.node_set, pattern) == 3

    def test_on_generated_dataset(self, xmark_small):
        pattern = twig(
            "open_auction", twig("annotation", "text"), "reserve"
        )
        exact = twig_match_count(xmark_small.node_set, pattern)
        # Cross-check with a restricted brute force over a few auctions.
        assert exact >= 0
        semijoin = twig_semijoin_count(xmark_small.node_set, pattern)
        assert semijoin <= len(xmark_small.node_set("open_auction"))
        assert semijoin <= exact or exact == 0

    def test_repeated_tags(self):
        doc = parse_xml("<r><a><a><b/></a></a></r>")
        pattern = twig("a", twig("a", "b"))
        # outer a -> inner a -> b is the only embedding.
        assert twig_match_count(doc.node_set, pattern) == 1
        assert brute_twig_count(doc.node_set, pattern) == 1


class TestTwigEstimation:
    def test_chain_estimate_composes_pairwise(self):
        pattern = twig("paper", twig("appendix", "table"))
        estimate = estimate_twig_size(
            DOC.node_set, pattern, _ExactEstimator()
        )
        j1 = containment_join_size(
            DOC.node_set("paper"), DOC.node_set("appendix")
        )
        j2 = containment_join_size(
            DOC.node_set("appendix"), DOC.node_set("table")
        )
        assert estimate == pytest.approx(
            j1 * j2 / len(DOC.node_set("appendix"))
        )

    def test_branching_estimate_divides_by_root(self):
        pattern = twig("paper", "appendix", "figure")
        estimate = estimate_twig_size(
            DOC.node_set, pattern, _ExactEstimator()
        )
        j1 = containment_join_size(
            DOC.node_set("paper"), DOC.node_set("appendix")
        )
        j2 = containment_join_size(
            DOC.node_set("paper"), DOC.node_set("figure")
        )
        assert estimate == pytest.approx(
            j1 * j2 / len(DOC.node_set("paper"))
        )

    def test_single_node(self):
        assert estimate_twig_size(
            DOC.node_set, twig("paper"), _ExactEstimator()
        ) == 3.0

    def test_estimate_near_truth_on_dataset(self, xmark_small):
        pattern = twig("open_auction", twig("annotation", "text"))
        exact = twig_match_count(xmark_small.node_set, pattern)
        estimate = estimate_twig_size(
            xmark_small.node_set,
            pattern,
            _ExactEstimator(),
            xmark_small.tree.workspace(),
        )
        assert estimate == pytest.approx(exact, rel=0.35)

    def test_empty_edge_zeroes_estimate(self):
        pattern = twig("paper", "nonexistent")
        assert estimate_twig_size(
            DOC.node_set, pattern, _ExactEstimator()
        ) == 0.0

    def test_selectivity(self):
        pattern = twig("paper", twig("appendix", "table"))
        selectivity = estimate_twig_selectivity(
            DOC.node_set, pattern, _ExactEstimator()
        )
        assert 0.0 < selectivity <= 1.0

    def test_selectivity_empty_root_rejected(self):
        with pytest.raises(EstimationError):
            estimate_twig_selectivity(
                DOC.node_set, twig("nonexistent"), _ExactEstimator()
            )
