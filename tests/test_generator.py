"""Tests for the pluggable CardinalityGenerator optimizer API."""

import json
import math

import pytest

from repro.core.errors import (
    EstimationError,
    PlanError,
    UnknownEstimatorError,
    UnknownGeneratorError,
)
from repro.estimators.bounds import (
    containment_fanout_bounds,
    refined_join_bound,
)
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.join import containment_join_size
from repro.optimizer import (
    BoundGenerator,
    EstimatorGenerator,
    ExactGenerator,
    JoinPlan,
    PlanningState,
    ServiceGenerator,
    as_generator,
    available_generators,
    chain_join_size,
    optimize,
    plan_cost,
    resolve_generator,
)
from repro.optimizer.regret import regret_report
from repro.service.engine import EstimationService


@pytest.fixture()
def chain_sets(xmark_small):
    return [
        xmark_small.node_set(tag)
        for tag in ("desp", "parlist", "listitem", "text")
    ]


@pytest.fixture()
def workspace(xmark_small):
    return xmark_small.tree.workspace()


class TestResolution:
    def test_native_generators_resolve(self):
        assert resolve_generator("exact").name == "EXACT"
        assert resolve_generator("EXACT").name == "EXACT"
        assert resolve_generator("ubound").name == "UBOUND"

    def test_aliases_resolve(self):
        assert resolve_generator("oracle").name == "EXACT"
        assert resolve_generator("pessimistic").name == "UBOUND"
        assert resolve_generator("ues").name == "UBOUND"
        assert resolve_generator("agm").name == "UBOUND"
        assert resolve_generator("upper-bound").name == "UBOUND"

    def test_estimator_names_resolve_to_adapter(self):
        generator = resolve_generator("pl-histogram", num_buckets=8)
        assert isinstance(generator, EstimatorGenerator)
        assert generator.name == "PL"

    def test_available_generators_superset_of_estimators(self):
        names = available_generators()
        assert "EXACT" in names and "UBOUND" in names
        assert "PL" in names and "IM" in names

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(UnknownGeneratorError) as excinfo:
            resolve_generator("exat")
        assert "EXACT" in excinfo.value.candidates
        assert excinfo.value.name == "exat"

    def test_unknown_generator_error_is_unknown_estimator_error(self):
        """Handler compatibility: the new error slots into the taxonomy."""
        with pytest.raises(UnknownEstimatorError):
            resolve_generator("no-such-thing-at-all")

    def test_as_generator_passthrough_and_wrap(self):
        bound = BoundGenerator()
        assert as_generator(bound) is bound
        wrapped = as_generator(PLHistogramEstimator(num_buckets=8))
        assert isinstance(wrapped, EstimatorGenerator)
        with pytest.raises(PlanError):
            as_generator(bound, num_buckets=8)
        with pytest.raises(PlanError):
            as_generator(42)

    def test_instance_plus_config_rejected(self):
        with pytest.raises(PlanError):
            EstimatorGenerator(
                PLHistogramEstimator(num_buckets=8), num_buckets=16
            )


class TestAdapterBitIdentical:
    def test_adapter_vs_direct_identical_plans(self, chain_sets, workspace):
        """Wrapping the estimator explicitly, passing it bare, and
        passing its registry name must produce the identical plan —
        same structure AND bit-identical estimated sizes."""
        direct = optimize(
            chain_sets,
            PLHistogramEstimator(num_buckets=8),
            workspace=workspace,
        )
        wrapped = optimize(
            chain_sets,
            EstimatorGenerator(PLHistogramEstimator(num_buckets=8)),
            workspace=workspace,
        )
        named = optimize(
            chain_sets, "PL", workspace=workspace, num_buckets=8
        )
        assert direct == wrapped == named

    def test_seeded_sampling_adapter_deterministic(
        self, chain_sets, workspace
    ):
        plans = [
            optimize(
                chain_sets,
                IMSamplingEstimator(num_samples=50, seed=7),
                workspace=workspace,
            )
            for __ in range(2)
        ]
        assert plans[0] == plans[1]


class TestBoundGenerator:
    def test_pair_bound_never_underestimates(self, xmark_small):
        for a_tag, d_tag in [
            ("desp", "parlist"),
            ("parlist", "listitem"),
            ("open_auction", "text"),
            ("item", "keyword"),
        ]:
            a = xmark_small.node_set(a_tag)
            d = xmark_small.node_set(d_tag)
            true_size = containment_join_size(a, d)
            assert refined_join_bound(a, d) >= true_size

    def test_fanout_bounds_cover_true_fanouts(self, xmark_small):
        a = xmark_small.node_set("desp")
        d = xmark_small.node_set("listitem")
        fan = containment_fanout_bounds(a, d)
        per_ancestor = [
            sum(1 for e in d if anc.is_ancestor_of(e)) for anc in a
        ]
        per_descendant = [
            sum(1 for anc in a if anc.is_ancestor_of(e)) for e in d
        ]
        assert fan.max_fanout >= max(per_ancestor)
        assert fan.max_fanin >= max(per_descendant)

    def test_empty_operands(self, xmark_small):
        empty = xmark_small.node_set("no_such_tag")
        d = xmark_small.node_set("text")
        fan = containment_fanout_bounds(empty, d)
        assert (fan.max_fanout, fan.max_fanin) == (0, 0)
        assert refined_join_bound(empty, d) == 0

    def test_segment_bounds_never_underestimate(
        self, chain_sets, workspace
    ):
        """Every chain segment's bound encloses the exact chain size."""
        state = PlanningState(tuple(chain_sets), workspace=workspace)
        bound = BoundGenerator()
        k = len(chain_sets)
        for i in range(k):
            for j in range(i, k):
                estimate = bound.estimate_join(i, j, state)
                true_size = (
                    len(chain_sets[i])
                    if i == j
                    else chain_join_size(chain_sets[i : j + 1])
                )
                assert estimate >= true_size, (i, j)

    def test_bound_plan_segments_never_underestimate(
        self, chain_sets, workspace
    ):
        """The acceptance criterion: no node of a UBOUND plan carries
        an estimated size below the segment's true size."""
        plan = optimize(chain_sets, "ubound", workspace=workspace)

        def check(node):
            if node.is_leaf:
                return
            true_size = chain_join_size(
                chain_sets[node.lo : node.hi + 1]
            )
            assert node.estimated_size >= true_size
            check(node.left)
            check(node.right)

        check(plan)


class TestExactGenerator:
    def test_segments_match_chain_join_size(self, chain_sets, workspace):
        state = PlanningState(tuple(chain_sets), workspace=workspace)
        exact = ExactGenerator()
        assert exact.estimate_join(0, 0, state) == len(chain_sets[0])
        assert exact.estimate_join(0, 2, state) == chain_join_size(
            chain_sets[0:3]
        )

    def test_oracle_plans_are_optimal(self, chain_sets, workspace):
        from repro.optimizer.regret import (
            optimal_true_cost,
            true_plan_cost,
        )

        plan = optimize(chain_sets, "exact", workspace=workspace)
        assert true_plan_cost(plan, chain_sets) == optimal_true_cost(
            chain_sets
        )


class TestServiceGenerator:
    def test_parity_with_direct_estimator(self, chain_sets, workspace):
        with EstimationService(workers=0) as service:
            generator = service.cardinality_generator(
                "PL", num_buckets=8
            )
            assert isinstance(generator, ServiceGenerator)
            service_plan = optimize(
                chain_sets, generator, workspace=workspace
            )
        direct_plan = optimize(
            chain_sets,
            PLHistogramEstimator(num_buckets=8),
            workspace=workspace,
        )
        assert service_plan == direct_plan

    def test_describe_reports_traffic(self, chain_sets, workspace):
        with EstimationService(workers=0) as service:
            generator = service.cardinality_generator(
                "PL", num_buckets=8
            )
            optimize(chain_sets, generator, workspace=workspace)
            described = generator.describe()
        assert described["generator"] == "SERVICE-PL"
        assert described["requests"] == len(chain_sets) - 1
        assert described["degraded"] == 0


class TestPlanWireSchema:
    def test_round_trip(self, chain_sets, workspace):
        plan = optimize(chain_sets, "exact", workspace=workspace)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert JoinPlan.from_dict(payload) == plan

    def test_non_finite_sizes_survive(self):
        plan = JoinPlan(
            0,
            1,
            math.inf,
            JoinPlan(0, 0, 3.0),
            JoinPlan(1, 1, math.nan),
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["estimated_size"] == "Infinity"
        rebuilt = JoinPlan.from_dict(payload)
        assert math.isinf(rebuilt.estimated_size)
        assert math.isnan(rebuilt.right.estimated_size)

    def test_schema_version_checked(self):
        with pytest.raises(PlanError, match="schema_version"):
            JoinPlan.from_dict({"lo": 0, "hi": 0, "estimated_size": 1.0})
        with pytest.raises(PlanError):
            JoinPlan.from_dict(
                {
                    "schema_version": 99,
                    "lo": 0,
                    "hi": 0,
                    "estimated_size": 1.0,
                }
            )

    def test_malformed_payloads_rejected(self):
        with pytest.raises(PlanError):
            JoinPlan.from_dict("not a dict")
        with pytest.raises(PlanError, match="children"):
            JoinPlan.from_dict(
                {"schema_version": 1, "lo": 0, "hi": 1,
                 "estimated_size": 1.0}
            )
        with pytest.raises(PlanError, match="partition"):
            JoinPlan.from_dict(
                {
                    "schema_version": 1,
                    "lo": 0,
                    "hi": 2,
                    "estimated_size": 1.0,
                    "left": {"lo": 0, "hi": 0, "estimated_size": 1.0},
                    "right": {"lo": 2, "hi": 2, "estimated_size": 1.0},
                }
            )

    def test_plan_error_is_estimation_error(self):
        assert issubclass(PlanError, EstimationError)


class TestPlannerContracts:
    def test_short_chain_raises_plan_error(self, xmark_small):
        with pytest.raises(PlanError):
            optimize([xmark_small.node_set("item")], "exact")

    def test_pre_check_rejects_non_nodesets(self):
        with pytest.raises(PlanError, match="NodeSet"):
            optimize(["not", "node", "sets"], "exact")

    def test_twig_accepts_generators(self, xmark_small):
        from repro.optimizer import estimate_twig_size, twig

        pattern = twig("open_auction", twig("annotation", "text"))
        via_estimator = estimate_twig_size(
            xmark_small.node_set,
            pattern,
            PLHistogramEstimator(num_buckets=8),
            xmark_small.tree.workspace(),
        )
        via_name = estimate_twig_size(
            xmark_small.node_set,
            pattern,
            EstimatorGenerator("PL", num_buckets=8),
            xmark_small.tree.workspace(),
        )
        assert via_estimator == via_name
        bound = estimate_twig_size(
            xmark_small.node_set,
            pattern,
            "ubound",
            xmark_small.tree.workspace(),
        )
        assert bound >= 0.0


class TestFacade:
    def test_top_level_reexports(self):
        import repro

        assert repro.resolve_generator("exact").name == "EXACT"
        assert "UBOUND" in repro.available_generators()
        assert repro.optimize is not None
        assert repro.JoinPlan is JoinPlan

    def test_api_optimize_matches_planner(self, chain_sets, workspace):
        import repro

        assert repro.optimize(
            chain_sets, "exact", workspace=workspace
        ) == optimize(chain_sets, "exact", workspace=workspace)


class TestRegretHarness:
    def test_deterministic_under_fixed_seed(self):
        specs = {
            "IM": {"num_samples": 40, "seed": 17},
            "UBOUND": {},
            "EXACT": {},
        }
        chains = {"xmark": [("desp", "parlist", "listitem")]}
        first = regret_report(
            specs, scale=0.02, seed=5, datasets=["xmark"], chains=chains
        )
        second = regret_report(
            specs, scale=0.02, seed=5, datasets=["xmark"], chains=chains
        )
        assert first == second

    def test_exact_regret_zero_and_bound_sound(self):
        chains = {"xmark": [("desp", "parlist", "listitem")]}
        report = regret_report(
            {"UBOUND": {}, "EXACT": {}},
            scale=0.02,
            seed=5,
            datasets=["xmark"],
            chains=chains,
        )
        assert report["generators"]["EXACT"]["max_regret"] == 0.0
        assert (
            report["generators"]["UBOUND"]["underestimated_segments"]
            == 0
        )
