"""Tests for the dataset generators and workloads (Tables 2 and 3)."""

import pytest

from repro.datasets import (
    ALL_WORKLOADS,
    dblp_queries,
    generate_dblp,
    generate_xmach,
    generate_xmark,
    xmach_queries,
    xmark_queries,
)
from repro.datasets.base import PredicateStats
from repro.join import containment_join_size


class TestGenerationBasics:
    @pytest.mark.parametrize(
        "generator", [generate_xmark, generate_dblp, generate_xmach]
    )
    def test_deterministic_per_seed(self, generator):
        a = generator(scale=0.02, seed=5)
        b = generator(scale=0.02, seed=5)
        assert [
            (e.tag, e.start, e.end) for e in a.tree.elements
        ] == [(e.tag, e.start, e.end) for e in b.tree.elements]

    @pytest.mark.parametrize(
        "generator", [generate_xmark, generate_dblp, generate_xmach]
    )
    def test_different_seeds_differ(self, generator):
        a = generator(scale=0.02, seed=5)
        b = generator(scale=0.02, seed=6)
        assert a.tree.size != b.tree.size or [
            e.tag for e in a.tree.elements
        ] != [e.tag for e in b.tree.elements]

    @pytest.mark.parametrize(
        "generator", [generate_xmark, generate_dblp, generate_xmach]
    )
    def test_scale_grows_document(self, generator):
        small = generator(scale=0.02, seed=1)
        large = generator(scale=0.08, seed=1)
        assert large.tree.size > 2 * small.tree.size

    def test_node_set_caching(self, xmark_small):
        assert xmark_small.node_set("item") is xmark_small.node_set("item")

    def test_repr(self, xmark_small):
        assert "xmark" in repr(xmark_small)


class TestTable2Calibration:
    """Generated statistics must match Table 2 within tolerance."""

    @pytest.mark.parametrize(
        "fixture", ["xmark_small", "dblp_small", "xmach_small"]
    )
    def test_all_predicates_populated(self, fixture, request):
        dataset = request.getfixturevalue(fixture)
        for stats in dataset.statistics():
            assert stats.count > 0, stats.predicate

    @pytest.mark.parametrize(
        "fixture,tolerance",
        [("xmark_small", 0.35), ("dblp_small", 0.6), ("xmach_small", 0.6)],
    )
    def test_counts_near_scaled_targets(self, fixture, tolerance, request):
        """Coarse at small scale; the Table 2 benchmark checks full scale."""
        dataset = request.getfixturevalue(fixture)
        for stats in dataset.statistics():
            target = stats.paper_count * dataset.scale
            if target < 30:  # too small for a tight ratio test
                continue
            assert abs(stats.count - target) / target < tolerance, (
                stats.predicate
            )

    def test_xmark_overlap_properties(self, xmark_small):
        """Table 2(a): only parlist and listitem are 'N/A'."""
        overlap = {
            s.predicate: s.has_overlap for s in xmark_small.statistics()
        }
        assert overlap["parlist"] is True
        assert overlap["listitem"] is True
        for predicate in ("item", "desp", "text", "open_auction", "keyword",
                          "name", "mailbox", "reserve", "bidder", "increase"):
            assert overlap[predicate] is False, predicate

    def test_dblp_overlap_properties(self, dblp_small):
        """Table 2(b): every DBLP predicate is no-overlap."""
        for stats in dblp_small.statistics():
            assert stats.has_overlap is False, stats.predicate

    def test_xmach_overlap_properties(self, xmach_small):
        """Table 2(c): host, path and section are 'N/A'."""
        overlap = {
            s.predicate: s.has_overlap for s in xmach_small.statistics()
        }
        for predicate in ("host", "path", "section"):
            assert overlap[predicate] is True, predicate
        for predicate in ("doc_info", "doc_id", "chapter", "head",
                          "paragraph", "link"):
            assert overlap[predicate] is False, predicate

    def test_stats_row_shape(self, dblp_small):
        stats = dblp_small.statistics()[0]
        assert isinstance(stats, PredicateStats)
        assert stats.overlap_label in ("no overlap", "N/A")


class TestStructuralInvariants:
    @pytest.mark.parametrize(
        "fixture", ["xmark_small", "dblp_small", "xmach_small"]
    )
    def test_region_codes_valid(self, fixture, request):
        """Every generated tree must satisfy the region-code invariants."""
        dataset = request.getfixturevalue(fixture)
        tree = dataset.tree
        codes = set()
        for element in tree.elements:
            assert element.start < element.end
            assert element.start not in codes
            assert element.end not in codes
            codes.add(element.start)
            codes.add(element.end)

    def test_xmark_every_name_in_item_or_person_or_category(
        self, xmark_small
    ):
        items = xmark_small.node_set("item")
        names = xmark_small.node_set("name")
        inside_items = containment_join_size(items, names)
        assert inside_items == len(items)  # one name per item

    def test_dblp_every_sup_inside_a_title(self, dblp_small):
        titles = dblp_small.node_set("title")
        sups = dblp_small.node_set("sup")
        assert containment_join_size(titles, sups) == len(sups)

    def test_xmach_heads_count_chapters_plus_sections(self, xmach_small):
        chapters = len(xmach_small.node_set("chapter"))
        sections = len(xmach_small.node_set("section"))
        heads = len(xmach_small.node_set("head"))
        assert heads == chapters + sections

    def test_xmark_increase_per_bidder(self, xmark_small):
        bidders = xmark_small.node_set("bidder")
        increases = xmark_small.node_set("increase")
        assert len(bidders) == len(increases)
        assert containment_join_size(bidders, increases) == len(increases)


class TestWorkloads:
    def test_query_counts_match_table3(self):
        assert len(xmark_queries()) == 11
        assert len(dblp_queries()) == 6
        assert len(xmach_queries()) == 7

    def test_all_workloads_keys(self):
        assert set(ALL_WORKLOADS) == {"xmark", "dblp", "xmach"}

    def test_query_ids_sequential(self):
        assert [q.id for q in dblp_queries()] == [
            f"Q{i}" for i in range(1, 7)
        ]

    def test_specific_pairs(self):
        assert (xmark_queries()[2].ancestor, xmark_queries()[2].descendant) == (
            "text",
            "keyword",
        )
        assert (dblp_queries()[5].ancestor, dblp_queries()[5].descendant) == (
            "cite",
            "label",
        )
        assert (xmach_queries()[0].ancestor, xmach_queries()[0].descendant) == (
            "host",
            "path",
        )

    def test_operands_resolution(self, xmark_small):
        query = xmark_queries()[0]
        a, d = query.operands(xmark_small)
        assert a.name == "item"
        assert d.name == "name"

    def test_str(self):
        assert str(xmark_queries()[0]) == "Q1: item // name"

    @pytest.mark.parametrize("name", ["xmark", "dblp", "xmach"])
    def test_every_query_nonempty_on_fixtures(self, name, request):
        dataset = request.getfixturevalue(f"{name}_small")
        for query in ALL_WORKLOADS[name]:
            a, d = query.operands(dataset)
            assert len(a) > 0, query
            assert len(d) > 0, query
