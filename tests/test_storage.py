"""Tests for repro.storage: pager, element files, disk sampling."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.join import containment_join_size
from repro.storage import (
    PAGE_SIZE,
    BufferPool,
    DiskNodeSet,
    PageFile,
    im_da_est_disk,
    write_node_set,
)
from repro.storage.element_file import RECORDS_PER_PAGE


class TestPageFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "pages.db"
        with PageFile(path, create=True) as file:
            file.write_page(0, b"hello")
            file.write_page(1, b"x" * PAGE_SIZE)
            file.flush()
            assert file.page_count == 2
            assert file.read_page(0)[:5] == b"hello"
            assert file.read_page(0)[5:10] == b"\x00" * 5  # padded
            assert file.read_page(1) == b"x" * PAGE_SIZE

    def test_oversized_page_rejected(self, tmp_path):
        with PageFile(tmp_path / "p.db", create=True) as file:
            with pytest.raises(ReproError):
                file.write_page(0, b"y" * (PAGE_SIZE + 1))

    def test_read_beyond_end(self, tmp_path):
        with PageFile(tmp_path / "p.db", create=True) as file:
            file.write_page(0, b"a")
            file.flush()
            with pytest.raises(ReproError):
                file.read_page(5)

    def test_negative_page(self, tmp_path):
        with PageFile(tmp_path / "p.db", create=True) as file:
            with pytest.raises(ReproError):
                file.read_page(-1)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            PageFile(tmp_path / "absent.db")


class TestBufferPool:
    @pytest.fixture()
    def file(self, tmp_path):
        with PageFile(tmp_path / "p.db", create=True) as file:
            for page_no in range(10):
                file.write_page(page_no, bytes([page_no]) * 8)
            file.flush()
            yield file

    def test_hit_miss_accounting(self, file):
        pool = BufferPool(file, capacity=4)
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(1)
        assert pool.stats.misses == 2
        assert pool.stats.hits == 1
        assert pool.stats.accesses == 3
        assert pool.stats.hit_ratio == pytest.approx(1 / 3)

    def test_lru_eviction(self, file):
        pool = BufferPool(file, capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # evicts page 0
        assert pool.stats.evictions == 1
        assert pool.resident_pages == 2
        pool.get_page(1)  # still resident
        assert pool.stats.hits == 1
        pool.get_page(0)  # must re-read
        assert pool.stats.misses == 4

    def test_lru_recency_update(self, file):
        pool = BufferPool(file, capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # refresh page 0
        pool.get_page(2)  # should evict page 1, not 0
        pool.get_page(0)
        assert pool.stats.hits == 2

    def test_invalid_capacity(self, file):
        with pytest.raises(ReproError):
            BufferPool(file, capacity=0)

    def test_clear_keeps_stats(self, file):
        pool = BufferPool(file, capacity=4)
        pool.get_page(0)
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.stats.misses == 1


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    base = tmp_path_factory.mktemp("element_files")
    ancestors = dataset.node_set("desp")
    descendants = dataset.node_set("text")
    write_node_set(base / "a.db", ancestors)
    write_node_set(base / "d.db", descendants)
    return base, ancestors, descendants


class TestElementFile:
    def test_round_trip(self, stored):
        base, ancestors, __ = stored
        with DiskNodeSet(base / "a.db") as disk:
            assert len(disk) == len(ancestors)
            recovered = disk.to_node_set(name="desp")
            assert recovered.elements == ancestors.elements

    def test_record_access(self, stored):
        base, ancestors, __ = stored
        with DiskNodeSet(base / "a.db") as disk:
            for index in (0, 1, len(ancestors) // 2, len(ancestors) - 1):
                assert disk.element(index) == ancestors[index]
                assert disk.start_at(index) == ancestors[index].start

    def test_out_of_range(self, stored):
        base, ancestors, __ = stored
        with DiskNodeSet(base / "a.db") as disk:
            with pytest.raises(ReproError):
                disk.element(len(ancestors))
            with pytest.raises(ReproError):
                disk.sorted_end_at(-1)

    def test_stab_count_matches_memory(self, stored):
        base, ancestors, __ = stored
        rng = np.random.default_rng(0)
        workspace = ancestors.workspace()
        with DiskNodeSet(base / "a.db") as disk:
            for position in rng.integers(
                workspace.lo, workspace.hi, size=100
            ):
                assert disk.stab_count(int(position)) == (
                    ancestors.stab_count(int(position))
                )

    def test_empty_set(self, tmp_path):
        write_node_set(tmp_path / "empty.db", NodeSet([]))
        with DiskNodeSet(tmp_path / "empty.db") as disk:
            assert len(disk) == 0
            assert disk.stab_count(5) == 0
            assert list(disk) == []

    def test_single_element(self, tmp_path):
        ns = NodeSet([Element("only", 3, 9, 1)])
        write_node_set(tmp_path / "one.db", ns)
        with DiskNodeSet(tmp_path / "one.db") as disk:
            assert disk.element(0) == ns[0]
            assert disk.stab_count(5) == 1
            assert disk.stab_count(10) == 0

    def test_not_an_element_file(self, tmp_path):
        with PageFile(tmp_path / "junk.db", create=True) as file:
            file.write_page(0, b"JUNKJUNK" * 10)
            file.flush()
        with pytest.raises(ReproError, match="not an element file"):
            DiskNodeSet(tmp_path / "junk.db")

    def test_multi_page_layout(self, stored):
        base, ancestors, __ = stored
        assert len(ancestors) > RECORDS_PER_PAGE  # spans several pages
        with DiskNodeSet(base / "a.db") as disk:
            # Crossing a page boundary must not corrupt records.
            boundary = RECORDS_PER_PAGE
            assert disk.element(boundary - 1) == ancestors[boundary - 1]
            assert disk.element(boundary) == ancestors[boundary]


class TestDiskSampling:
    def test_exact_with_full_sample(self, stored):
        base, ancestors, descendants = stored
        true = containment_join_size(ancestors, descendants)
        with DiskNodeSet(base / "a.db") as a, DiskNodeSet(base / "d.db") as d:
            result = im_da_est_disk(a, d, num_samples=10**9, seed=0)
            assert result.estimate == true
            assert result.samples == len(descendants)

    def test_page_accounting(self, stored):
        base, __, __d = stored
        with DiskNodeSet(base / "a.db", buffer_capacity=4) as a:
            with DiskNodeSet(base / "d.db") as d:
                result = im_da_est_disk(a, d, num_samples=50, seed=1)
                assert result.samples == 50
                assert result.page_accesses > 0
                assert 0 < result.page_misses <= result.page_accesses
                # Each probe is two binary searches; with tiny buffers the
                # cost stays logarithmic in |A| per probe.
                assert result.accesses_per_probe < 40

    def test_buffer_warming(self, stored):
        """Repeated probing with a large pool approaches all-hits —
        the Section 5.3.1 'loads part of the index into the buffer'
        effect."""
        base, __, __d = stored
        with DiskNodeSet(base / "a.db", buffer_capacity=512) as a:
            with DiskNodeSet(base / "d.db") as d:
                cold = im_da_est_disk(a, d, num_samples=100, seed=2)
                warm = im_da_est_disk(a, d, num_samples=100, seed=3)
                assert warm.page_misses < cold.page_misses

    def test_invalid_samples(self, stored):
        base, __, __d = stored
        with DiskNodeSet(base / "a.db") as a, DiskNodeSet(base / "d.db") as d:
            with pytest.raises(Exception):
                im_da_est_disk(a, d, num_samples=0)

    def test_unbiased(self, stored):
        import statistics

        base, ancestors, descendants = stored
        true = containment_join_size(ancestors, descendants)
        with DiskNodeSet(base / "a.db") as a, DiskNodeSet(base / "d.db") as d:
            estimates = [
                im_da_est_disk(a, d, num_samples=60, seed=s).estimate
                for s in range(60)
            ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.10
