"""Tests for repro.xmltree.serializer."""

from repro.datasets import generate_dblp
from repro.xmltree import parse_xml, to_xml
from repro.xmltree.tree import DataTree


def structure(tree: DataTree):
    return [(e.tag, e.start, e.end, e.level) for e in tree.elements]


class TestSerializer:
    def test_leaf_self_closes(self):
        assert to_xml(parse_xml("<a/>")) == "<a/>\n"

    def test_nested_indentation(self):
        text = to_xml(parse_xml("<a><b><c/></b></a>"), indent=2)
        assert text == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_zero_indent(self):
        text = to_xml(parse_xml("<a><b/></a>"), indent=0)
        assert text == "<a>\n<b/>\n</a>\n"

    def test_include_regions(self):
        text = to_xml(parse_xml("<a><b/></a>"), include_regions=True)
        assert 'start="1" end="4"' in text
        assert 'start="2" end="3"' in text

    def test_round_trip_small(self):
        original = parse_xml("<a><b><c/><d/></b><e/></a>")
        reparsed = parse_xml(to_xml(original))
        assert structure(reparsed) == structure(original)

    def test_round_trip_with_regions_attribute(self):
        original = parse_xml("<a><b/></a>")
        reparsed = parse_xml(to_xml(original, include_regions=True))
        assert structure(reparsed) == structure(original)

    def test_round_trip_generated_dataset(self):
        dataset = generate_dblp(scale=0.002, seed=5)
        reparsed = parse_xml(to_xml(dataset.tree))
        assert structure(reparsed) == structure(dataset.tree)
