"""Documentation integrity: the docs must reference real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_text():
    return (ROOT / "EXPERIMENTS.md").read_text()


class TestDocumentsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/ARCHITECTURE.md", "pyproject.toml"],
    )
    def test_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 200, name


class TestDesignReferences:
    def test_benchmark_targets_exist(self, design_text):
        """Every benchmarks/*.py file DESIGN.md names must exist."""
        referenced = set(re.findall(r"benchmarks/\w+\.py", design_text))
        assert referenced, "DESIGN.md should name benchmark targets"
        for target in referenced:
            assert (ROOT / target).exists(), target

    def test_modules_exist(self, design_text):
        """Every repro.x.y module path in the inventory must import."""
        import importlib

        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", design_text))
        assert len(modules) >= 15
        for module in modules:
            importlib.import_module(module)

    def test_paper_check_recorded(self, design_text):
        assert "matches" in design_text.lower()
        assert "SIGMOD 2003" in design_text

    def test_every_table_and_figure_indexed(self, design_text):
        for artifact in ("Fig. 3", "Table 2", "Table 3", "Table 4",
                         "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert artifact in design_text, artifact


class TestExperimentsReferences:
    def test_every_results_file_mentioned_is_generated(
        self, experiments_text
    ):
        """Result names in EXPERIMENTS.md must match benchmark reports.

        The results/ directory is produced by a benchmark run; here we
        check the names against the report() calls in the bench sources.
        """
        bench_sources = "".join(
            path.read_text() for path in (ROOT / "benchmarks").glob("*.py")
        )
        referenced = set(
            re.findall(r"`([a-z0-9_]+)`", experiments_text)
        ) & set(re.findall(r'report\(\s*"([a-z0-9_]+)"', bench_sources))
        assert len(referenced) >= 8

    def test_records_paper_table4_values(self, experiments_text):
        for value in ("2.0520", "0.9814", "0.0322"):
            assert value in experiments_text

    def test_aggregation_note_present(self, experiments_text):
        assert "error of the" in experiments_text.lower()


class TestReadme:
    def test_examples_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, script.name

    def test_cli_commands_documented_exist(self):
        from repro.__main__ import _COMMANDS

        readme = (ROOT / "README.md").read_text()
        for command in re.findall(r"python -m repro ([\w-]+)", readme):
            assert (
                command in _COMMANDS
                or command in ("all", "obs-report", "qa")
            ), command

    def test_api_doc_present_and_linked(self):
        api_doc = ROOT / "docs" / "API.md"
        assert api_doc.exists()
        assert len(api_doc.read_text()) > 200
        assert "docs/API.md" in (ROOT / "README.md").read_text()
        architecture = (ROOT / "docs" / "ARCHITECTURE.md").read_text()
        assert "API.md" in architecture
