"""Tests for the stable public facade (repro.api / top-level repro).

The facade contract: ``repro.estimate(..., method=NAME)`` returns
exactly what direct registry construction would, for every registered
name; aliases and case variants resolve; errors carry a nearest-match
hint; ``build_catalog`` accepts datasets and plain-int budgets.
"""

import pytest

import repro
from repro import api
from repro.core.errors import EstimationError, UnknownEstimatorError
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.estimators.registry import canonical_name
from repro.perf.cache import SummaryCache

#: Constructor arguments that make every registry method cheap and
#: deterministic for a facade round-trip.
METHOD_KWARGS = {
    "PL": {"num_buckets": 10},
    "PH": {"num_cells": 25},
    "IM": {"num_samples": 10, "seed": 3},
    "PM": {"num_samples": 10, "seed": 3},
    "COV": {"num_buckets": 10},
    "CROSS": {"num_samples": 10, "seed": 3},
    "SYS": {"num_samples": 10, "seed": 3},
    "BIFOCAL": {"num_samples": 10, "seed": 3},
    "SKETCH": {"num_counters": 10, "depth": 2, "seed": 3},
    "WAVELET": {"num_coefficients": 10},
    "SEMI-D": {"num_samples": 5, "seed": 3},
    "SEMI-A": {"num_samples": 5, "seed": 3},
    "2SAMPLE": {"num_samples": 5, "seed": 3},
    "HYBRID": {"num_buckets": 10, "num_samples": 10, "seed": 3},
}


class TestEstimateFacade:
    @pytest.mark.parametrize("name", sorted(repro.available_estimators()))
    def test_round_trips_every_registry_name(self, name, figure1_tree):
        a, d = figure1_tree
        kwargs = METHOD_KWARGS.get(name, {})
        workspace = Workspace(1, 22)
        direct = repro.make_estimator(name, **kwargs).estimate(
            a, d, workspace
        )
        via_facade = repro.estimate(
            a, d, method=name, workspace=workspace, **kwargs
        )
        assert via_facade.value == direct.value
        assert via_facade.estimator == direct.estimator
        assert via_facade.details == direct.details

    def test_alias_and_case_insensitive(self, figure1_tree):
        a, d = figure1_tree
        for method in ("pl", "PL-Histogram", "point-line"):
            result = repro.estimate(a, d, method=method, num_buckets=5)
            assert result.estimator == "PL"

    def test_default_method_is_pl(self, figure1_tree):
        a, d = figure1_tree
        assert repro.estimate(a, d, num_buckets=5).estimator == "PL"

    def test_nearest_match_hint(self):
        with pytest.raises(EstimationError, match="did you mean 'PL'"):
            repro.make_estimator("PLH")

    def test_unknown_name_lists_available(self):
        with pytest.raises(EstimationError, match="unknown estimator"):
            repro.make_estimator("ZZZZZZ")

    def test_ambiguous_fragment_lists_every_candidate(self):
        """An ambiguous prefix must not silently pick one variant."""
        with pytest.raises(UnknownEstimatorError) as excinfo:
            canonical_name("SEMI")
        error = excinfo.value
        assert error.name == "SEMI"
        assert "SEMI-A" in error.candidates
        assert "SEMI-D" in error.candidates

    def test_unknown_estimator_error_is_estimation_error(self):
        with pytest.raises(EstimationError):
            canonical_name("PLH")

    def test_canonical_name(self):
        assert canonical_name("im-da") == "IM"
        assert canonical_name(" pl ") == "PL"
        assert canonical_name("COVERAGE") == "COV"

    def test_cache_round_trip(self, figure1_tree):
        a, d = figure1_tree
        cache = SummaryCache()
        bare = repro.estimate(a, d, method="PL", num_buckets=5)
        first = repro.estimate(
            a, d, method="PL", num_buckets=5, cache=cache
        )
        second = repro.estimate(
            a, d, method="PL", num_buckets=5, cache=cache
        )
        assert first.value == second.value == bare.value
        assert cache.stats()["hits"] > 0


class TestBuildCatalog:
    def test_accepts_dataset_and_int_budget(self, xmark_small):
        catalog = repro.build_catalog(
            xmark_small, 400, tags=["item", "name"]
        )
        estimate = catalog.estimate_join("item", "name")
        assert estimate.value >= 0.0

    def test_accepts_tree(self, xmark_small):
        catalog = repro.build_catalog(
            xmark_small.tree, 400, tags=["item", "name"]
        )
        assert catalog.estimate_join("item", "name").value >= 0.0


class TestWireSchema:
    def test_round_trip(self, figure1_tree):
        a, d = figure1_tree
        original = repro.estimate(a, d, method="PL", num_buckets=5)
        rebuilt = Estimate.from_dict(original.to_dict())
        assert rebuilt.value == original.value
        assert rebuilt.estimator == original.estimator
        assert rebuilt.mre == original.mre

    def test_non_finite_floats_survive(self):
        original = Estimate(float("inf"), "PL", mre=float("inf"))
        payload = original.to_dict()
        assert payload["value"] == "Infinity"  # strict-JSON encoding
        rebuilt = Estimate.from_dict(payload)
        assert rebuilt.value == float("inf")
        assert rebuilt.mre == float("inf")

    def test_payload_is_strict_json(self, figure1_tree):
        import json

        a, d = figure1_tree
        payload = repro.estimate(
            a, d, method="IM", num_samples=10, seed=3
        ).to_dict()
        round_tripped = json.loads(
            json.dumps(payload, allow_nan=False)
        )
        assert round_tripped == payload

    def test_unsupported_version_rejected(self):
        payload = Estimate(1.0, "PL").to_dict()
        payload["schema_version"] = 99
        with pytest.raises(EstimationError, match="schema_version"):
            Estimate.from_dict(payload)
        del payload["schema_version"]
        with pytest.raises(EstimationError, match="schema_version"):
            Estimate.from_dict(payload)


class TestPublicSurface:
    def test_top_level_reexports(self):
        for name in ("Estimate", "Estimator", "NodeSet", "Workspace",
                     "estimate", "build_catalog", "make_estimator",
                     "available_estimators", "serve", "EstimationService",
                     "EstimateRequest", "EstimateResponse"):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name

    def test_api_module_all_resolves(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestModuleResolution:
    def test_canonical_names_resolve(self):
        import types

        for name in ("maintenance", "storage", "stream", "qa"):
            module = repro.resolve_module(name)
            assert isinstance(module, types.ModuleType)
            assert module.__name__ == f"repro.{name}"

    def test_case_insensitive(self):
        assert (
            repro.resolve_module("STREAM")
            is repro.resolve_module("stream")
        )

    def test_aliases(self):
        pairs = {
            "incremental": "repro.maintenance",
            "reservoir": "repro.maintenance",
            "ttree": "repro.maintenance",
            "pager": "repro.storage",
            "disk": "repro.storage",
            "live": "repro.stream",
            "churn": "repro.stream",
            "streaming": "repro.stream",
            "bandit": "repro.router",
            "cache": "repro.perf",
        }
        for alias, target in pairs.items():
            assert repro.resolve_module(alias).__name__ == target, alias

    def test_available_modules_lists_subsystems(self):
        names = repro.available_modules()
        assert names == sorted(names)
        for expected in ("maintenance", "storage", "stream", "service"):
            assert expected in names

    def test_every_listed_module_imports(self):
        for name in repro.available_modules():
            repro.resolve_module(name)

    def test_unknown_module_nearest_match(self):
        from repro.core.errors import UnknownModuleError

        with pytest.raises(UnknownModuleError, match="did you mean"):
            repro.resolve_module("strem")
        try:
            repro.resolve_module("strem")
        except UnknownModuleError as error:
            assert error.name == "strem"
            assert "stream" in error.candidates

    def test_new_streaming_reexports(self):
        for name in ("CatalogStore", "LiveWorkspace", "Mutation",
                     "MutationBatch", "MutationFeed",
                     "available_modules", "resolve_module"):
            assert hasattr(repro, name), name
            assert name in repro.__all__, name
            assert name in api.__all__, name
        for name in ("DynamicTTree", "IncrementalPLHistogram",
                     "IncrementalCellHistogram", "ReservoirSample",
                     "DiskNodeSet", "write_node_set"):
            assert hasattr(api, name), name
            assert name in api.__all__, name
