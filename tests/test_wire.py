"""The service wire formats: binary zero-copy envelope and JSON.

Contracts pinned here:

* both formats round-trip every :class:`EstimateRequest` and
  :class:`EstimateResponse` exactly — operand arrays, names,
  fingerprints, config, workspace, deadlines, and the response's
  non-finite floats (``inf`` mre travels as the string ``"Infinity"``);
* binary decode is zero-copy — decoded operand arrays alias the payload
  buffer, including the shipped sorted-end frame;
* format negotiation prefers binary, defaults to JSON when the peer
  states no preference, and rejects accept lists with no known entry;
* :meth:`EstimationService.estimate_wire` answers in the arrival format
  and the two formats produce bit-identical estimates for seeded
  requests; ``stats()["wire"]`` accounts encode/decode separately;
* malformed payloads (bad version, wrong kind, unserializable config)
  raise :class:`ServiceError` instead of crashing the worker.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.errors import ServiceError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.service import wire
from repro.service.engine import EstimationService
from repro.service.request import EstimateRequest, EstimateResponse


@pytest.fixture
def operands(xmark_small):
    tree = xmark_small.tree
    return tree.node_set("desp"), tree.node_set("text")


def _request(a, d, **overrides):
    fields = {
        "ancestors": a,
        "descendants": d,
        "method": "IM",
        "workspace": Workspace(0, 50_000),
        "config": {"num_samples": 16, "seed": 7},
        "deadline_s": None,
        "request_id": "req-wire-1",
    }
    fields.update(overrides)
    return EstimateRequest(**fields)


def _response(**overrides):
    fields = {
        "estimate": Estimate(
            value=1234.5,
            estimator="IM",
            mre=math.inf,
            details={"samples": 16, "backend": "rank"},
        ),
        "status": "ok",
        "ladder_level": 0,
        "ladder_name": "full",
        "deadline_missed": False,
        "degraded_reason": None,
        "wait_s": 0.001,
        "service_s": 0.002,
        "batch_size": 3,
        "request_id": "req-wire-1",
    }
    fields.update(overrides)
    return EstimateResponse(**fields)


def _assert_requests_equal(got: EstimateRequest, want: EstimateRequest):
    for role in ("ancestors", "descendants"):
        mine, theirs = getattr(got, role), getattr(want, role)
        assert np.array_equal(mine.starts, theirs.starts)
        assert np.array_equal(mine.ends, theirs.ends)
        assert mine._name == theirs._name
        assert mine.fingerprint == theirs.fingerprint
    assert got.method == want.method
    assert got.workspace == want.workspace
    assert got.config == want.config
    assert got.deadline_s == want.deadline_s
    assert got.request_id == want.request_id


class TestNegotiation:
    def test_no_preference_defaults_to_json(self):
        assert wire.negotiate_format(None) == wire.FORMAT_JSON
        assert wire.negotiate_format([]) == wire.FORMAT_JSON

    def test_binary_preferred_when_offered(self):
        assert wire.negotiate_format(["json", "binary"]) == wire.FORMAT_BINARY
        assert wire.negotiate_format(["binary"]) == wire.FORMAT_BINARY
        assert wire.negotiate_format(["json"]) == wire.FORMAT_JSON

    def test_unknown_entries_ignored(self):
        assert (
            wire.negotiate_format(["msgpack", "json"]) == wire.FORMAT_JSON
        )

    def test_no_common_format_raises(self):
        with pytest.raises(ServiceError, match="no mutually supported"):
            wire.negotiate_format(["msgpack", "protobuf"])

    def test_sniff(self, operands):
        a, d = operands
        request = _request(a, d)
        binary = wire.encode_request(request, wire.FORMAT_BINARY)
        as_json = wire.encode_request(request, wire.FORMAT_JSON)
        assert wire.sniff_format(binary) == wire.FORMAT_BINARY
        assert wire.sniff_format(as_json) == wire.FORMAT_JSON
        assert wire.sniff_format(b"") == wire.FORMAT_JSON


class TestRequestRoundTrip:
    @pytest.mark.parametrize("wire_format", wire.KNOWN_FORMATS)
    def test_exact(self, wire_format, operands):
        a, d = operands
        request = _request(a, d)
        payload = wire.encode_request(request, wire_format)
        decoded, detected = wire.decode_request(payload)
        assert detected == wire_format
        _assert_requests_equal(decoded, request)

    @pytest.mark.parametrize("wire_format", wire.KNOWN_FORMATS)
    def test_defaults(self, wire_format, operands):
        a, d = operands
        request = _request(a, d, workspace=None, config={}, deadline_s=0.25)
        decoded, __ = wire.decode_request(
            wire.encode_request(request, wire_format)
        )
        _assert_requests_equal(decoded, request)

    def test_binary_is_zero_copy(self, operands):
        a, d = operands
        payload = wire.encode_request(_request(a, d), wire.FORMAT_BINARY)
        decoded, __ = wire.decode_request(payload)
        # np.shares_memory coerces a raw bytes operand through a copy;
        # compare against a view of the payload buffer instead.
        buffer = np.frombuffer(payload, dtype=np.uint8)
        for operand in (decoded.ancestors, decoded.descendants):
            assert np.shares_memory(operand.starts, buffer)
            assert np.shares_memory(operand.ends, buffer)
            # the sorted-end frame ships too: no re-sort on arrival
            assert np.shares_memory(operand.sorted_ends, buffer)

    def test_frames_are_aligned(self, operands):
        a, d = operands
        payload = wire.encode_request(_request(a, d), wire.FORMAT_BINARY)
        header, arrays = wire._unpack(payload)
        for meta in header["frames"]:
            assert meta["offset"] % 64 == 0
        for array, meta in zip(arrays, header["frames"]):
            assert array.dtype == np.dtype(meta["dtype"])

    def test_unserializable_config_raises(self, operands):
        a, d = operands
        request = _request(a, d, config={"rng": object()})
        for wire_format in wire.KNOWN_FORMATS:
            with pytest.raises(ServiceError, match="not wire-serializable"):
                wire.encode_request(request, wire_format)

    def test_unknown_format_raises(self, operands):
        a, d = operands
        with pytest.raises(ServiceError, match="unknown wire format"):
            wire.encode_request(_request(a, d), "msgpack")


class TestResponseRoundTrip:
    @pytest.mark.parametrize("wire_format", wire.KNOWN_FORMATS)
    def test_exact(self, wire_format):
        response = _response()
        decoded = wire.decode_response(
            wire.encode_response(response, wire_format)
        )
        assert decoded == response

    @pytest.mark.parametrize("wire_format", wire.KNOWN_FORMATS)
    def test_non_finite_floats(self, wire_format):
        response = _response(
            estimate=Estimate(
                value=0.0,
                estimator="PL",
                mre=math.inf,
                details={"bad": float("nan"), "neg": -math.inf},
            ),
            status="degraded",
            degraded_reason="deadline",
            deadline_missed=True,
        )
        decoded = wire.decode_response(
            wire.encode_response(response, wire_format)
        )
        assert decoded.estimate.mre == math.inf
        # Estimate's schema converts value/mre back to floats; details
        # keep the JSON sentinel strings (the documented to_dict form).
        assert decoded.estimate.details["bad"] == "NaN"
        assert decoded.estimate.details["neg"] == "-Infinity"
        assert decoded.degraded_reason == "deadline"

    def test_binary_response_has_no_frames(self):
        payload = wire.encode_response(_response(), wire.FORMAT_BINARY)
        header, arrays = wire._unpack(payload)
        assert header["frames"] == []
        assert arrays == []


class TestMalformedPayloads:
    def test_bad_version(self, operands):
        a, d = operands
        payload = bytearray(
            wire.encode_request(_request(a, d), wire.FORMAT_BINARY)
        )
        payload[len(wire.MAGIC)] = 99
        with pytest.raises(ServiceError, match="unsupported wire version"):
            wire.decode_request(bytes(payload))

    def test_wrong_kind(self, operands):
        a, d = operands
        request_payload = wire.encode_request(
            _request(a, d), wire.FORMAT_BINARY
        )
        with pytest.raises(ServiceError, match="estimate_response"):
            wire.decode_response(request_payload)
        response_payload = wire.encode_response(
            _response(), wire.FORMAT_BINARY
        )
        with pytest.raises(ServiceError, match="estimate_request"):
            wire.decode_request(response_payload)

    def test_garbage_is_sniffed_as_json_and_rejected(self):
        with pytest.raises(ServiceError, match="malformed JSON"):
            wire.decode_request(b"\x00\x01\x02 not json")
        with pytest.raises(ServiceError, match="malformed JSON"):
            wire.decode_response(b"{truncated")

    def test_bad_response_schema_version(self):
        document = json.loads(
            wire.encode_response(_response(), wire.FORMAT_JSON)
        )
        document["response"]["schema_version"] = 42
        with pytest.raises(ServiceError, match="schema_version"):
            wire.decode_response(json.dumps(document).encode())


class TestServiceWire:
    @pytest.mark.parametrize("wire_format", wire.KNOWN_FORMATS)
    def test_answers_in_arrival_format(self, wire_format, operands):
        a, d = operands
        request = _request(a, d)
        with EstimationService(workers=0) as service:
            reply = service.estimate_wire(
                wire.encode_request(request, wire_format)
            )
        assert wire.sniff_format(reply) == wire_format
        response = wire.decode_response(reply)
        assert response.status == "ok"
        assert response.request_id == request.request_id
        assert response.estimate.value >= 0

    def test_formats_bit_identical_for_seeded_requests(self, operands):
        a, d = operands
        values = {}
        for wire_format in wire.KNOWN_FORMATS:
            with EstimationService(workers=0) as service:
                reply = service.estimate_wire(
                    wire.encode_request(_request(a, d), wire_format)
                )
            response = wire.decode_response(reply)
            values[wire_format] = (
                response.estimate.value,
                response.estimate.details,
            )
        assert values["binary"] == values["json"]

    def test_matches_direct_estimate(self, operands):
        a, d = operands
        request = _request(a, d)
        with EstimationService(workers=0) as service:
            direct = service.estimate(
                a, d, "IM", workspace=request.workspace, **request.config
            )
            reply = service.estimate_wire(
                wire.encode_request(request, wire.FORMAT_BINARY)
            )
        response = wire.decode_response(reply)
        assert response.estimate.value == direct.estimate.value
        assert response.estimate.details == direct.estimate.details

    def test_stats_report_wire_timers(self, operands):
        a, d = operands
        with EstimationService(workers=0) as service:
            for wire_format in wire.KNOWN_FORMATS:
                service.estimate_wire(
                    wire.encode_request(_request(a, d), wire_format)
                )
            stats = service.stats()
        assert stats["wire"]["requests"] == 2
        assert stats["wire"]["decode_mean_s"] > 0
        assert stats["wire"]["encode_mean_s"] > 0
        assert stats["wire"]["decode_p99_s"] >= stats["wire"]["decode_mean_s"]

    def test_decoded_operands_estimate_like_originals(self, operands):
        # The zero-copy node sets coming off the wire must behave as
        # first-class operands: same fingerprint, same seeded estimate.
        a, d = operands
        decoded, __ = wire.decode_request(
            wire.encode_request(_request(a, d), wire.FORMAT_BINARY)
        )
        from repro.estimators.im_sampling import IMSamplingEstimator

        want = IMSamplingEstimator(num_samples=16, seed=7).estimate(a, d)
        got = IMSamplingEstimator(num_samples=16, seed=7).estimate(
            decoded.ancestors, decoded.descendants
        )
        assert got.value == want.value
        assert got.details == want.details
