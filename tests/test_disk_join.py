"""Tests for repro.storage.disk_join: the streaming disk-resident join."""

import pytest

from repro.core.nodeset import NodeSet
from repro.join import containment_join_size
from repro.storage import (
    DiskNodeSet,
    stack_tree_join_disk,
    write_node_set,
)
from repro.storage.element_file import ENDS_PER_PAGE, RECORDS_PER_PAGE


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    base = tmp_path_factory.mktemp("disk_join")
    pairs = {}
    for tag in ("desp", "text", "parlist", "listitem", "reserve"):
        node_set = dataset.node_set(tag)
        write_node_set(base / f"{tag}.db", node_set)
        pairs[tag] = node_set
    return base, pairs


class TestDiskJoin:
    @pytest.mark.parametrize(
        "anc,desc",
        [("desp", "text"), ("parlist", "listitem"), ("desp", "reserve")],
    )
    def test_counts_match_memory(self, stored, anc, desc):
        base, sets = stored
        expected = containment_join_size(sets[anc], sets[desc])
        with DiskNodeSet(base / f"{anc}.db") as a:
            with DiskNodeSet(base / f"{desc}.db") as d:
                result = stack_tree_join_disk(a, d)
        assert result.pair_count == expected

    def test_sequential_io(self, stored):
        """Each data page is read at most once with any buffer >= 2."""
        base, sets = stored
        with DiskNodeSet(base / "desp.db", buffer_capacity=2) as a:
            with DiskNodeSet(base / "text.db", buffer_capacity=2) as d:
                result = stack_tree_join_disk(a, d)
        a_pages = -(-len(sets["desp"]) // RECORDS_PER_PAGE)
        d_pages = -(-len(sets["text"]) // RECORDS_PER_PAGE)
        assert result.ancestor_page_misses <= a_pages + 1
        assert result.descendant_page_misses <= d_pages + 1
        assert result.total_page_misses == (
            result.ancestor_page_misses + result.descendant_page_misses
        )

    def test_empty_operands(self, stored, tmp_path):
        base, __ = stored
        write_node_set(tmp_path / "empty.db", NodeSet([]))
        with DiskNodeSet(tmp_path / "empty.db") as empty:
            with DiskNodeSet(base / "text.db") as d:
                assert stack_tree_join_disk(empty, d).pair_count == 0
            with DiskNodeSet(base / "desp.db") as a:
                assert stack_tree_join_disk(a, empty).pair_count == 0

    def test_join_cheaper_than_probing_everything(self, stored):
        """The merge touches each page once; probing per descendant costs
        O(log) pages per probe and loses on full scans."""
        from repro.storage import im_da_est_disk

        base, sets = stored
        with DiskNodeSet(base / "desp.db", buffer_capacity=4) as a:
            with DiskNodeSet(base / "text.db", buffer_capacity=4) as d:
                merge = stack_tree_join_disk(a, d)
                a.pool.stats.reset()
                probe = im_da_est_disk(
                    a, d, num_samples=len(sets["text"]), seed=0
                )
        assert merge.ancestor_page_misses < probe.page_misses
