"""Tests for repro.core.workspace."""

import pytest

from repro.core.errors import EmptyNodeSetError, ReproError
from repro.core.workspace import Bucket, Workspace


class TestWorkspace:
    def test_width_counts_integer_positions(self):
        assert Workspace(1, 22).width == 22
        assert Workspace(5, 5).width == 1

    def test_span(self):
        assert Workspace(1, 22).span == 21

    def test_validate_rejects_inverted(self):
        with pytest.raises(ReproError):
            Workspace(5, 4).validate()

    def test_contains(self):
        workspace = Workspace(2, 8)
        assert workspace.contains(2)
        assert workspace.contains(8)
        assert workspace.contains(5.5)
        assert not workspace.contains(1)
        assert not workspace.contains(9)

    def test_positions(self):
        assert list(Workspace(3, 6).positions()) == [3, 4, 5, 6]

    def test_buckets_partition_whole_workspace(self):
        workspace = Workspace(1, 100)
        buckets = workspace.buckets(7)
        assert len(buckets) == 7
        assert buckets[0].wss == 1
        assert buckets[-1].wse == pytest.approx(101)
        for left, right in zip(buckets, buckets[1:]):
            assert left.wse == pytest.approx(right.wss)

    def test_buckets_equal_width(self):
        buckets = Workspace(0, 99).buckets(10)
        widths = {round(b.width, 9) for b in buckets}
        assert widths == {10.0}

    def test_buckets_bad_count(self):
        with pytest.raises(ReproError):
            Workspace(1, 10).buckets(0)

    def test_bucket_of_assigns_each_position_once(self):
        workspace = Workspace(1, 22)
        for count in (1, 3, 5, 22):
            buckets = workspace.buckets(count)
            for position in workspace.positions():
                index = workspace.bucket_of(position, count)
                bucket = buckets[index]
                assert bucket.wss <= position
                assert position < bucket.wse or index == count - 1

    def test_bucket_of_counts_match_histogram(self):
        workspace = Workspace(1, 22)
        counts = [0] * 5
        for position in workspace.positions():
            counts[workspace.bucket_of(position, 5)] += 1
        assert sum(counts) == workspace.width
        assert max(counts) - min(counts) <= 1  # near-equal split

    def test_bucket_of_outside_raises(self):
        with pytest.raises(ReproError):
            Workspace(1, 10).bucket_of(11, 2)

    def test_spanning(self):
        merged = Workspace.spanning([Workspace(5, 9), Workspace(2, 6)])
        assert merged == Workspace(2, 9)

    def test_spanning_empty_raises(self):
        with pytest.raises(EmptyNodeSetError):
            Workspace.spanning([])


class TestBucket:
    def test_width(self):
        assert Bucket(0, 2.0, 5.5).width == pytest.approx(3.5)
