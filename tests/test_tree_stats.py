"""Tests for repro.xmltree.stats."""

import pytest

from repro.xmltree import (
    parse_xml,
    recursive_tags,
    tag_level_spread,
    tree_statistics,
)


@pytest.fixture(scope="module")
def doc():
    return parse_xml(
        "<site>"
        "<list><item/><item/><list><item/></list></list>"
        "<person><name/></person>"
        "</site>"
    )


class TestTreeStatistics:
    def test_counts(self, doc):
        stats = tree_statistics(doc)
        assert stats.size == 8
        assert stats.height == 4
        assert stats.leaf_count == 4  # three items + one name

    def test_leaf_count_exact(self):
        stats = tree_statistics(parse_xml("<a><b/><c><d/></c></a>"))
        assert stats.leaf_count == 2

    def test_average_depth(self):
        stats = tree_statistics(parse_xml("<a><b/><c/></a>"))
        assert stats.average_depth == pytest.approx(2 / 3)

    def test_fanout(self):
        stats = tree_statistics(parse_xml("<a><b/><c/><d/></a>"))
        assert stats.max_fanout == 3
        assert stats.average_fanout == pytest.approx(3.0)

    def test_depth_histogram(self, doc):
        stats = tree_statistics(doc)
        assert stats.depth_histogram[0] == 1
        assert sum(stats.depth_histogram.values()) == doc.size

    def test_describe(self, doc):
        text = tree_statistics(doc).describe()
        assert "8 elements" in text
        assert "recursive tags: list" in text

    def test_single_node(self):
        stats = tree_statistics(parse_xml("<a/>"))
        assert stats.size == 1
        assert stats.leaf_count == 1
        assert stats.average_fanout == 0.0


class TestRecursiveTags:
    def test_detects_nesting(self, doc):
        assert recursive_tags(doc) == {"list"}

    def test_none_in_flat_document(self):
        assert recursive_tags(parse_xml("<a><b/><c/></a>")) == set()

    def test_indirect_recursion(self):
        doc = parse_xml("<a><b><a/></b></a>")
        assert recursive_tags(doc) == {"a"}

    def test_matches_node_set_overlap_property(self, xmark_small):
        detected = recursive_tags(xmark_small.tree)
        for tag in ("parlist", "listitem"):
            assert tag in detected
            assert xmark_small.node_set(tag).has_overlap
        for tag in ("item", "text", "name"):
            assert tag not in detected
            assert not xmark_small.node_set(tag).has_overlap


class TestTagLevelSpread:
    def test_fixed_level_tags(self, doc):
        spread = tag_level_spread(doc)
        assert spread["site"] == (0, 0)
        assert spread["person"] == (1, 1)
        assert spread["name"] == (2, 2)

    def test_recursive_tag_spreads(self, doc):
        low, high = tag_level_spread(doc)["list"]
        assert low == 1
        assert high == 2

    def test_item_spread(self, doc):
        low, high = tag_level_spread(doc)["item"]
        assert (low, high) == (2, 3)
