"""Shared fixtures: the paper's Figure 1 example and small datasets."""

from __future__ import annotations

import pytest

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.datasets import generate_dblp, generate_xmach, generate_xmark
from repro.xmltree import parse_xml


@pytest.fixture(scope="session")
def figure1_tree():
    """The example data tree of Figure 1 (region codes match the paper).

    a3=(1,22), a1=(2,7), a2=(18,21); d1=(3,4), d2=(9,10), d3=(11,12),
    d4=(19,20).  The containment join size between A and D is 6.
    """
    a = NodeSet(
        [
            Element("a", 2, 7, 1),
            Element("a", 18, 21, 1),
            Element("a", 1, 22, 0),
        ],
        name="A",
    )
    d = NodeSet(
        [
            Element("d", 3, 4, 2),
            Element("d", 9, 10, 1),
            Element("d", 11, 12, 1),
            Element("d", 19, 20, 2),
        ],
        name="D",
    )
    return a, d


@pytest.fixture(scope="session")
def small_tree():
    """A small hand-checkable parsed tree."""
    return parse_xml(
        "<site>"
        "<item><name/><desc><text/><text/></desc></item>"
        "<item><name/><desc><text/></desc></item>"
        "<person><name/></person>"
        "</site>"
    )


@pytest.fixture(scope="session")
def xmark_small():
    return generate_xmark(scale=0.05, seed=101)


@pytest.fixture(scope="session")
def dblp_small():
    return generate_dblp(scale=0.05, seed=102)


@pytest.fixture(scope="session")
def xmach_small():
    return generate_xmach(scale=0.10, seed=103)
