"""Cross-subsystem validation: independent implementations must agree.

The XPath evaluator walks parent/children links; the joins and semijoins
work purely on region codes; the twig counter composes weighted joins.
Their answers are computed through disjoint code paths, so agreement is
strong evidence of correctness for all of them.
"""

import math
import statistics

import pytest

from repro.datasets import ALL_WORKLOADS
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.join import (
    containment_join_size,
    semijoin_ancestors_size,
    semijoin_descendants_size,
)
from repro.optimizer.twig import twig, twig_match_count, twig_semijoin_count
from repro.xmltree import evaluate_path


class TestXPathVsJoins:
    @pytest.mark.parametrize("name", ["xmark", "dblp", "xmach"])
    def test_descendant_counts_match_semijoin(self, name, request):
        """len(//anc//desc) == semijoin-descendants for every Table 3
        query (XPath deduplicates matching descendants; so does the
        semijoin)."""
        dataset = request.getfixturevalue(f"{name}_small")
        tree = dataset.tree
        for query in ALL_WORKLOADS[name]:
            a, d = query.operands(dataset)
            via_xpath = len(
                evaluate_path(tree, f"//{query.ancestor}//{query.descendant}")
            )
            assert via_xpath == semijoin_descendants_size(a, d), query

    @pytest.mark.parametrize("name", ["xmark", "dblp"])
    def test_predicate_counts_match_semijoin_ancestors(self, name, request):
        """len(//anc[.//desc]) == semijoin-ancestors.  The mini-XPath has
        no .// predicate syntax, so compose it as two passes."""
        dataset = request.getfixturevalue(f"{name}_small")
        tree = dataset.tree
        for query in ALL_WORKLOADS[name][:3]:
            a, d = query.operands(dataset)
            matching_descendants = evaluate_path(
                tree, f"//{query.ancestor}//{query.descendant}"
            )
            # Ancestors with >= 1 matching descendant, via region codes
            # on the XPath result:
            via_xpath = semijoin_ancestors_size(a, matching_descendants)
            assert via_xpath == semijoin_ancestors_size(a, d), query

    def test_two_level_path_vs_twig(self, xmark_small):
        tree = xmark_small.tree
        pattern = twig("desp", twig("parlist", "listitem"))
        assert twig_semijoin_count(
            xmark_small.node_set, pattern
        ) == len(evaluate_path(tree, "//desp[parlist]"))
        # parlists are always direct children of desp in the schema, so
        # the child-axis predicate equals the descendant-axis semijoin.


class TestTwigVsJoins:
    def test_two_node_twig_equals_join_everywhere(self, xmark_small):
        for query in ALL_WORKLOADS["xmark"]:
            a, d = query.operands(xmark_small)
            pattern = twig(query.ancestor, query.descendant)
            assert twig_match_count(
                xmark_small.node_set, pattern
            ) == containment_join_size(a, d), query


class TestVarianceScaling:
    def test_im_error_shrinks_like_inverse_sqrt_m(self, xmark_small):
        """Theorem 3's concentration in practice: quadrupling the sample
        size should roughly halve the error spread.  Needs a query with
        *varying* subjoin counts (parlist nests), else IM has no variance
        at all."""
        a = xmark_small.node_set("parlist")
        d = xmark_small.node_set("listitem")
        workspace = xmark_small.tree.workspace()

        def spread(m: int) -> float:
            values = [
                IMSamplingEstimator(num_samples=m, seed=s, replace=True)
                .estimate(a, d, workspace)
                .value
                for s in range(120)
            ]
            return statistics.pstdev(values)

        small = spread(25)
        large = spread(100)
        ratio = small / large
        # Expected ratio 2.0; allow generous statistical slack.
        assert 1.4 < ratio < 2.9, ratio

    def test_pm_error_scales_with_workspace(self, xmark_small, dblp_small):
        """Theorem 4's O(w) additive term: with equal samples and
        comparable true sizes, the relative spread tracks w/X."""
        from repro.estimators.pm_sampling import PMSamplingEstimator

        def relative_spread(dataset, anc, desc) -> tuple[float, float]:
            a = dataset.node_set(anc)
            d = dataset.node_set(desc)
            workspace = dataset.tree.workspace()
            true = containment_join_size(a, d)
            values = [
                PMSamplingEstimator(num_samples=60, seed=s)
                .estimate(a, d, workspace)
                .value
                for s in range(80)
            ]
            return statistics.pstdev(values) / true, workspace.width / true

        spread_1, factor_1 = relative_spread(xmark_small, "desp", "text")
        spread_2, factor_2 = relative_spread(
            xmark_small, "open_auction", "reserve"
        )
        # The query with the larger w/X ratio must show the larger
        # relative spread.
        if factor_1 < factor_2:
            assert spread_1 < spread_2
        else:
            assert spread_2 < spread_1

    def test_im_zero_variance_on_constant_subjoins(self, xmark_small):
        """When every descendant has exactly one ancestor, IM is exact
        with ANY sample size — explaining the 0.00% rows of Figure 5."""
        a = xmark_small.node_set("bidder")
        d = xmark_small.node_set("increase")
        true = containment_join_size(a, d)
        for m in (1, 5, 50):
            for seed in range(5):
                estimate = IMSamplingEstimator(
                    num_samples=m, seed=seed
                ).estimate(a, d)
                assert estimate.value == true

    def test_relative_error_metric_definition(self):
        """|x - x̂|/x * 100 exactly, including the zero-truth edge."""
        from repro.estimators.base import Estimate

        assert Estimate(80.0, "X").relative_error(100) == 20.0
        assert Estimate(130.0, "X").relative_error(100) == pytest.approx(
            30.0
        )
        assert Estimate(0.0, "X").relative_error(0) == 0.0
        assert math.isinf(Estimate(1.0, "X").relative_error(0))
