"""Tests for repro.core.budget: the Section 6 byte-budget conversions."""

import pytest

from repro.core.budget import PAPER_BUDGETS, SpaceBudget, paper_budgets
from repro.core.errors import ReproError


class TestSpaceBudget:
    @pytest.mark.parametrize(
        "nbytes,ph,pl,samples",
        [(200, 25, 10, 25), (400, 50, 20, 50), (800, 100, 40, 100)],
    )
    def test_paper_conversions(self, nbytes, ph, pl, samples):
        """The exact correspondences stated in Section 6.2."""
        budget = SpaceBudget(nbytes)
        assert budget.ph_buckets == ph
        assert budget.pl_buckets == pl
        assert budget.samples == samples

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            SpaceBudget(10)

    def test_str(self):
        assert str(SpaceBudget(200)) == "200B"

    def test_frozen(self):
        budget = SpaceBudget(200)
        with pytest.raises(AttributeError):
            budget.nbytes = 100

    def test_paper_budgets(self):
        budgets = paper_budgets()
        assert tuple(b.nbytes for b in budgets) == PAPER_BUDGETS == (
            200,
            400,
            800,
        )
