"""The qa subsystem: generators, shrinker, runner, gates, replay."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import InvalidRegionCodeError, ParseError
from repro.core.nodeset import NodeSet
from repro.core.rng import make_rng
from repro.join import containment_join_size
from repro.qa import ORACLES, Case, replay, run_qa, shrink_case
from repro.qa.generators import (
    disjoint_operands,
    invalid_element_corpus,
    invalid_xml_corpus,
    random_case,
    random_document,
    random_xml,
)
from repro.qa.oracles import OracleFailure, check_summary_geometry
from repro.qa.stats import run_statistical_gates
from repro.xmltree.parser import parse_xml


class TestGenerators:
    def test_same_seed_same_case(self):
        one, two = random_case(99), random_case(99)
        assert one.ancestors.elements == two.ancestors.elements
        assert one.descendants.elements == two.descendants.elements
        assert one.workspace == two.workspace

    def test_different_seeds_differ(self):
        assert (
            random_case(1).elements != random_case(2).elements
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_generated_documents_are_valid(self, seed):
        elements = random_document(make_rng(seed))
        # Strict nesting and distinct codes: the validator accepts the
        # whole document and any operand subset of it.
        NodeSet(elements, validate=True)
        case = random_case(seed)
        NodeSet(case.ancestors.elements, validate=True)
        NodeSet(case.descendants.elements, validate=True)
        assert len(case.ancestors) >= 1
        assert len(case.descendants) >= 1
        assert case.workspace.lo <= min(
            int(case.ancestors.starts[0]), int(case.descendants.starts[0])
        )

    def test_case_round_trips_through_json(self):
        case = random_case(7)
        payload = json.loads(json.dumps(case.to_dict()))
        rebuilt = Case.from_dict(payload)
        assert rebuilt.ancestors.elements == case.ancestors.elements
        assert rebuilt.descendants.elements == case.descendants.elements
        assert rebuilt.workspace == case.workspace

    def test_random_xml_parses(self):
        tree = parse_xml(random_xml(make_rng(5)))
        assert len(tree.elements) >= 1

    def test_invalid_xml_corpus_rejected(self):
        for document in invalid_xml_corpus(make_rng(5)):
            with pytest.raises(ParseError):
                parse_xml(document)

    def test_invalid_element_corpus_rejected(self):
        from repro.core.element import Element

        for rows in invalid_element_corpus(make_rng(5)):
            with pytest.raises(InvalidRegionCodeError):
                NodeSet(
                    [Element(tag, s, e) for tag, s, e in rows],
                    validate=True,
                )

    def test_disjoint_operands_share_nothing(self):
        for seed in range(30):
            case = random_case(seed)
            a, d = disjoint_operands(case)
            shared = set(a.elements) & set(d.elements)
            # Either fully disjoint or the fallback (every descendant
            # was shared) returned the original operands.
            if shared:
                assert d is case.descendants


class TestShrinker:
    def test_converges_on_planted_bug(self):
        # Plant: "fails whenever the join has >= 2 pairs".  The minimal
        # witness needs only a handful of elements, so the shrinker must
        # strip nearly everything while keeping the failure alive.
        def still_fails(case):
            return (
                containment_join_size(case.ancestors, case.descendants)
                >= 2
            )

        seed = next(
            s for s in range(100)
            if still_fails(random_case(s, max_nodes=80))
            and len(random_case(s, max_nodes=80).ancestors) >= 10
        )
        case = random_case(seed, max_nodes=80)
        shrunk, checks = shrink_case(case, still_fails)
        assert still_fails(shrunk)
        assert checks > 0
        assert (
            len(shrunk.ancestors) + len(shrunk.descendants)
            <= 6
            < len(case.ancestors) + len(case.descendants)
        )

    def test_predicate_exception_treated_as_not_failing(self):
        case = random_case(11)

        def explodes(candidate):
            if candidate is not case:
                raise RuntimeError("boom")
            return True

        shrunk, __ = shrink_case(case, explodes)
        assert shrunk.ancestors.elements == case.ancestors.elements


class TestRunner:
    def test_clean_run_on_seed_corpus(self):
        report = run_qa(budget_s=1.5, seed=20030609)
        assert report["schema_version"] == 1
        assert report["cases_run"] >= 1
        assert report["confirmed_findings"] == 0
        assert report["findings"] == []
        assert report["gates"] and all(
            g["passed"] for g in report["gates"]
        )
        # Every oracle actually ran.
        assert set(report["oracle_runs"]) == set(ORACLES)
        assert all(n >= 1 for n in report["oracle_runs"].values())
        json.dumps(report)  # JSON-serializable end to end

    def test_planted_bug_yields_minimized_replayable_reproducer(
        self, monkeypatch
    ):
        # Off-by-one planted into the exact-join reference the oracle
        # compares against: every join of size >= 1 now "disagrees".
        import repro.qa.oracles as oracles_module

        real = containment_join_size

        def off_by_one(a, d):
            size = real(a, d)
            return size + 1 if size else size

        monkeypatch.setattr(
            oracles_module, "containment_join_size", off_by_one
        )
        oracle = {"exact-join": oracles_module.check_exact_join}
        report = run_qa(
            budget_s=5.0, seed=3, oracles=oracle, run_gates=False
        )
        assert report["confirmed_findings"] == 1
        [finding] = report["findings"]
        assert finding["confirmed"]
        original = sum(finding["original_sizes"])
        shrunk = sum(finding["shrunk_sizes"])
        assert shrunk <= 4 < original
        # The reproducer survives a JSON round-trip and replays to the
        # same failure while the bug is in place...
        block = json.loads(json.dumps(finding["reproducer"]))
        message = replay(block, oracles=oracle)
        assert message is not None and "exact-join" in message
        # ...and replays clean once the bug is fixed.
        monkeypatch.setattr(
            oracles_module, "containment_join_size", real
        )
        assert replay(block, oracles=oracle) is None

    def test_bucket_boundary_off_by_one_is_caught(self, monkeypatch):
        # The acceptance-criteria plant: a histogram bucket boundary
        # off-by-one.  It is translation-invariant and hits both sides
        # of every value-level differential, so only the geometry
        # oracle can see it.
        from repro.core.workspace import Workspace

        real = Workspace.bucket_of

        def shifted(self, position, count):
            return min(real(self, position, count) + 1, count - 1)

        monkeypatch.setattr(Workspace, "bucket_of", shifted)
        oracle = {"summary-geometry": check_summary_geometry}
        report = run_qa(
            budget_s=5.0, seed=20030609, oracles=oracle, run_gates=False
        )
        assert report["confirmed_findings"] == 1
        [finding] = report["findings"]
        assert "bucket_of" in finding["message"]
        block = json.loads(json.dumps(finding["reproducer"]))
        assert replay(block, oracles=oracle) is not None
        monkeypatch.setattr(Workspace, "bucket_of", real)
        assert replay(block, oracles=oracle) is None

    def test_runner_budget_respected(self):
        report = run_qa(budget_s=0.0, seed=1, run_gates=False)
        assert report["cases_run"] == 1  # min_cases floor


class TestStatisticalGates:
    def test_im_pm_gates_pass_at_documented_confidence(self):
        gates = run_statistical_gates()
        assert {g.method for g in gates} == {"IM", "PM"}
        assert {g.gate for g in gates} == {
            "unbiasedness",
            "concentration",
        }
        for gate in gates:
            assert gate.passed, gate.to_dict()
            assert gate.detail["trials"] >= 200

    def test_gates_are_deterministic(self):
        one = [g.statistic for g in run_statistical_gates()]
        two = [g.statistic for g in run_statistical_gates()]
        assert one == two


class TestOracleSubset:
    def test_every_oracle_clean_on_fixed_seeds(self):
        for seed in (20030609, 42, 7):
            case = random_case(seed)
            for oracle in ORACLES.values():
                oracle(case)

    def test_oracle_failure_is_assertion(self):
        assert issubclass(OracleFailure, AssertionError)
