"""Tests for repro.estimators.wavelet."""

import numpy as np
import pytest

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.wavelet import (
    WaveletEstimator,
    haar_transform,
    inverse_haar_transform,
    top_k_coefficients,
)
from repro.join import containment_join_size


class TestHaarTransform:
    def test_round_trip_power_of_two(self):
        values = np.array([4.0, 2.0, 5.0, 5.0, 1.0, 0.0, 3.0, 6.0])
        recovered = inverse_haar_transform(haar_transform(values))
        assert np.allclose(recovered, values)

    def test_round_trip_with_padding(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        recovered = inverse_haar_transform(haar_transform(values))
        assert np.allclose(recovered[:5], values)
        assert np.allclose(recovered[5:], 0.0)

    def test_parseval(self):
        """Orthonormality: energy is preserved."""
        rng = np.random.default_rng(0)
        values = rng.random(64)
        coefficients = haar_transform(values)
        assert np.dot(values, values) == pytest.approx(
            np.dot(coefficients, coefficients)
        )

    def test_inner_product_preserved(self):
        """The property the estimator relies on."""
        rng = np.random.default_rng(1)
        x = rng.random(128)
        y = rng.random(128)
        assert np.dot(x, y) == pytest.approx(
            np.dot(haar_transform(x), haar_transform(y))
        )

    def test_constant_vector_single_coefficient(self):
        coefficients = haar_transform(np.full(16, 3.0))
        assert coefficients[0] == pytest.approx(12.0)  # 3 * sqrt(16)
        assert np.allclose(coefficients[1:], 0.0)

    def test_empty(self):
        assert len(haar_transform(np.zeros(0))) == 0
        assert len(inverse_haar_transform(np.zeros(0))) == 0

    def test_single_value(self):
        assert haar_transform(np.array([7.0])).tolist() == [7.0]

    def test_inverse_rejects_non_power_of_two(self):
        with pytest.raises(EstimationError):
            inverse_haar_transform(np.zeros(6))


class TestTopK:
    def test_selects_largest_magnitude(self):
        coefficients = np.array([1.0, -9.0, 3.0, 0.5])
        kept = top_k_coefficients(coefficients, 2)
        assert kept == {1: -9.0, 2: 3.0}

    def test_k_larger_than_length(self):
        kept = top_k_coefficients(np.array([1.0, 2.0]), 10)
        assert len(kept) == 2

    def test_k_zero(self):
        assert top_k_coefficients(np.array([1.0]), 0) == {}


class TestWaveletEstimator:
    @pytest.fixture(scope="class")
    def operands(self):
        from repro.datasets import generate_xmark

        dataset = generate_xmark(scale=0.05, seed=101)
        a = dataset.node_set("desp")
        d = dataset.node_set("text")
        return a, d, dataset.tree.workspace(), containment_join_size(a, d)

    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            WaveletEstimator()
        with pytest.raises(EstimationError):
            WaveletEstimator(num_coefficients=5, budget=SpaceBudget(200))

    def test_invalid_count(self):
        with pytest.raises(EstimationError):
            WaveletEstimator(num_coefficients=0)

    def test_budget_split(self):
        assert WaveletEstimator(budget=SpaceBudget(800)).per_table == 50

    def test_empty_operands(self):
        estimator = WaveletEstimator(num_coefficients=10)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0

    def test_exact_with_all_coefficients(self, operands):
        """Keeping every coefficient makes the inner product exact."""
        a, d, workspace, true = operands
        estimate = WaveletEstimator(num_coefficients=10**7).estimate(
            a, d, workspace
        )
        assert estimate.value == pytest.approx(true, rel=1e-6)

    def test_deterministic(self, operands):
        a, d, workspace, __ = operands
        first = WaveletEstimator(num_coefficients=64).estimate(
            a, d, workspace
        )
        second = WaveletEstimator(num_coefficients=64).estimate(
            a, d, workspace
        )
        assert first.value == second.value

    def test_details(self, operands):
        a, d, workspace, __ = operands
        result = WaveletEstimator(num_coefficients=32).estimate(
            a, d, workspace
        )
        assert result.details["coefficients_per_table"] == 32
        assert result.details["kept_a"] <= 32
        assert result.details["kept_d"] <= 32
        assert result.value >= 0.0
