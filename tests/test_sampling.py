"""Tests for the sampling estimators: IM-DA-Est, PM-Est, cross, systematic."""

import statistics

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def operands():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    a = dataset.node_set("desp")
    d = dataset.node_set("text")
    return a, d, dataset.tree.workspace(), containment_join_size(a, d)


class TestIMSampling:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            IMSamplingEstimator()
        with pytest.raises(EstimationError):
            IMSamplingEstimator(num_samples=5, budget=SpaceBudget(200))

    def test_budget_conversion(self):
        assert IMSamplingEstimator(budget=SpaceBudget(800)).num_samples == 100

    def test_invalid_backend(self):
        with pytest.raises(EstimationError):
            IMSamplingEstimator(num_samples=5, backend="btree")

    def test_invalid_sample_count(self):
        with pytest.raises(EstimationError):
            IMSamplingEstimator(num_samples=0)

    def test_exact_when_sampling_everything(self, operands):
        """m >= |D| without replacement degenerates to the exact count."""
        a, d, workspace, true = operands
        estimator = IMSamplingEstimator(num_samples=10**9, seed=0)
        assert estimator.estimate(a, d, workspace).value == true

    def test_exact_on_figure1(self, figure1_tree):
        a, d = figure1_tree
        estimator = IMSamplingEstimator(num_samples=4, seed=0)
        assert estimator.estimate(a, d).value == 6.0

    def test_unbiased(self, operands):
        """Theorem 3: E[X̂] = X (checked to sampling tolerance)."""
        a, d, workspace, true = operands
        estimator = IMSamplingEstimator(num_samples=40, seed=7)
        estimates = [
            estimator.estimate(a, d, workspace).value for __ in range(300)
        ]
        mean = statistics.fmean(estimates)
        assert abs(mean - true) / true < 0.05

    def test_empty_operands(self):
        estimator = IMSamplingEstimator(num_samples=5, seed=0)
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        assert estimator.estimate(empty, some).value == 0.0
        assert estimator.estimate(some, empty).value == 0.0

    @pytest.mark.parametrize("backend", ["rank", "ttree", "xrtree"])
    def test_backends_agree(self, operands, backend):
        """The probe structure must not change the estimate."""
        a, d, workspace, __ = operands
        reference = IMSamplingEstimator(
            num_samples=30, seed=99, backend="rank"
        ).estimate(a, d, workspace)
        other = IMSamplingEstimator(
            num_samples=30, seed=99, backend=backend
        ).estimate(a, d, workspace)
        assert other.value == reference.value

    def test_with_replacement(self, operands):
        a, d, workspace, true = operands
        estimator = IMSamplingEstimator(num_samples=60, seed=3, replace=True)
        result = estimator.estimate(a, d, workspace)
        assert result.details["replace"] is True
        assert result.value > 0

    def test_max_subjoin_bounded_by_height(self, operands):
        """Section 5.1: a point stabs at most H intervals."""
        a, d, workspace, __ = operands
        result = IMSamplingEstimator(num_samples=100, seed=5).estimate(
            a, d, workspace
        )
        assert result.details["max_subjoin"] <= a.max_nesting_depth

    def test_deterministic_with_seed(self, operands):
        a, d, workspace, __ = operands
        first = IMSamplingEstimator(num_samples=20, seed=8).estimate(
            a, d, workspace
        )
        second = IMSamplingEstimator(num_samples=20, seed=8).estimate(
            a, d, workspace
        )
        assert first.value == second.value


class TestPMSampling:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            PMSamplingEstimator()

    def test_invalid_backend(self):
        with pytest.raises(EstimationError):
            PMSamplingEstimator(num_samples=5, backend="xrtree")

    def test_unbiased(self, operands):
        """Theorem 4: E[X̂] = X (checked to sampling tolerance)."""
        a, d, workspace, true = operands
        estimator = PMSamplingEstimator(num_samples=200, seed=11)
        estimates = [
            estimator.estimate(a, d, workspace).value for __ in range(400)
        ]
        mean = statistics.fmean(estimates)
        assert abs(mean - true) / true < 0.10

    def test_backends_agree(self, operands):
        a, d, workspace, __ = operands
        rank = PMSamplingEstimator(
            num_samples=50, seed=21, backend="rank"
        ).estimate(a, d, workspace)
        ttree = PMSamplingEstimator(
            num_samples=50, seed=21, backend="ttree"
        ).estimate(a, d, workspace)
        assert rank.value == ttree.value

    def test_empty_operands(self):
        estimator = PMSamplingEstimator(num_samples=5, seed=0)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0

    def test_scaling_by_workspace_width(self, figure1_tree):
        """Every sampled product is scaled by w/m (Algorithm 3)."""
        a, d = figure1_tree
        workspace = Workspace(1, 22)
        estimator = PMSamplingEstimator(num_samples=22, seed=1)
        result = estimator.estimate(a, d, workspace)
        assert result.details["workspace_width"] == 22
        # value must be a multiple of w/m = 1 here.
        assert result.value == pytest.approx(round(result.value))

    def test_higher_variance_than_im(self, operands):
        """Section 5.2's prediction: PM is inferior to IM."""
        a, d, workspace, true = operands
        im_errors = []
        pm_errors = []
        for seed in range(30):
            im = IMSamplingEstimator(num_samples=50, seed=seed).estimate(
                a, d, workspace
            )
            pm = PMSamplingEstimator(num_samples=50, seed=seed).estimate(
                a, d, workspace
            )
            im_errors.append(im.relative_error(true))
            pm_errors.append(pm.relative_error(true))
        assert statistics.fmean(im_errors) < statistics.fmean(pm_errors)


class TestCrossSampling:
    def test_unbiased(self, operands):
        a, d, workspace, true = operands
        estimator = CrossSamplingEstimator(num_samples=500, seed=2)
        estimates = [
            estimator.estimate(a, d, workspace).value for __ in range(300)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.15

    def test_empty(self):
        estimator = CrossSamplingEstimator(num_samples=5, seed=0)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0

    def test_requires_size(self):
        with pytest.raises(EstimationError):
            CrossSamplingEstimator()


class TestSystematicSampling:
    def test_exact_when_stride_one(self, operands):
        a, d, workspace, true = operands
        estimator = SystematicSamplingEstimator(num_samples=10**9, seed=0)
        assert estimator.estimate(a, d, workspace).value == true

    def test_unbiased_over_offsets(self, operands):
        a, d, workspace, true = operands
        estimator = SystematicSamplingEstimator(num_samples=50, seed=4)
        estimates = [
            estimator.estimate(a, d, workspace).value for __ in range(200)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.10

    def test_stride_and_offset_details(self, operands):
        a, d, workspace, __ = operands
        result = SystematicSamplingEstimator(num_samples=40, seed=1).estimate(
            a, d, workspace
        )
        assert result.details["stride"] >= 1
        assert 0 <= result.details["offset"] < result.details["stride"]

    def test_beats_cross_sampling(self, operands):
        """Stratification helps: systematic < t_cross error on average."""
        a, d, workspace, true = operands
        sys_errors = []
        cross_errors = []
        for seed in range(25):
            sys_est = SystematicSamplingEstimator(
                num_samples=50, seed=seed
            ).estimate(a, d, workspace)
            cross_est = CrossSamplingEstimator(
                num_samples=50, seed=seed
            ).estimate(a, d, workspace)
            sys_errors.append(sys_est.relative_error(true))
            cross_errors.append(cross_est.relative_error(true))
        assert statistics.fmean(sys_errors) < statistics.fmean(cross_errors)
