"""Tests for repro.index: T-tree, XR-tree and the stabbing-count oracle."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.index import StabbingCounter, TTree, XRTree


def brute_force_stab(node_set, position):
    return sum(1 for e in node_set if e.start <= position <= e.end)


@pytest.fixture(scope="module")
def parlists(xmark_module):
    return xmark_module.node_set("parlist")


@pytest.fixture(scope="module")
def xmark_module():
    from repro.datasets import generate_xmark

    return generate_xmark(scale=0.05, seed=101)


class TestStabbingCounter:
    def test_figure1(self, figure1_tree):
        a, __ = figure1_tree
        counter = StabbingCounter(a)
        assert counter.count(6) == 2
        assert counter.count(19) == 2
        assert counter.count(10) == 1
        assert counter.count(0) == 0
        assert counter.count(23) == 0

    def test_matches_brute_force(self, parlists):
        counter = StabbingCounter(parlists)
        workspace = parlists.workspace()
        rng = np.random.default_rng(0)
        positions = rng.integers(workspace.lo - 5, workspace.hi + 5, size=300)
        for position in positions:
            assert counter.count(int(position)) == brute_force_stab(
                parlists, int(position)
            )

    def test_count_many_matches_scalar(self, parlists):
        counter = StabbingCounter(parlists)
        positions = np.arange(
            parlists.workspace().lo, parlists.workspace().lo + 200
        )
        vector = counter.count_many(positions)
        assert vector.tolist() == [
            counter.count(int(p)) for p in positions
        ]


class TestTTree:
    def test_figure4_probe(self, figure1_tree):
        """Query point 6 returns PMA value 2, as in Figure 4."""
        a, __ = figure1_tree
        assert TTree(a).count(6) == 2

    def test_matches_oracle(self, parlists):
        ttree = TTree(parlists)
        counter = StabbingCounter(parlists)
        workspace = parlists.workspace()
        rng = np.random.default_rng(1)
        for position in rng.integers(
            workspace.lo - 3, workspace.hi + 3, size=300
        ):
            assert ttree.count(int(position)) == counter.count(int(position))

    def test_turning_point_count_linear(self, parlists):
        ttree = TTree(parlists)
        assert ttree.turning_point_count <= 2 * len(parlists)

    def test_before_first_key(self, figure1_tree):
        a, __ = figure1_tree
        assert TTree(a).count(0) == 0

    def test_after_all_closed(self, figure1_tree):
        a, __ = figure1_tree
        assert TTree(a).count(23) == 0
        assert TTree(a).count(1000) == 0

    def test_empty_set(self):
        ttree = TTree(NodeSet([]))
        assert ttree.count(5) == 0
        assert ttree.turning_point_count == 0

    def test_underlying_bplus_is_valid(self, parlists):
        TTree(parlists).bplus.validate()


class TestXRTree:
    def test_figure1_stab(self, figure1_tree):
        a, __ = figure1_tree
        xrtree = XRTree(a, page_size=2)
        xrtree.validate()
        assert sorted(e.start for e in xrtree.stab(19)) == [1, 18]
        assert xrtree.stab_count(6) == 2
        assert xrtree.stab_count(0) == 0
        assert xrtree.stab_count(30) == 0

    @pytest.mark.parametrize("page_size", [2, 3, 8, 32])
    def test_matches_brute_force(self, parlists, page_size):
        xrtree = XRTree(parlists, page_size=page_size)
        xrtree.validate()
        workspace = parlists.workspace()
        rng = np.random.default_rng(page_size)
        for position in rng.integers(workspace.lo, workspace.hi, size=150):
            expected = brute_force_stab(parlists, int(position))
            assert xrtree.stab_count(int(position)) == expected

    def test_stab_returns_actual_elements(self, parlists):
        xrtree = XRTree(parlists, page_size=4)
        probe = parlists[len(parlists) // 2].start + 1
        found = {(e.start, e.end) for e in xrtree.stab(probe)}
        expected = {
            (e.start, e.end)
            for e in parlists
            if e.start <= probe <= e.end
        }
        assert found == expected

    def test_empty(self):
        xrtree = XRTree(NodeSet([]))
        xrtree.validate()
        assert xrtree.stab(10) == []
        assert len(xrtree) == 0
        assert xrtree.height == 0

    def test_height_grows_logarithmically(self, parlists):
        small_pages = XRTree(parlists, page_size=2)
        big_pages = XRTree(parlists, page_size=64)
        assert small_pages.height > big_pages.height

    def test_stab_list_sizes_accounting(self, parlists):
        xrtree = XRTree(parlists, page_size=4)
        flagged = sum(xrtree.stab_list_sizes())
        # Total elements = leaf-resident + stab-listed; validate() already
        # checks the flags, here we check the count is sane.
        assert 0 <= flagged <= len(parlists)

    def test_invalid_page_size(self, figure1_tree):
        a, __ = figure1_tree
        with pytest.raises(ReproError):
            XRTree(a, page_size=1)

    def test_deeply_nested_intervals(self):
        nested = NodeSet(
            [Element("a", i, 200 - i) for i in range(1, 60)]
        )
        xrtree = XRTree(nested, page_size=4)
        xrtree.validate()
        assert xrtree.stab_count(100) == 59
        assert xrtree.stab_count(1) == 1
        assert xrtree.stab_count(58) == 58
