"""Tests for repro.join.semijoin and the semijoin sampling estimators."""

import statistics

import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.join import (
    semijoin_ancestors,
    semijoin_ancestors_size,
    semijoin_descendants,
    semijoin_descendants_size,
)


def brute_ancestors(a, d):
    return sum(
        1 for x in a if any(x.start < y.start < x.end for y in d)
    )


def brute_descendants(a, d):
    return sum(
        1 for y in d if any(x.start < y.start < x.end for x in a)
    )


class TestExactSemijoins:
    def test_figure1(self, figure1_tree):
        a, d = figure1_tree
        # a3 and a1 and a2 all have descendants; all four d's are covered.
        assert semijoin_ancestors_size(a, d) == 3
        assert semijoin_descendants_size(a, d) == 4

    def test_partial_matches(self):
        a = NodeSet([Element("a", 1, 4), Element("a", 10, 13)])
        d = NodeSet([Element("d", 2, 3), Element("d", 20, 21)])
        assert semijoin_ancestors_size(a, d) == 1
        assert semijoin_descendants_size(a, d) == 1

    def test_empty(self):
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        assert semijoin_ancestors_size(empty, some) == 0
        assert semijoin_ancestors_size(some, empty) == 0
        assert semijoin_descendants_size(empty, some) == 0

    def test_nested_ancestors_counted_once(self):
        a = NodeSet([Element("a", 1, 10), Element("a", 2, 9)])
        d = NodeSet([Element("d", 4, 5)])
        assert semijoin_ancestors_size(a, d) == 2  # both contain d
        assert semijoin_descendants_size(a, d) == 1  # d counted once

    def test_against_brute_force_small(self, xmark_small):
        a = NodeSet(xmark_small.node_set("desp").elements[:80], validate=False)
        d = NodeSet(xmark_small.node_set("text").elements[:200], validate=False)
        assert semijoin_ancestors_size(a, d) == brute_ancestors(a, d)
        assert semijoin_descendants_size(a, d) == brute_descendants(a, d)

    def test_materialized_sets_match_sizes(self, xmark_small):
        a = xmark_small.node_set("desp")
        d = xmark_small.node_set("text")
        assert len(semijoin_ancestors(a, d)) == semijoin_ancestors_size(a, d)
        assert len(semijoin_descendants(a, d)) == (
            semijoin_descendants_size(a, d)
        )

    def test_materialized_descendants_all_match(self, xmark_small):
        a = xmark_small.node_set("item")
        d = xmark_small.node_set("text")
        for element in semijoin_descendants(a, d):
            assert a.stab_count(element.start) > 0

    def test_xpath_predicate_semantics(self, xmark_small):
        """The semijoin is the cardinality behind XPath predicates."""
        from repro.xmltree import evaluate_path

        matched = semijoin_ancestors_size(
            xmark_small.node_set("desp"), xmark_small.node_set("text")
        )
        # Every desp contains at least one text by construction, so the
        # semijoin equals the full desp count, and the child-axis
        # predicate //desp[text] can never exceed it.
        assert matched == len(xmark_small.node_set("desp"))
        via_child_axis = len(
            evaluate_path(xmark_small.tree, "//desp[text]")
        )
        assert via_child_axis <= matched


class TestSemijoinEstimators:
    @pytest.fixture(scope="class")
    def operands(self):
        from repro.datasets import generate_xmark

        dataset = generate_xmark(scale=0.05, seed=101)
        # name: descendants both inside items (match) and persons (no match)
        return dataset.node_set("item"), dataset.node_set("name")

    def test_requires_size(self):
        with pytest.raises(EstimationError):
            SemijoinDescendantsEstimator()
        with pytest.raises(EstimationError):
            SemijoinAncestorsEstimator(num_samples=0)

    def test_full_sample_exact(self, operands):
        a, d = operands
        assert SemijoinDescendantsEstimator(
            num_samples=10**9, seed=0
        ).estimate(a, d).value == semijoin_descendants_size(a, d)
        assert SemijoinAncestorsEstimator(
            num_samples=10**9, seed=0
        ).estimate(a, d).value == semijoin_ancestors_size(a, d)

    def test_unbiased_descendants(self, operands):
        a, d = operands
        true = semijoin_descendants_size(a, d)
        estimates = [
            SemijoinDescendantsEstimator(num_samples=50, seed=s)
            .estimate(a, d)
            .value
            for s in range(200)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.07

    def test_unbiased_ancestors(self, operands):
        a, d = operands
        true = semijoin_ancestors_size(a, d)
        estimates = [
            SemijoinAncestorsEstimator(num_samples=50, seed=s)
            .estimate(a, d)
            .value
            for s in range(200)
        ]
        assert abs(statistics.fmean(estimates) - true) / true < 0.07

    def test_empty_operands(self):
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        for estimator_cls in (
            SemijoinDescendantsEstimator,
            SemijoinAncestorsEstimator,
        ):
            estimator = estimator_cls(num_samples=5, seed=0)
            assert estimator.estimate(empty, some).value == 0.0
            assert estimator.estimate(some, empty).value == 0.0

    def test_bounded_by_operand_size(self, operands):
        a, d = operands
        assert SemijoinDescendantsEstimator(
            num_samples=30, seed=1
        ).estimate(a, d).value <= len(d)
        assert SemijoinAncestorsEstimator(
            num_samples=30, seed=1
        ).estimate(a, d).value <= len(a)
