"""Tests for repro.experiments.analysis and repro.experiments.export."""

import math

import pytest

from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.experiments.analysis import (
    TheoremCheck,
    hoeffding_halfwidth,
    verify_sampling_theorem,
)
from repro.experiments.export import export_series, export_table, read_series
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def operands():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    a = dataset.node_set("desp")
    d = dataset.node_set("text")
    return (
        a,
        d,
        dataset.tree.workspace(),
        containment_join_size(a, d),
        dataset.tree.height,
    )


class TestHoeffding:
    def test_decreases_with_samples(self):
        wide = hoeffding_halfwidth(1000, 5, 10)
        narrow = hoeffding_halfwidth(1000, 5, 1000)
        assert narrow < wide
        assert narrow == pytest.approx(wide / 10.0)

    def test_scales_linearly(self):
        assert hoeffding_halfwidth(2000, 5, 50) == pytest.approx(
            2 * hoeffding_halfwidth(1000, 5, 50)
        )

    def test_formula(self):
        value = hoeffding_halfwidth(100, 2, 50, delta=0.05)
        expected = 100 * 2 * math.sqrt(math.log(40.0) / 100.0)
        assert value == pytest.approx(expected)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hoeffding_halfwidth(10, 1, 0)
        with pytest.raises(ValueError):
            hoeffding_halfwidth(10, 1, 5, delta=1.5)


class TestTheoremVerification:
    def test_im_theorem3(self, operands):
        """Theorem 3: unbiased, concentrated within the Hoeffding bound."""
        a, d, workspace, true, height = operands
        check = verify_sampling_theorem(
            "IM",
            lambda seed: IMSamplingEstimator(
                num_samples=50, seed=seed, replace=True
            ),
            a,
            d,
            workspace,
            true,
            scale=len(d),
            subjoin_bound=height,
            num_samples=50,
            runs=150,
        )
        assert check.unbiased_within_noise
        # Hoeffding is conservative: nearly every run must fall inside.
        assert check.within_bound_fraction >= 0.95
        assert check.bias_pct < 5.0

    def test_pm_theorem4(self, operands):
        a, d, workspace, true, height = operands
        check = verify_sampling_theorem(
            "PM",
            lambda seed: PMSamplingEstimator(num_samples=80, seed=seed),
            a,
            d,
            workspace,
            true,
            scale=workspace.width,
            subjoin_bound=height,
            num_samples=80,
            runs=150,
        )
        assert check.unbiased_within_noise
        assert check.within_bound_fraction >= 0.95

    def test_pm_bound_wider_than_im(self, operands):
        """The O(w) vs O(|D|) gap that makes PM inferior (Section 5.2)."""
        a, d, workspace, __, height = operands
        im_width = hoeffding_halfwidth(len(d), height, 100)
        pm_width = hoeffding_halfwidth(workspace.width, height, 100)
        assert pm_width > 2 * im_width

    def test_check_dataclass(self):
        check = TheoremCheck(
            label="X",
            true_size=0,
            runs=10,
            mean_estimate=0.0,
            bias_pct=0.0,
            observed_std=0.0,
            hoeffding_halfwidth_95=1.0,
            within_bound_fraction=1.0,
        )
        assert check.unbiased_within_noise


class TestExport:
    def test_series_round_trip(self, tmp_path):
        series = {"Q1": [(1.0, 2.0), (2.0, 4.0)], "Q2": [(1.0, 0.5)]}
        path = export_series(tmp_path / "sub" / "series.csv", series)
        assert path.exists()
        assert read_series(path) == series

    def test_series_header_labels(self, tmp_path):
        path = export_series(
            tmp_path / "s.csv", {"a": [(1, 2)]}, x_label="samples",
            y_label="error",
        )
        header = path.read_text().splitlines()[0]
        assert header == "series,samples,error"

    def test_table(self, tmp_path):
        path = export_table(
            tmp_path / "t.csv", ["q", "err"], [["Q1", 1.5], ["Q2", 2.0]]
        )
        lines = path.read_text().splitlines()
        assert lines == ["q,err", "Q1,1.5", "Q2,2.0"]
