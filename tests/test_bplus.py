"""Tests for repro.index.bplus: the B+-tree."""

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.index.bplus import BPlusTree, start_position_index


class TestInsertAndGet:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) is None
        assert tree.get(5, "x") == "x"
        assert 5 not in tree

    def test_insert_and_lookup(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, key * 10)
        assert len(tree) == 5
        for key in [1, 3, 5, 7, 9]:
            assert tree.get(key) == key * 10
        assert tree.get(4) is None

    def test_insert_replaces(self):
        tree = BPlusTree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert len(tree) == 1
        assert tree.get(1) == "b"

    def test_many_inserts_random_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(500))
        np.random.default_rng(0).shuffle(keys)
        for key in keys:
            tree.insert(key, -key)
        assert len(tree) == 500
        tree.validate()
        assert [k for k, __ in tree.items()] == list(range(500))
        assert tree.height > 1

    def test_order_too_small(self):
        with pytest.raises(ReproError):
            BPlusTree(order=2)


class TestBulkLoad:
    def test_bulk_load_round_trip(self):
        items = [(k, str(k)) for k in range(0, 300, 3)]
        tree = BPlusTree.bulk_load(items, order=8)
        assert len(tree) == len(items)
        tree.validate()
        assert list(tree.items()) == items

    def test_bulk_load_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        tree.validate()

    def test_bulk_load_single(self):
        tree = BPlusTree.bulk_load([(7, "x")])
        assert tree.get(7) == "x"
        assert tree.height == 1

    def test_bulk_load_unsorted_rejected(self):
        with pytest.raises(ReproError):
            BPlusTree.bulk_load([(2, "a"), (1, "b")])

    def test_bulk_load_duplicates_rejected(self):
        with pytest.raises(ReproError):
            BPlusTree.bulk_load([(1, "a"), (1, "b")])

    def test_bulk_load_then_insert(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(0, 100, 2)], order=4)
        for key in range(1, 100, 2):
            tree.insert(key, key)
        tree.validate()
        assert len(tree) == 100
        assert [k for k, __ in tree.items()] == list(range(100))


class TestFloorEntry:
    @pytest.fixture()
    def tree(self):
        return BPlusTree.bulk_load([(k, k * 10) for k in [1, 2, 8, 18, 22]])

    def test_exact_hit(self, tree):
        assert tree.floor_entry(8) == (8, 80)

    def test_between_keys(self, tree):
        """Figure 4's probe: query 6 -> key 2 (value 2 in the paper)."""
        assert tree.floor_entry(6) == (2, 20)

    def test_below_minimum(self, tree):
        assert tree.floor_entry(0) is None

    def test_above_maximum(self, tree):
        assert tree.floor_entry(100) == (22, 220)

    def test_floor_matches_reference_on_random_data(self):
        keys = sorted(
            np.random.default_rng(1).choice(10000, size=400, replace=False)
        )
        tree = BPlusTree.bulk_load([(int(k), int(k)) for k in keys], order=6)
        for query in np.random.default_rng(2).integers(0, 10500, size=200):
            expected = max((k for k in keys if k <= query), default=None)
            got = tree.floor_entry(int(query))
            if expected is None:
                assert got is None
            else:
                assert got == (expected, expected)


class TestRange:
    def test_range_scan(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(0, 50, 5)], order=4)
        assert [k for k, __ in tree.range(12, 31)] == [15, 20, 25, 30]

    def test_range_inclusive_bounds(self):
        tree = BPlusTree.bulk_load([(k, k) for k in range(10)])
        assert [k for k, __ in tree.range(3, 6)] == [3, 4, 5, 6]

    def test_range_empty_window(self):
        tree = BPlusTree.bulk_load([(1, 1), (10, 10)])
        assert list(tree.range(2, 9)) == []


class TestStartPositionIndex:
    def test_membership_probe(self):
        index = start_position_index([4, 9, 1])
        assert 4 in index
        assert 9 in index
        assert 2 not in index
        assert len(index) == 3
