"""Tests for the sharding layer (:mod:`repro.shard`).

Covers the shared-memory arena lifecycle (create/attach/view/close/
unlink, leak-free over many cycles, cleanup after worker crashes), the
partition/merge exactness contract (integer statistics bit-exact, float
sums to reassociation tolerance, interval unions exact), the worker
pool's scatter/gather parity with local execution, and the service's
``processes=K`` mode end to end — identical values, graceful fallback
when workers die, and no segments left behind on shutdown.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.core.errors import EstimationError, ServiceError
from repro.estimators.coverage_histogram import merged_interval_bounds
from repro.estimators.pl_histogram import (
    build_ancestor_cached,
    build_descendant_cached,
)
from repro.estimators.registry import make_estimator
from repro.estimators.sampling_base import SamplingEstimator
from repro.join.size import containment_join_size
from repro.perf.cache import SummaryCache
from repro.service.engine import EstimationService
from repro.service.request import EstimateRequest, ServiceFuture
from repro.service.queue import RequestQueue
from repro.shard import (
    SEGMENT_PREFIX,
    ShardArena,
    ShardWorkerPool,
    build_shard_statistics,
    chunk_evenly,
    live_segments,
    merge_counts,
    merge_intervals,
    merge_pl_histograms,
    merge_trial_statistics,
    segment_exists,
    shard_node_set,
    shard_sizes,
)


def _shm_segments() -> set[str]:
    """Names under /dev/shm carrying the arena prefix (Linux CI/dev)."""
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux
        return set()
    return {p.name for p in shm.glob(f"{SEGMENT_PREFIX}*")}


@pytest.fixture
def operands(xmark_small):
    a = xmark_small.node_set("item")
    d = xmark_small.node_set("name")
    return a, d, xmark_small.tree.workspace()


# ----------------------------------------------------------------------
# Arena lifecycle
# ----------------------------------------------------------------------


class TestShardArena:
    def test_create_view_roundtrip(self):
        starts = np.arange(10, dtype=np.int64)
        ends = np.arange(10, dtype=np.int64) * 3 + 1
        arena = ShardArena.create({"starts": starts, "ends": ends})
        try:
            assert np.array_equal(arena.view("starts"), starts)
            assert np.array_equal(arena.view("ends"), ends)
            # Views are read-only: the arena is shared state.
            with pytest.raises(ValueError):
                arena.view("starts")[0] = 99
        finally:
            arena.close()
            arena.unlink()

    def test_attach_sees_owner_data_zero_copy(self):
        data = np.arange(1000, dtype=np.int64)
        owner = ShardArena.create({"codes": data})
        try:
            attached = ShardArena.attach(owner.manifest())
            assert not attached.owner
            assert np.array_equal(attached.view("codes"), data)
            attached.close()
        finally:
            owner.close()
            owner.unlink()

    def test_unlink_is_owner_only_and_idempotent(self):
        arena = ShardArena.create({"x": np.ones(4, dtype=np.int64)})
        name = arena.manifest()["segment"]
        attached = ShardArena.attach(arena.manifest())
        try:
            with pytest.raises(ServiceError):
                attached.unlink()  # non-owner: refused
            assert segment_exists(name)
        finally:
            attached.close()
            arena.close()
        arena.unlink()
        arena.unlink()  # idempotent
        assert not segment_exists(name)

    def test_registry_tracks_live_segments(self):
        before = set(live_segments())
        arena = ShardArena.create({"x": np.zeros(2, dtype=np.int64)})
        name = arena.manifest()["segment"]
        assert name in set(live_segments()) - before
        arena.close()
        arena.unlink()
        assert name not in live_segments()

    def test_hundred_cycles_leak_nothing(self):
        baseline = _shm_segments()
        for cycle in range(100):
            arena = ShardArena.create(
                {"payload": np.full(64, cycle, dtype=np.int64)}
            )
            attached = ShardArena.attach(arena.manifest())
            assert int(attached.view("payload")[0]) == cycle
            attached.close()
            arena.close()
            arena.unlink()
        assert _shm_segments() == baseline
        assert not live_segments()


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


class TestPartition:
    def test_shard_sizes_near_equal(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(2, 4) == [1, 1, 0, 0]
        assert sum(shard_sizes(1234, 7)) == 1234
        with pytest.raises(EstimationError):
            shard_sizes(5, 0)

    def test_chunk_evenly_roundtrips_in_order(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(
            len(c) for c in chunks
        ) <= 1

    def test_shards_are_zero_copy_views(self, operands):
        a, __, ___ = operands
        shards = shard_node_set(a, 3)
        assert sum(len(s) for s in shards) == len(a)
        rebuilt = np.concatenate([s.starts for s in shards])
        assert np.array_equal(rebuilt, a.starts)
        assert shards[0].starts.base is not None  # a view, not a copy

    def test_shard_plan_cached_by_fingerprint(self, operands):
        a, __, ___ = operands
        cache = SummaryCache()
        first = shard_node_set(a, 4, cache=cache)
        again = shard_node_set(a, 4, cache=cache)
        assert first is again

    def test_single_shard_is_identity(self, operands):
        a, __, ___ = operands
        assert shard_node_set(a, 1) == (a,)


# ----------------------------------------------------------------------
# Merge exactness
# ----------------------------------------------------------------------


class TestMerge:
    @pytest.mark.parametrize("num_shards", [2, 3, 5, 8])
    def test_statistics_merge_matches_unsharded(
        self, operands, num_shards
    ):
        a, d, w = operands
        cache = SummaryCache()
        stats = build_shard_statistics(
            a, d, w, num_shards, num_buckets=8, cache=cache
        )
        assert merge_counts(
            [s.join_count for s in stats]
        ) == containment_join_size(a, d)
        assert np.array_equal(
            merge_intervals([s.merged for s in stats]),
            merged_interval_bounds(a),
        )
        merged_a = merge_pl_histograms(
            [s.ancestor_histogram for s in stats]
        )
        merged_d = merge_pl_histograms(
            [s.descendant_histogram for s in stats]
        )
        for merged, unsharded in (
            (merged_a, build_ancestor_cached(a, w, 8, cache=cache)),
            (merged_d, build_descendant_cached(d, w, 8, cache=cache)),
        ):
            for mine, theirs in zip(merged.buckets, unsharded.buckets):
                assert mine.n == theirs.n
                assert mine.total_length == pytest.approx(
                    theirs.total_length, rel=1e-12, abs=1e-9
                )

    def test_merge_pl_rejects_mismatched_shapes(self, operands):
        a, d, w = operands
        anc = build_ancestor_cached(a, w, 8, cache=SummaryCache())
        desc = build_descendant_cached(d, w, 8, cache=SummaryCache())
        with pytest.raises(EstimationError):
            merge_pl_histograms([anc, desc])
        with pytest.raises(EstimationError):
            merge_pl_histograms([])

    def test_merge_intervals_handles_abutting_seams(self):
        left = np.array([[0, 4], [10, 12]], dtype=np.int64)
        right = np.array([[5, 9], [12, 20]], dtype=np.int64)
        merged = merge_intervals([left, right])
        # [0,4] and [5,9] touch but do not overlap (integer positions
        # 4 and 5 are distinct); [10,12] and [12,20] share position 12.
        assert merged.tolist() == [[0, 4], [5, 9], [10, 20]]

    def test_merge_trial_statistics_pools_weighted(self):
        mean, count = merge_trial_statistics([2.0, 5.0], [3, 1])
        assert count == 4
        assert mean == pytest.approx(2.75)
        assert merge_trial_statistics([], []) == (0.0, 0)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------


class TestShardWorkerPool:
    def test_requires_two_processes(self):
        with pytest.raises(ServiceError):
            ShardWorkerPool(1)

    def test_scatter_matches_local_estimate_across(self, operands):
        a, d, w = operands
        # One batch shape, many seeds — what a coalesced service batch
        # looks like (batch signatures ignore only the seed).
        configs = [
            {"num_samples": 25, "seed": s} for s in range(1, 7)
        ]
        local = SamplingEstimator.estimate_across(
            [make_estimator("IM", **c) for c in configs], a, d, w
        )
        with ShardWorkerPool(2) as pool:
            assert pool.ping() == 2
            remote = pool.scatter("IM", configs, a, d, w)
        assert [e.value for e in remote] == [e.value for e in local]

    def test_publish_is_idempotent_per_fingerprint(self, operands):
        a, d, w = operands
        configs = [{"num_samples": 5, "seed": s} for s in (1, 2)]
        with ShardWorkerPool(2) as pool:
            pool.scatter("IM", configs, a, d, w)
            published = pool.stats()["published_operands"]
            pool.scatter("IM", configs, a, d, w)
            assert pool.stats()["published_operands"] == published
            assert pool.stats()["scatters"] == 2

    def test_crashed_workers_force_fallback_error(self, operands):
        a, d, w = operands
        configs = [{"num_samples": 5, "seed": s} for s in (1, 2, 3)]
        with ShardWorkerPool(2) as pool:
            pool.crash_worker(0)
            with pytest.raises(ServiceError):
                pool.scatter("IM", configs, a, d, w)

    def test_close_unlinks_arenas_even_after_crash(self, operands):
        a, d, w = operands
        baseline = _shm_segments()
        pool = ShardWorkerPool(2)
        try:
            pool.scatter(
                "IM", [{"num_samples": 5, "seed": s} for s in (1, 2)],
                a, d, w,
            )
            assert pool.stats()["published_operands"] == 2
            pool.crash_worker(0)
        finally:
            pool.close()
        assert _shm_segments() == baseline
        assert not live_segments()

    def test_scatter_after_close_raises(self, operands):
        a, d, w = operands
        pool = ShardWorkerPool(2)
        pool.close()
        with pytest.raises(ServiceError):
            pool.scatter("IM", [{"num_samples": 5, "seed": 1}], a, d, w)


# ----------------------------------------------------------------------
# Queue bulk admission
# ----------------------------------------------------------------------


def _futures(figure1_tree, n, **config_overrides):
    a, d = figure1_tree
    futures = []
    now = time.monotonic()
    for i in range(n):
        config = {"num_samples": 10, "seed": i}
        config.update(config_overrides)
        request = EstimateRequest(
            ancestors=a, descendants=d, method="IM", config=config
        )
        futures.append(ServiceFuture(request, now))
    return futures


class TestPutMany:
    def test_admits_whole_burst_under_capacity(self, figure1_tree):
        queue = RequestQueue(maxsize=16)
        futures = _futures(figure1_tree, 10)
        assert queue.put_many(futures) == 10
        assert len(queue) == 10
        # The burst shares one signature: it drains as one batch.
        assert len(queue.take_batch(max_batch=32, timeout=0.0)) == 10

    def test_admits_prefix_at_capacity(self, figure1_tree):
        queue = RequestQueue(maxsize=4)
        futures = _futures(figure1_tree, 10)
        assert queue.put_many(futures) == 4
        assert len(queue) == 4
        queue.take_batch(max_batch=2, timeout=0.0)
        assert queue.put_many(futures[4:]) == 2

    def test_closed_queue_admits_nothing(self, figure1_tree):
        queue = RequestQueue(maxsize=4)
        queue.close()
        assert queue.put_many(_futures(figure1_tree, 3)) == 0


# ----------------------------------------------------------------------
# Service processes mode
# ----------------------------------------------------------------------


class TestServiceProcesses:
    def _trace(self, operands, repeats=3):
        a, d, __ = operands
        return [
            EstimateRequest(
                ancestors=a,
                descendants=d,
                method="IM",
                config={"num_samples": n, "seed": 7000 + r * 100 + n},
            )
            for r in range(repeats)
            for n in (10, 25, 50)
        ]

    def test_processes_mode_is_bit_identical(self, operands):
        trace = self._trace(operands)
        expected = [
            api.estimate(
                r.ancestors, r.descendants, r.method, **r.config
            ).value
            for r in trace
        ]
        with EstimationService(workers=0, processes=2) as service:
            responses = service.map(trace, timeout=60.0)
            stats = service.stats()
        assert [r.estimate.value for r in responses] == expected
        assert stats["pool"]["scatters"] >= 1
        assert stats["counters"]["service.scatters"] >= 1

    def test_shutdown_leaves_no_segments(self, operands):
        baseline = _shm_segments()
        trace = self._trace(operands)
        with EstimationService(workers=0, processes=2) as service:
            service.map(trace, timeout=60.0)
        assert _shm_segments() == baseline
        assert not live_segments()

    def test_dead_workers_fall_back_to_local(self, operands):
        trace = self._trace(operands)
        expected = [
            api.estimate(
                r.ancestors, r.descendants, r.method, **r.config
            ).value
            for r in trace
        ]
        with EstimationService(workers=0, processes=2) as service:
            service._pool.crash_worker(0)
            service._pool.crash_worker(1)
            responses = service.map(trace, timeout=60.0)
            stats = service.stats()
        assert [r.estimate.value for r in responses] == expected
        assert all(r.status == "ok" for r in responses)
        assert stats["counters"]["service.scatter_fallbacks"] >= 1

    def test_processes_zero_has_no_pool(self, operands):
        with EstimationService(workers=0) as service:
            assert service.stats()["pool"] is None

    def test_rejects_negative_processes(self):
        with pytest.raises(ServiceError):
            EstimationService(processes=-1)

    def test_custom_factory_disables_scatter(self, operands):
        trace = self._trace(operands)
        def custom_factory(method, **config):
            return make_estimator(method, **config)

        with EstimationService(
            workers=0,
            processes=2,
            estimator_factory=custom_factory,
        ) as service:
            responses = service.map(trace, timeout=60.0)
            stats = service.stats()
        assert all(r.status == "ok" for r in responses)
        assert stats["counters"]["service.scatters"] == 0
