"""Tests for repro.estimators.ph_histogram: the PH baseline."""

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.ph_histogram import (
    DIAGONAL_CELL_PROBABILITY,
    PHHistogramEstimator,
    cell_histogram,
    containment_probability,
    grid_side,
)
from repro.join import containment_join_size


class TestGridSide:
    @pytest.mark.parametrize(
        "cells,side", [(25, 5), (50, 7), (100, 10), (1, 1), (3, 1)]
    )
    def test_paper_budgets(self, cells, side):
        assert grid_side(cells) == side

    def test_invalid(self):
        with pytest.raises(EstimationError):
            grid_side(0)


class TestCellHistogram:
    def test_counts(self, figure1_tree):
        a, __ = figure1_tree
        cells = cell_histogram(a, Workspace(1, 22), 2)
        # a3=(1,22) -> col 0, row 1; a1=(2,7) -> (0,0); a2=(18,21) -> (1,1).
        assert cells == {(0, 1): 1, (0, 0): 1, (1, 1): 1}

    def test_total_preserved(self, xmark_small):
        items = xmark_small.node_set("item")
        cells = cell_histogram(items, xmark_small.tree.workspace(), 7)
        assert sum(cells.values()) == len(items)


class TestContainmentProbability:
    def test_strictly_ordered_cells(self):
        # Ancestor column left of descendant, ancestor row above: certain.
        assert containment_probability((0, 3), (1, 2)) == 1.0

    def test_wrong_order_is_zero(self):
        assert containment_probability((2, 3), (1, 2)) == 0.0  # col too big
        assert containment_probability((0, 1), (1, 2)) == 0.0  # row too low

    def test_shared_column(self):
        assert containment_probability((0, 3), (0, 1)) == 0.5

    def test_shared_row(self):
        assert containment_probability((0, 2), (1, 2)) == 0.5

    def test_same_cell_off_diagonal(self):
        """The paper's criticized constant: 1/4 · n_A · n_D."""
        assert containment_probability((0, 3), (0, 3)) == 0.25

    def test_same_cell_on_diagonal(self):
        assert containment_probability((2, 2), (2, 2)) == (
            DIAGONAL_CELL_PROBABILITY
        )

    def test_diagonal_constant_value(self):
        """Monte-Carlo check of the closed form P = 1/6."""
        import numpy as np

        rng = np.random.default_rng(0)
        n = 200_000
        xs = rng.random((n, 2))
        ys = rng.random((n, 2))
        # Keep pairs where both points are in the triangle s < e.
        mask = (xs[:, 0] < xs[:, 1]) & (ys[:, 0] < ys[:, 1])
        a, d = xs[mask], ys[mask]
        contains = (a[:, 0] < d[:, 0]) & (d[:, 1] < a[:, 1])
        assert contains.mean() == pytest.approx(1.0 / 6.0, abs=0.01)


class TestEstimator:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            PHHistogramEstimator()
        with pytest.raises(EstimationError):
            PHHistogramEstimator(num_cells=25, budget=SpaceBudget(200))

    def test_budget_conversion(self):
        assert PHHistogramEstimator(budget=SpaceBudget(200)).side == 5

    def test_empty_operands(self):
        estimator = PHHistogramEstimator(num_cells=25)
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        assert estimator.estimate(empty, some).value == 0.0
        assert estimator.estimate(some, empty).value == 0.0

    def test_coverage_used_for_no_overlap_ancestors(self, dblp_small):
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        result = PHHistogramEstimator(num_cells=50).estimate(
            a, d, dblp_small.tree.workspace()
        )
        assert result.details["method"] == "coverage"

    def test_positional_used_for_overlapping_ancestors(self, xmark_small):
        a = xmark_small.node_set("parlist")
        d = xmark_small.node_set("listitem")
        result = PHHistogramEstimator(num_cells=50).estimate(
            a, d, xmark_small.tree.workspace()
        )
        assert result.details["method"] == "positional"

    def test_overlap_unknown_forces_positional(self, dblp_small):
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        result = PHHistogramEstimator(
            num_cells=50, overlap_known=False
        ).estimate(a, d, dblp_small.tree.workspace())
        assert result.details["method"] == "positional"

    def test_positional_blows_up_without_overlap_info(self, dblp_small):
        """Section 2.1: PH is 'highly erroneous' when the no-overlap
        property is not known beforehand."""
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        workspace = dblp_small.tree.workspace()
        true = containment_join_size(a, d)
        informed = PHHistogramEstimator(num_cells=50).estimate(
            a, d, workspace
        )
        blind = PHHistogramEstimator(
            num_cells=50, overlap_known=False
        ).estimate(a, d, workspace)
        assert blind.relative_error(true) > 5 * informed.relative_error(true)

    def test_blows_up_on_nested_ancestors(self, xmark_small):
        """The failure mode of XMARK Q6-Q8: self-nesting ancestor sets."""
        a = xmark_small.node_set("parlist")
        d = xmark_small.node_set("listitem")
        true = containment_join_size(a, d)
        result = PHHistogramEstimator(num_cells=100).estimate(
            a, d, xmark_small.tree.workspace()
        )
        # At full scale the blow-up is in the thousands of percent (the
        # paper reports 1600%-37500%); the overestimate grows with the
        # per-cell densities, so at this small test scale it is milder but
        # still far beyond any useful estimate.
        assert result.relative_error(true) > 200.0

    def test_reasonable_on_regular_data(self, dblp_small):
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        true = containment_join_size(a, d)
        result = PHHistogramEstimator(num_cells=100).estimate(
            a, d, dblp_small.tree.workspace()
        )
        assert result.relative_error(true) < 100.0
