"""Tests for repro.storage.dataset_io: dataset persistence."""

import json

import pytest

from repro.core.errors import ReproError
from repro.datasets import generate_dblp, generate_xmark
from repro.join import containment_join_size
from repro.storage import load_dataset, save_dataset


class TestRoundTrip:
    def test_structure_and_codes_preserved(self, tmp_path):
        original = generate_dblp(scale=0.02, seed=9)
        save_dataset(original, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert loaded.name == original.name
        assert loaded.scale == original.scale
        assert loaded.seed == original.seed
        assert [
            (e.tag, e.start, e.end, e.level) for e in loaded.tree.elements
        ] == [
            (e.tag, e.start, e.end, e.level)
            for e in original.tree.elements
        ]

    def test_word_coded_dataset_round_trips_exactly(self, tmp_path):
        """Word-granularity codes cannot be rebuilt from structure; the
        recorded attributes must carry them."""
        original = generate_dblp(scale=0.02, seed=9, word_content=True)
        save_dataset(original, tmp_path / "wordy")
        loaded = load_dataset(tmp_path / "wordy")
        assert [
            (e.start, e.end) for e in loaded.tree.elements
        ] == [(e.start, e.end) for e in original.tree.elements]
        assert loaded.tree.workspace() == original.tree.workspace()

    def test_join_sizes_survive(self, tmp_path):
        original = generate_xmark(scale=0.02, seed=4)
        save_dataset(original, tmp_path / "xm")
        loaded = load_dataset(tmp_path / "xm")
        for anc, desc in [("item", "name"), ("desp", "text")]:
            assert containment_join_size(
                loaded.node_set(anc), loaded.node_set(desc)
            ) == containment_join_size(
                original.node_set(anc), original.node_set(desc)
            )

    def test_statistics_survive(self, tmp_path):
        original = generate_dblp(scale=0.02, seed=9)
        save_dataset(original, tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert [
            (s.predicate, s.count, s.has_overlap)
            for s in loaded.statistics()
        ] == [
            (s.predicate, s.count, s.has_overlap)
            for s in original.statistics()
        ]


class TestErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ReproError, match="not a dataset directory"):
            load_dataset(tmp_path / "absent")

    def test_missing_document(self, tmp_path):
        directory = tmp_path / "partial"
        directory.mkdir()
        (directory / "dataset.json").write_text("{}")
        with pytest.raises(ReproError, match="not a dataset directory"):
            load_dataset(directory)

    def test_version_check(self, tmp_path):
        original = generate_dblp(scale=0.01, seed=1)
        directory = save_dataset(original, tmp_path / "ds")
        manifest = json.loads((directory / "dataset.json").read_text())
        manifest["format_version"] = 99
        (directory / "dataset.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="format version"):
            load_dataset(directory)

    def test_element_count_check(self, tmp_path):
        original = generate_dblp(scale=0.01, seed=1)
        directory = save_dataset(original, tmp_path / "ds")
        manifest = json.loads((directory / "dataset.json").read_text())
        manifest["elements"] += 1
        (directory / "dataset.json").write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="manifest"):
            load_dataset(directory)

    def test_save_creates_nested_directories(self, tmp_path):
        original = generate_dblp(scale=0.01, seed=1)
        target = tmp_path / "deep" / "nested" / "ds"
        save_dataset(original, target)
        assert (target / "document.xml").exists()
