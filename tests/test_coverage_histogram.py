"""Tests for repro.estimators.coverage_histogram."""

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.coverage_histogram import (
    CoverageHistogramEstimator,
    bucket_coverage,
    merged_intervals,
)
from repro.join import containment_join_size


class TestMergedIntervals:
    def test_disjoint_kept(self):
        ns = NodeSet([Element("a", 1, 3), Element("a", 5, 8)])
        assert merged_intervals(ns) == [(1, 3), (5, 8)]

    def test_nested_merged(self):
        ns = NodeSet([Element("a", 1, 10), Element("a", 2, 5)])
        assert merged_intervals(ns) == [(1, 10)]

    def test_chain_of_nesting(self):
        ns = NodeSet(
            [Element("a", 1, 20), Element("a", 2, 10), Element("a", 12, 19)]
        )
        assert merged_intervals(ns) == [(1, 20)]

    def test_empty(self):
        assert merged_intervals(NodeSet([])) == []


class TestBucketCoverage:
    def test_full_coverage(self):
        assert bucket_coverage([(0, 100)], 10.0, 20.0) == pytest.approx(1.0)

    def test_no_coverage(self):
        assert bucket_coverage([(0, 5)], 10.0, 20.0) == 0.0

    def test_half_coverage(self):
        assert bucket_coverage([(10, 15)], 10.0, 20.0) == pytest.approx(0.5)

    def test_multiple_pieces(self):
        assert bucket_coverage(
            [(10, 12), (14, 16)], 10.0, 20.0
        ) == pytest.approx(0.4)

    def test_degenerate_bucket(self):
        assert bucket_coverage([(0, 100)], 5.0, 5.0) == 0.0


class TestEstimator:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            CoverageHistogramEstimator()
        with pytest.raises(EstimationError):
            CoverageHistogramEstimator(
                num_buckets=5, budget=SpaceBudget(200)
            )

    def test_invalid_mode(self):
        with pytest.raises(EstimationError):
            CoverageHistogramEstimator(num_buckets=5, mode="weird")

    def test_invalid_bucket_count(self):
        with pytest.raises(EstimationError):
            CoverageHistogramEstimator(num_buckets=0)

    def test_empty_operands(self):
        estimator = CoverageHistogramEstimator(num_buckets=4)
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        assert estimator.estimate(empty, some).value == 0.0
        assert estimator.estimate(some, empty).value == 0.0

    def test_exact_when_coverage_total_and_descendants_inside(self):
        """If ancestors tile the workspace, every descendant joins once."""
        a = NodeSet([Element("a", 0, 50), Element("a", 51, 100)])
        d = NodeSet(
            [Element("d", p, p + 1) for p in range(2, 100, 7)],
            validate=False,
        )
        workspace = Workspace(0, 100)
        for mode in ("global", "local"):
            estimator = CoverageHistogramEstimator(num_buckets=5, mode=mode)
            result = estimator.estimate(a, d, workspace)
            assert result.value == pytest.approx(len(d), rel=0.05)

    def test_local_beats_global_on_skewed_data(self, dblp_small):
        """The paper's criticism of the global-coverage assumption.

        The DBLP document has an article section where no author lives;
        global coverage dilutes, local does not.
        """
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        workspace = dblp_small.tree.workspace()
        true = containment_join_size(a, d)
        local = CoverageHistogramEstimator(
            num_buckets=20, mode="local"
        ).estimate(a, d, workspace)
        global_ = CoverageHistogramEstimator(
            num_buckets=20, mode="global"
        ).estimate(a, d, workspace)
        assert local.relative_error(true) < global_.relative_error(true)

    def test_details(self, dblp_small):
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        workspace = dblp_small.tree.workspace()
        global_ = CoverageHistogramEstimator(
            num_buckets=8, mode="global"
        ).estimate(a, d, workspace)
        assert global_.details["mode"] == "global"
        assert 0.0 <= global_.details["coverage"] <= 1.0
        local = CoverageHistogramEstimator(
            num_buckets=8, mode="local"
        ).estimate(a, d, workspace)
        assert local.details["num_buckets"] == 8
