"""Tests for repro.core.nodeset."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import EmptyNodeSetError, InvalidRegionCodeError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace


def elements(*codes, tag="x"):
    return [Element(tag, s, e) for s, e in codes]


class TestConstruction:
    def test_sorted_by_start(self):
        ns = NodeSet(elements((10, 11), (1, 2), (5, 6)))
        assert [e.start for e in ns] == [1, 5, 10]

    def test_duplicate_code_rejected(self):
        with pytest.raises(InvalidRegionCodeError):
            NodeSet(elements((1, 4), (4, 6)))

    def test_duplicate_start_rejected(self):
        with pytest.raises(InvalidRegionCodeError):
            NodeSet(elements((1, 4), (1, 6)))

    def test_partial_overlap_rejected(self):
        with pytest.raises(InvalidRegionCodeError):
            NodeSet(elements((1, 5), (3, 8)))

    def test_partial_overlap_deep(self):
        # (2,9) nests in (1,10); (8,12) partially overlaps (1,10).
        with pytest.raises(InvalidRegionCodeError):
            NodeSet(elements((1, 10), (2, 9), (8, 12)))

    def test_nested_accepted(self):
        ns = NodeSet(elements((1, 10), (2, 5), (3, 4), (6, 9)))
        assert len(ns) == 4

    def test_validate_skipped_on_request(self):
        ns = NodeSet(elements((1, 5), (3, 8)), validate=False)
        assert len(ns) == 2

    def test_name(self):
        assert NodeSet([], name="item").name == "item"
        assert NodeSet([]).name == "<anonymous>"

    def test_container_protocol(self):
        ns = NodeSet(elements((1, 2), (3, 4)))
        assert len(ns) == 2
        assert bool(ns)
        assert not bool(NodeSet([]))
        assert ns[0].start == 1
        assert list(iter(ns)) == list(ns.elements)

    def test_equality_and_hash(self):
        a = NodeSet(elements((1, 2), (3, 4)))
        b = NodeSet(elements((3, 4), (1, 2)))
        assert a == b
        assert hash(a) == hash(b)
        assert a != NodeSet(elements((1, 2)))


class TestVectors:
    def test_starts_ends_lengths(self):
        ns = NodeSet(elements((1, 8), (2, 5)))
        assert ns.starts.tolist() == [1, 2]
        assert ns.ends.tolist() == [8, 5]
        assert ns.sorted_ends.tolist() == [5, 8]
        assert ns.lengths.tolist() == [7, 3]

    def test_workspace(self):
        ns = NodeSet(elements((3, 20), (5, 6)))
        assert ns.workspace() == Workspace(3, 20)

    def test_workspace_empty_raises(self):
        with pytest.raises(EmptyNodeSetError):
            NodeSet([]).workspace()


class TestOverlapStatistics:
    def test_no_overlap(self):
        ns = NodeSet(elements((1, 2), (3, 4), (5, 6)))
        assert not ns.has_overlap
        assert ns.max_nesting_depth == 1

    def test_nested_overlap(self):
        ns = NodeSet(elements((1, 10), (2, 5), (6, 9)))
        assert ns.has_overlap
        assert ns.max_nesting_depth == 2

    def test_deep_nesting_depth(self):
        ns = NodeSet(elements((1, 10), (2, 9), (3, 8), (4, 7)))
        assert ns.max_nesting_depth == 4

    def test_empty_and_singleton(self):
        assert not NodeSet([]).has_overlap
        assert NodeSet([]).max_nesting_depth == 0
        single = NodeSet(elements((1, 2)))
        assert not single.has_overlap
        assert single.max_nesting_depth == 1

    def test_lengths_statistics(self):
        ns = NodeSet(elements((1, 4), (5, 10)))
        assert ns.total_length == 8
        assert ns.average_length == pytest.approx(4.0)
        assert NodeSet([]).average_length == 0.0

    def test_covered_length_merges_nested(self):
        ns = NodeSet(elements((1, 10), (2, 5)))
        assert ns.covered_length() == 9

    def test_covered_length_disjoint(self):
        ns = NodeSet(elements((1, 4), (6, 8)))
        assert ns.covered_length() == 5

    def test_covered_length_empty(self):
        assert NodeSet([]).covered_length() == 0


class TestQueries:
    def test_stab_count(self):
        ns = NodeSet(elements((1, 10), (2, 5), (7, 9)))
        assert ns.stab_count(0) == 0
        assert ns.stab_count(1) == 1
        assert ns.stab_count(3) == 2
        assert ns.stab_count(6) == 1
        assert ns.stab_count(8) == 2
        assert ns.stab_count(10) == 1
        assert ns.stab_count(11) == 0

    def test_stab_counts_vectorized_matches_scalar(self):
        ns = NodeSet(elements((1, 10), (2, 5), (7, 9)))
        positions = np.arange(0, 12)
        vector = ns.stab_counts(positions)
        assert vector.tolist() == [ns.stab_count(int(p)) for p in positions]

    def test_count_starts_in(self):
        ns = NodeSet(elements((1, 2), (5, 6), (9, 10)))
        assert ns.count_starts_in(1, 6) == 2  # half-open: 1, 5
        assert ns.count_starts_in(2, 5) == 0
        assert ns.count_starts_in(0, 100) == 3

    def test_has_start_at(self):
        ns = NodeSet(elements((1, 2), (5, 6)))
        assert ns.has_start_at(5)
        assert not ns.has_start_at(2)
        assert not ns.has_start_at(4)
        assert not NodeSet([]).has_start_at(1)

    def test_restrict(self):
        ns = NodeSet(elements((1, 2), (5, 6), (9, 10)))
        inside = ns.restrict(Workspace(4, 8))
        assert [e.start for e in inside] == [5]

    def test_sample_without_replacement(self):
        ns = NodeSet(elements((1, 2), (3, 4), (5, 6), (7, 8)))
        rng = np.random.default_rng(0)
        picked = ns.sample(3, rng)
        assert len(picked) == 3
        assert len({e.start for e in picked}) == 3

    def test_sample_too_many_raises(self):
        ns = NodeSet(elements((1, 2)))
        with pytest.raises(EmptyNodeSetError):
            ns.sample(2, np.random.default_rng(0))

    def test_merge(self):
        a = NodeSet(elements((1, 2)), name="a")
        b = NodeSet(elements((3, 4)), name="b")
        merged = NodeSet.merge([a, b], name="ab")
        assert len(merged) == 2
        assert merged.name == "ab"
