"""Tests for repro.maintenance: incremental statistics under updates."""

import statistics

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError, ReproError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.pl_histogram import PLHistogram, PLHistogramEstimator
from repro.join import containment_join_size
from repro.maintenance import (
    DynamicTTree,
    IncrementalPLHistogram,
    ReservoirSample,
)
from repro.models.position import turning_points


@pytest.fixture(scope="module")
def xmark_sets():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    return (
        dataset.node_set("desp"),
        dataset.node_set("text"),
        dataset.tree.workspace(),
    )


class TestIncrementalPLHistogram:
    def test_matches_batch_build_after_inserts(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 12)
        for element in ancestors:
            incremental.insert(element)
        batch = PLHistogram.build_ancestor(ancestors, workspace, 12)
        live = incremental.ancestor_histogram()
        for built, maintained in zip(batch.buckets, live.buckets):
            assert built.n == maintained.n
            assert built.total_length == pytest.approx(
                maintained.total_length
            )

    def test_descendant_counts_match(self, xmark_sets):
        __, descendants, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 12)
        for element in descendants:
            incremental.insert(element)
        batch = PLHistogram.build_descendant(descendants, workspace, 12)
        live = incremental.descendant_histogram()
        assert [b.n for b in batch.buckets] == [b.n for b in live.buckets]

    def test_insert_then_remove_is_identity(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 8)
        subset = ancestors.elements[:50]
        for element in subset:
            incremental.insert(element)
        extra = ancestors.elements[50:80]
        for element in extra:
            incremental.insert(element)
        for element in extra:
            incremental.remove(element)
        assert len(incremental) == 50
        reference = IncrementalPLHistogram(workspace, 8)
        for element in subset:
            reference.insert(element)
        assert [
            (b.n, b.total_length)
            for b in incremental.ancestor_histogram().buckets
        ] == [
            (b.n, b.total_length)
            for b in reference.ancestor_histogram().buckets
        ]

    def test_estimation_through_maintained_histograms(self, xmark_sets):
        ancestors, descendants, workspace = xmark_sets
        anc = IncrementalPLHistogram(workspace, 20)
        desc = IncrementalPLHistogram(workspace, 20)
        for element in ancestors:
            anc.insert(element)
        for element in descendants:
            desc.insert(element)
        estimator = PLHistogramEstimator(num_buckets=20)
        live = estimator.estimate_from_histograms(
            anc.ancestor_histogram(), desc.descendant_histogram()
        )
        batch = estimator.estimate(ancestors, descendants, workspace)
        assert live.value == pytest.approx(batch.value)

    def test_out_of_workspace_rejected(self):
        incremental = IncrementalPLHistogram(Workspace(1, 10), 2)
        with pytest.raises(EstimationError):
            incremental.insert(Element("a", 5, 20))

    def test_over_removal_rejected(self):
        incremental = IncrementalPLHistogram(Workspace(1, 10), 2)
        with pytest.raises(EstimationError):
            incremental.remove(Element("a", 2, 3))

    def test_invalid_configuration(self):
        with pytest.raises(EstimationError):
            IncrementalPLHistogram(Workspace(1, 10), 0)
        with pytest.raises(EstimationError):
            IncrementalPLHistogram(Workspace(1, 10), 2, length_mode="nope")


class TestDynamicTTree:
    def test_matches_static_turning_points(self, xmark_sets):
        ancestors, __, __ws = xmark_sets
        dynamic = DynamicTTree.from_node_set(ancestors)
        assert dynamic.turning_points() == turning_points(ancestors)

    def test_counts_match_node_set(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        dynamic = DynamicTTree.from_node_set(ancestors)
        rng = np.random.default_rng(0)
        for position in rng.integers(workspace.lo, workspace.hi, size=200):
            assert dynamic.count(int(position)) == ancestors.stab_count(
                int(position)
            )

    def test_insert_then_delete_restores(self, figure1_tree):
        a, __ = figure1_tree
        dynamic = DynamicTTree.from_node_set(a)
        before = dynamic.turning_points()
        extra = Element("a", 5, 6, 2)
        dynamic.insert(extra)
        assert dynamic.count(5) == a.stab_count(5) + 1
        dynamic.delete(extra)
        assert dynamic.turning_points() == before
        assert len(dynamic) == len(a)

    def test_adjacent_intervals_cancel_events(self):
        dynamic = DynamicTTree()
        dynamic.insert(Element("a", 1, 4))
        dynamic.insert(Element("a", 5, 8))
        # The -1 at 5 from (1,4) cancels the +1 at 5 from (5,8).
        assert dynamic.turning_points() == [(1, 1), (9, 0)]

    def test_delete_never_inserted_detected(self):
        """Detection fires when a prefix sum goes negative (best effort:
        a phantom deletion nested strictly inside live coverage cannot be
        distinguished from a legal one)."""
        dynamic = DynamicTTree()
        dynamic.insert(Element("a", 1, 4))
        dynamic.delete(Element("a", 2, 8))  # never inserted
        with pytest.raises(ReproError):
            dynamic.count(2)

    def test_delete_from_empty(self):
        with pytest.raises(ReproError):
            DynamicTTree().delete(Element("a", 1, 2))

    def test_empty_counts_zero(self):
        assert DynamicTTree().count(100) == 0

    def test_lazy_recompile_amortizes(self, xmark_sets):
        ancestors, __, __ws = xmark_sets
        dynamic = DynamicTTree()
        for element in ancestors.elements[:100]:
            dynamic.insert(element)
        dynamic.count(1)  # compiles
        assert not dynamic._dirty
        dynamic.insert(ancestors.elements[100])
        assert dynamic._dirty


class TestReservoirSample:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(capacity=5, seed=0)
        elements = [Element("d", 2 * i + 1, 2 * i + 2) for i in range(3)]
        reservoir.extend(elements)
        assert len(reservoir) == 3
        assert reservoir.seen == 3
        assert reservoir.sample == elements

    def test_capacity_respected(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        reservoir.extend(
            Element("d", 2 * i + 1, 2 * i + 2) for i in range(500)
        )
        assert len(reservoir) == 10
        assert reservoir.seen == 500

    def test_invalid_capacity(self):
        with pytest.raises(EstimationError):
            ReservoirSample(capacity=0)

    def test_uniformity(self):
        """Every stream element must be retained with probability k/n."""
        stream = [Element("d", 2 * i + 1, 2 * i + 2) for i in range(50)]
        hits = {element.start: 0 for element in stream}
        trials = 400
        for seed in range(trials):
            reservoir = ReservoirSample(capacity=10, seed=seed)
            reservoir.extend(stream)
            for kept in reservoir.sample:
                hits[kept.start] += 1
        expected = trials * 10 / 50
        for count in hits.values():
            assert abs(count - expected) < expected * 0.5

    def test_im_estimate_unbiased(self, xmark_sets):
        ancestors, descendants, __ = xmark_sets
        true = containment_join_size(ancestors, descendants)
        estimates = []
        for seed in range(100):
            reservoir = ReservoirSample(capacity=60, seed=seed)
            reservoir.extend(descendants)
            estimates.append(reservoir.im_estimate(ancestors))
        assert abs(statistics.fmean(estimates) - true) / true < 0.07

    def test_im_estimate_exact_when_capacity_exceeds_stream(
        self, xmark_sets
    ):
        ancestors, descendants, __ = xmark_sets
        reservoir = ReservoirSample(capacity=10**6, seed=0)
        reservoir.extend(descendants)
        assert reservoir.im_estimate(ancestors) == containment_join_size(
            ancestors, descendants
        )

    def test_im_estimate_empty(self):
        reservoir = ReservoirSample(capacity=5, seed=0)
        assert reservoir.im_estimate(NodeSet([])) == 0.0
