"""Tests for repro.maintenance: incremental statistics under updates."""

import statistics

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError, ReproError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.pl_histogram import PLHistogram, PLHistogramEstimator
from repro.join import containment_join_size
from repro.maintenance import (
    DynamicTTree,
    IncrementalPLHistogram,
    ReservoirSample,
)
from repro.models.position import turning_points


@pytest.fixture(scope="module")
def xmark_sets():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    return (
        dataset.node_set("desp"),
        dataset.node_set("text"),
        dataset.tree.workspace(),
    )


class TestIncrementalPLHistogram:
    def test_matches_batch_build_after_inserts(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 12)
        for element in ancestors:
            incremental.insert(element)
        batch = PLHistogram.build_ancestor(ancestors, workspace, 12)
        live = incremental.ancestor_histogram()
        for built, maintained in zip(batch.buckets, live.buckets):
            assert built.n == maintained.n
            assert built.total_length == pytest.approx(
                maintained.total_length
            )

    def test_descendant_counts_match(self, xmark_sets):
        __, descendants, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 12)
        for element in descendants:
            incremental.insert(element)
        batch = PLHistogram.build_descendant(descendants, workspace, 12)
        live = incremental.descendant_histogram()
        assert [b.n for b in batch.buckets] == [b.n for b in live.buckets]

    def test_insert_then_remove_is_identity(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        incremental = IncrementalPLHistogram(workspace, 8)
        subset = ancestors.elements[:50]
        for element in subset:
            incremental.insert(element)
        extra = ancestors.elements[50:80]
        for element in extra:
            incremental.insert(element)
        for element in extra:
            incremental.remove(element)
        assert len(incremental) == 50
        reference = IncrementalPLHistogram(workspace, 8)
        for element in subset:
            reference.insert(element)
        assert [
            (b.n, b.total_length)
            for b in incremental.ancestor_histogram().buckets
        ] == [
            (b.n, b.total_length)
            for b in reference.ancestor_histogram().buckets
        ]

    def test_estimation_through_maintained_histograms(self, xmark_sets):
        ancestors, descendants, workspace = xmark_sets
        anc = IncrementalPLHistogram(workspace, 20)
        desc = IncrementalPLHistogram(workspace, 20)
        for element in ancestors:
            anc.insert(element)
        for element in descendants:
            desc.insert(element)
        estimator = PLHistogramEstimator(num_buckets=20)
        live = estimator.estimate_from_histograms(
            anc.ancestor_histogram(), desc.descendant_histogram()
        )
        batch = estimator.estimate(ancestors, descendants, workspace)
        assert live.value == pytest.approx(batch.value)

    def test_out_of_workspace_rejected(self):
        incremental = IncrementalPLHistogram(Workspace(1, 10), 2)
        with pytest.raises(EstimationError):
            incremental.insert(Element("a", 5, 20))

    def test_over_removal_rejected(self):
        incremental = IncrementalPLHistogram(Workspace(1, 10), 2)
        with pytest.raises(EstimationError):
            incremental.remove(Element("a", 2, 3))

    def test_invalid_configuration(self):
        with pytest.raises(EstimationError):
            IncrementalPLHistogram(Workspace(1, 10), 0)
        with pytest.raises(EstimationError):
            IncrementalPLHistogram(Workspace(1, 10), 2, length_mode="nope")


class TestDynamicTTree:
    def test_matches_static_turning_points(self, xmark_sets):
        ancestors, __, __ws = xmark_sets
        dynamic = DynamicTTree.from_node_set(ancestors)
        assert dynamic.turning_points() == turning_points(ancestors)

    def test_counts_match_node_set(self, xmark_sets):
        ancestors, __, workspace = xmark_sets
        dynamic = DynamicTTree.from_node_set(ancestors)
        rng = np.random.default_rng(0)
        for position in rng.integers(workspace.lo, workspace.hi, size=200):
            assert dynamic.count(int(position)) == ancestors.stab_count(
                int(position)
            )

    def test_insert_then_delete_restores(self, figure1_tree):
        a, __ = figure1_tree
        dynamic = DynamicTTree.from_node_set(a)
        before = dynamic.turning_points()
        extra = Element("a", 5, 6, 2)
        dynamic.insert(extra)
        assert dynamic.count(5) == a.stab_count(5) + 1
        dynamic.delete(extra)
        assert dynamic.turning_points() == before
        assert len(dynamic) == len(a)

    def test_adjacent_intervals_cancel_events(self):
        dynamic = DynamicTTree()
        dynamic.insert(Element("a", 1, 4))
        dynamic.insert(Element("a", 5, 8))
        # The -1 at 5 from (1,4) cancels the +1 at 5 from (5,8).
        assert dynamic.turning_points() == [(1, 1), (9, 0)]

    def test_delete_never_inserted_detected(self):
        """Detection fires when a prefix sum goes negative (best effort:
        a phantom deletion nested strictly inside live coverage cannot be
        distinguished from a legal one)."""
        dynamic = DynamicTTree()
        dynamic.insert(Element("a", 1, 4))
        dynamic.delete(Element("a", 2, 8))  # never inserted
        with pytest.raises(ReproError):
            dynamic.count(2)

    def test_delete_from_empty(self):
        with pytest.raises(ReproError):
            DynamicTTree().delete(Element("a", 1, 2))

    def test_empty_counts_zero(self):
        assert DynamicTTree().count(100) == 0

    def test_lazy_recompile_amortizes(self, xmark_sets):
        ancestors, __, __ws = xmark_sets
        dynamic = DynamicTTree()
        for element in ancestors.elements[:100]:
            dynamic.insert(element)
        dynamic.count(1)  # compiles
        assert not dynamic._dirty
        dynamic.insert(ancestors.elements[100])
        assert dynamic._dirty


class TestReservoirSample:
    def test_fills_to_capacity(self):
        reservoir = ReservoirSample(capacity=5, seed=0)
        elements = [Element("d", 2 * i + 1, 2 * i + 2) for i in range(3)]
        reservoir.extend(elements)
        assert len(reservoir) == 3
        assert reservoir.seen == 3
        assert reservoir.sample == elements

    def test_capacity_respected(self):
        reservoir = ReservoirSample(capacity=10, seed=1)
        reservoir.extend(
            Element("d", 2 * i + 1, 2 * i + 2) for i in range(500)
        )
        assert len(reservoir) == 10
        assert reservoir.seen == 500

    def test_invalid_capacity(self):
        with pytest.raises(EstimationError):
            ReservoirSample(capacity=0)

    def test_uniformity(self):
        """Every stream element must be retained with probability k/n."""
        stream = [Element("d", 2 * i + 1, 2 * i + 2) for i in range(50)]
        hits = {element.start: 0 for element in stream}
        trials = 400
        for seed in range(trials):
            reservoir = ReservoirSample(capacity=10, seed=seed)
            reservoir.extend(stream)
            for kept in reservoir.sample:
                hits[kept.start] += 1
        expected = trials * 10 / 50
        for count in hits.values():
            assert abs(count - expected) < expected * 0.5

    def test_im_estimate_unbiased(self, xmark_sets):
        ancestors, descendants, __ = xmark_sets
        true = containment_join_size(ancestors, descendants)
        estimates = []
        for seed in range(100):
            reservoir = ReservoirSample(capacity=60, seed=seed)
            reservoir.extend(descendants)
            estimates.append(reservoir.im_estimate(ancestors))
        assert abs(statistics.fmean(estimates) - true) / true < 0.07

    def test_im_estimate_exact_when_capacity_exceeds_stream(
        self, xmark_sets
    ):
        ancestors, descendants, __ = xmark_sets
        reservoir = ReservoirSample(capacity=10**6, seed=0)
        reservoir.extend(descendants)
        assert reservoir.im_estimate(ancestors) == containment_join_size(
            ancestors, descendants
        )

    def test_im_estimate_empty(self):
        reservoir = ReservoirSample(capacity=5, seed=0)
        assert reservoir.im_estimate(NodeSet([])) == 0.0


class TestDynamicTTreeChurn:
    """Delete-heavy paths: emptying, reinsertion, mixed churn."""

    def test_delete_to_empty_then_reinsert(self):
        elements = [Element("a", 4 * i + 1, 4 * i + 3) for i in range(8)]
        dynamic = DynamicTTree(elements)
        for element in elements:
            dynamic.delete(element)
        assert len(dynamic) == 0
        assert dynamic.turning_points() == []
        assert dynamic.count(5) == 0
        dynamic.insert(elements[3])
        assert len(dynamic) == 1
        assert dynamic.count(elements[3].start) == 1

    def test_delete_marks_dirty_and_recompiles(self, xmark_sets):
        ancestors, __, __ws = xmark_sets
        dynamic = DynamicTTree.from_node_set(ancestors)
        victim = ancestors.elements[7]
        dynamic.count(1)  # compiles
        assert not dynamic._dirty
        dynamic.delete(victim)
        assert dynamic._dirty
        expected = ancestors.stab_count(int(victim.start)) - 1
        assert dynamic.count(int(victim.start)) == expected
        assert not dynamic._dirty

    def test_random_churn_matches_stabbing_counter(self, xmark_sets):
        from repro.index.stab import StabbingCounter

        ancestors, __, __ws = xmark_sets
        rng = np.random.default_rng(5)
        live = list(ancestors.elements[:120])
        dynamic = DynamicTTree(live)
        free = list(ancestors.elements[120:240])
        for __round in range(200):
            if free and (not live or rng.random() < 0.4):
                element = free.pop(int(rng.integers(0, len(free))))
                dynamic.insert(element)
                live.append(element)
            else:
                element = live.pop(int(rng.integers(0, len(live))))
                dynamic.delete(element)
                free.append(element)
        reference = StabbingCounter(NodeSet(tuple(live)))
        probes = {e.start for e in live} | {e.end for e in live}
        for position in sorted(probes):
            assert dynamic.count(int(position)) == reference.count(
                int(position)
            )
        assert len(dynamic) == len(live)


class TestReservoirUnderDeletes:
    """Random pairing keeps the sample uniform under delete-heavy feeds."""

    #: chi-square critical values at alpha = 0.001 for the df used below
    #: (no scipy in the image; values from the standard table).
    CHI2_999 = {29: 58.301}

    def test_delete_heavy_feed_stays_uniform(self):
        """Chi-square gate on inclusion counts over a fixed churn script.

        The op sequence is identical across trials (only the reservoir
        seed varies): load 40 elements, delete 25, insert the remaining
        20, delete 5 more — a delete-heavy feed ending at a fixed
        30-element population.  Uniformity means every survivor is
        sampled equally often across trials.
        """
        pool = [Element("d", 4 * i + 1, 4 * i + 3) for i in range(60)]
        trials = 500
        capacity = 12
        inclusion: dict[int, int] = {}
        total_sampled = 0
        survivors = None
        for seed in range(trials):
            reservoir = ReservoirSample(capacity, seed=seed)
            live = []
            for element in pool[:40]:
                reservoir.add(element)
                live.append(element)
            for element in pool[5:30]:
                reservoir.remove(element)
                live.remove(element)
            for element in pool[40:]:
                reservoir.add(element)
                live.append(element)
            for element in pool[:5]:
                reservoir.remove(element)
                live.remove(element)
            if survivors is None:
                survivors = [e.start for e in live]
                inclusion = {start: 0 for start in survivors}
            assert len(live) == 30
            sample = reservoir.sample
            assert len(sample) <= capacity
            starts = {e.start for e in live}
            for kept in sample:
                assert kept.start in starts
                inclusion[kept.start] += 1
            total_sampled += len(sample)
        expected = total_sampled / 30
        chi2 = sum(
            (count - expected) ** 2 / expected
            for count in inclusion.values()
        )
        assert chi2 < self.CHI2_999[29], (
            f"chi-square {chi2:.1f} over df=29 rejects uniformity "
            f"(inclusion counts {sorted(inclusion.values())})"
        )

    def test_live_tracks_population(self):
        reservoir = ReservoirSample(4, seed=3)
        elements = [Element("d", 4 * i + 1, 4 * i + 3) for i in range(10)]
        for element in elements:
            reservoir.add(element)
        assert reservoir.live == 10
        for element in elements[:9]:
            reservoir.remove(element)
        assert reservoir.live == 1
        assert reservoir.seen == 10
        with pytest.raises(EstimationError):
            for __ in range(2):
                reservoir.remove(elements[9])

    def test_add_only_path_matches_classic_algorithm_r(self):
        """No deletion ever issued -> bit-identical to the old reservoir."""
        stream = [Element("d", 2 * i + 1, 2 * i + 2) for i in range(200)]
        classic = ReservoirSample(8, seed=42)
        classic.extend(stream)
        replay = ReservoirSample(8, seed=42)
        replay.extend(stream)
        assert classic.sample == replay.sample
        assert classic.live == classic.seen == 200


class TestLiveWorkspaceDeltaEdgeCases:
    """Incremental-delta edge cases through the stream layer."""

    def _workspace(self):
        from repro.stream import LiveWorkspace

        elements = [Element("a", 4 * i + 1, 4 * i + 3) for i in range(6)]
        live = LiveWorkspace(
            Workspace(0, 40), elements=elements, num_buckets=4, seed=1
        )
        return live, elements

    def test_empty_batch_is_a_noop_but_advances_seq(self):
        from repro.core.errors import StreamError  # noqa: F401

        live, elements = self._workspace()
        before_fp = live.fingerprint("a")
        seq = live.apply([])
        assert seq == 1
        assert live.applied_seq == 1
        assert live.applied_batches == 1
        assert live.applied_mutations == 0
        assert live.size("a") == len(elements)
        assert live.fingerprint("a") == before_fp

    def test_delete_all_then_reinsert(self):
        from repro.stream import Mutation

        live, elements = self._workspace()
        live.apply([Mutation("delete", e) for e in elements])
        assert live.size("a") == 0
        assert len(live.node_set("a")) == 0
        assert live.ttree("a").turning_points() == []
        assert all(
            bucket.n == 0
            for bucket in live.pl_histogram("a").ancestor_histogram().buckets
        )
        assert dict(live.cell_histogram("a").cell_histogram()) == {}
        live.apply([Mutation("insert", elements[2])])
        assert live.size("a") == 1
        assert live.rebuild_node_set("a").elements == (elements[2],)

    def test_duplicate_insert_rejected(self):
        from repro.core.errors import StreamError
        from repro.stream import Mutation

        live, elements = self._workspace()
        with pytest.raises(StreamError, match="duplicate insert"):
            live.apply([Mutation("insert", elements[0])])

    def test_delete_of_non_live_element_rejected(self):
        from repro.core.errors import StreamError
        from repro.stream import Mutation

        live, __ = self._workspace()
        with pytest.raises(StreamError, match="non-live"):
            live.apply([Mutation("delete", Element("a", 2, 3))])
