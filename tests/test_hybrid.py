"""Tests for repro.estimators.hybrid: the Section 6.5 policy."""

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.hybrid import HybridEstimator
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def dblp():
    from repro.datasets import generate_dblp

    return generate_dblp(scale=0.1, seed=42)


class TestConfiguration:
    def test_budget_form(self):
        estimator = HybridEstimator(budget=SpaceBudget(400), seed=0)
        assert estimator.name == "HYBRID"

    def test_explicit_form(self):
        HybridEstimator(num_buckets=10, num_samples=50, seed=0)

    def test_missing_configuration(self):
        with pytest.raises(EstimationError):
            HybridEstimator()
        with pytest.raises(EstimationError):
            HybridEstimator(num_buckets=10)  # missing num_samples

    def test_both_forms_rejected(self):
        with pytest.raises(EstimationError):
            HybridEstimator(
                budget=SpaceBudget(400), num_buckets=10, num_samples=10
            )

    def test_negative_thresholds(self):
        with pytest.raises(EstimationError):
            HybridEstimator(budget=SpaceBudget(400), cov_threshold=-1)


class TestPolicy:
    def test_histogram_path_for_large_cov(self, dblp):
        """DBLP Q1 has cov ~1.9: the histogram answer is kept."""
        a = dblp.node_set("inproceeding")
        d = dblp.node_set("author")
        result = HybridEstimator(budget=SpaceBudget(800), seed=1).estimate(
            a, d, dblp.tree.workspace()
        )
        assert result.details["path"] == "histogram"
        assert result.mre is not None

    def test_sampling_path_for_small_cov(self, dblp):
        """DBLP Q6 (cite // label) has cov << 1: falls back to IM."""
        a = dblp.node_set("cite")
        d = dblp.node_set("label")
        true = containment_join_size(a, d)
        result = HybridEstimator(budget=SpaceBudget(800), seed=1).estimate(
            a, d, dblp.tree.workspace()
        )
        assert result.details["path"] == "sampling"
        assert result.details["histogram_cov"] < 1.0
        assert result.relative_error(true) < 20.0

    def test_fallback_beats_plain_histogram_on_risky_queries(self, dblp):
        from repro.estimators.pl_histogram import PLHistogramEstimator

        a = dblp.node_set("title")
        d = dblp.node_set("sup")
        true = containment_join_size(a, d)
        workspace = dblp.tree.workspace()
        hybrid = HybridEstimator(budget=SpaceBudget(800), seed=3).estimate(
            a, d, workspace
        )
        plain = PLHistogramEstimator(budget=SpaceBudget(800)).estimate(
            a, d, workspace
        )
        assert hybrid.relative_error(true) < plain.relative_error(true)

    def test_strict_tolerance_always_samples(self, dblp):
        a = dblp.node_set("inproceeding")
        d = dblp.node_set("author")
        result = HybridEstimator(
            budget=SpaceBudget(800), mre_tolerance=0.0, seed=1
        ).estimate(a, d, dblp.tree.workspace())
        assert result.details["path"] == "sampling"

    def test_empty_operands(self):
        estimator = HybridEstimator(budget=SpaceBudget(400), seed=0)
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        result = estimator.estimate(empty, some)
        assert result.value == 0.0

    def test_registry(self, figure1_tree):
        from repro.estimators import make_estimator

        a, d = figure1_tree
        estimator = make_estimator(
            "HYBRID", budget=SpaceBudget(200), seed=0
        )
        assert estimator.estimate(a, d).value >= 0.0
