"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import main


@pytest.fixture()
def run_cli(capsys):
    def run(*argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out

    return run


SCALE = "0.05"


class TestCli:
    def test_table2_single_dataset(self, run_cli):
        code, out = run_cli("table2", "--dataset", "dblp", "--scale", SCALE)
        assert code == 0
        assert "table2_dblp" in out
        assert "inproceeding" in out

    def test_table2_all_datasets(self, run_cli):
        __, out = run_cli("table2", "--scale", SCALE)
        for name in ("xmark", "dblp", "xmach"):
            assert f"table2_{name}" in out

    def test_table3(self, run_cli):
        __, out = run_cli("table3", "--dataset", "xmach")
        assert "host" in out and "Q7" in out

    def test_table4(self, run_cli):
        __, out = run_cli("table4", "--scale", SCALE)
        assert "cov (paper)" in out
        assert "2.0520" in out

    def test_fig3(self, run_cli):
        __, out = run_cli("fig3")
        assert "per-period maxima" in out
        assert "1=99.90" in out

    def test_fig5_single_budget(self, run_cli):
        __, out = run_cli(
            "fig5", "--scale", SCALE, "--runs", "1", "--budget", "200"
        )
        assert "200B" in out
        assert "Q11" in out

    def test_fig8(self, run_cli):
        __, out = run_cli("fig8", "--scale", SCALE, "--runs", "1")
        assert "fig8a_im_sweep" in out
        assert "fig8c_im_vs_pm" in out

    def test_out_directory(self, run_cli, tmp_path):
        out_dir = tmp_path / "reports"
        code, __ = run_cli(
            "table4", "--scale", SCALE, "--out", str(out_dir)
        )
        assert code == 0
        assert (out_dir / "table4_cov.txt").exists()
        assert "cov" in (out_dir / "table4_cov.txt").read_text()

    def test_unknown_experiment_rejected(self, run_cli):
        with pytest.raises(SystemExit):
            run_cli("fig99")

    def test_claims_command(self, run_cli):
        __, out = run_cli("claims", "--scale", SCALE, "--runs", "1")
        assert "Reproduction scoreboard" in out
        assert "Theorem 1" in out

    def test_fig7_command(self, run_cli):
        __, out = run_cli("fig7", "--scale", SCALE)
        assert "fig7a_ph_sweep" in out
        assert "fig7c_ph_vs_pl" in out

    def test_xmach_command(self, run_cli):
        __, out = run_cli(
            "xmach", "--scale", "0.1", "--runs", "1", "--budget", "200"
        )
        assert "xmach" in out


class TestTelemetryCli:
    def test_telemetry_then_obs_report(self, run_cli, tmp_path):
        from repro import obs

        telemetry = tmp_path / "telemetry.jsonl"
        code, out = run_cli(
            "table4", "--scale", SCALE, "--telemetry", str(telemetry)
        )
        assert code == 0
        assert f"telemetry records to {telemetry}" in out
        records = obs.read_telemetry(telemetry)
        events = {r["event"] for r in records}
        assert "estimate" in events and "summary" in events

        code, report = run_cli("obs-report", "--input", str(telemetry))
        assert code == 0
        assert "Estimator calls" in report
        assert "Counters" in report

    def test_obs_report_requires_input(self, run_cli):
        with pytest.raises(SystemExit):
            run_cli("obs-report")

    def test_observation_disabled_after_run(self, run_cli, tmp_path):
        from repro import obs

        run_cli(
            "table4", "--scale", SCALE,
            "--telemetry", str(tmp_path / "t.jsonl"),
        )
        assert not obs.enabled()
