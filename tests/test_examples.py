"""Smoke tests: every shipped example must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "exact join size" in out
        assert "PL diagnostics" in out

    def test_accuracy_report_cli(self):
        out = run_example(
            "accuracy_report.py",
            "--dataset", "dblp", "--scale", "0.05", "--runs", "1",
            "--budget", "200",
        )
        assert "relative error" in out
        assert "Q6" in out

    def test_dataset_explorer(self):
        out = run_example("dataset_explorer.py")
        assert "round trip" in out
        assert "rank oracle" in out

    def test_query_optimizer(self):
        out = run_example("query_optimizer.py")
        assert "IM     plan" in out
        assert "UBOUND plan" in out
        assert "EXACT  plan" in out
        assert "parenthesizations" in out

    def test_catalog_optimizer(self):
        out = run_example("catalog_optimizer.py")
        assert "tags catalogued" in out
        assert "twig predicate" in out

    def test_disk_and_extensions(self):
        out = run_example("disk_and_extensions.py")
        assert "page accesses per probe" in out
        assert "structural bounds" in out

    def test_closed_loop(self):
        out = run_example("closed_loop.py")
        assert "bandit routing" in out
        assert "arm pulls per query class" in out
        assert "cells fitted" in out
        assert "corrected answers" in out
        # Routing is deterministic, so the learned PL correction lands
        # the first query exactly on the true join size.
        assert "corrected      435.0 exact      435.0" in out

    def test_all_examples_covered(self):
        """Every example script in the directory has a smoke test here."""
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "accuracy_report.py",
            "dataset_explorer.py",
            "query_optimizer.py",
            "catalog_optimizer.py",
            "disk_and_extensions.py",
            "closed_loop.py",
        }
        assert scripts == tested
