"""Tests for repro.estimators.bounds."""

import pytest

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.estimators.base import Estimate
from repro.estimators.bounds import (
    JoinSizeBounds,
    clamp_estimate,
    join_size_bounds,
)
from repro.join import containment_join_size


class TestJoinSizeBounds:
    def test_contains_and_clamp(self):
        bounds = JoinSizeBounds(2, 10)
        assert bounds.contains(5)
        assert not bounds.contains(11)
        assert bounds.clamp(100.0) == 10.0
        assert bounds.clamp(1.0) == 2.0
        assert bounds.clamp(7.0) == 7.0

    def test_no_overlap_ancestors_bounded_by_descendants(self):
        a = NodeSet([Element("a", 1, 4), Element("a", 6, 9)])
        d = NodeSet([Element("d", 2, 3), Element("d", 7, 8)])
        bounds = join_size_bounds(a, d)
        assert bounds.upper == len(d)  # depth 1 -> each d joins <= 1 a

    def test_nested_ancestors_scale_with_depth(self):
        a = NodeSet(
            [Element("a", 1, 10), Element("a", 2, 9), Element("a", 3, 8)]
        )
        d = NodeSet([Element("d", 4, 5)])
        bounds = join_size_bounds(a, d)
        assert bounds.upper == 3  # min(1 * depth 3, 3 * 1)

    def test_empty(self):
        assert join_size_bounds(NodeSet([]), NodeSet([])) == JoinSizeBounds(
            0, 0
        )

    def test_bound_always_valid_on_datasets(self, xmark_small):
        for anc, desc in [
            ("item", "name"),
            ("parlist", "listitem"),
            ("desp", "text"),
        ]:
            a = xmark_small.node_set(anc)
            d = xmark_small.node_set(desc)
            bounds = join_size_bounds(a, d)
            assert bounds.contains(containment_join_size(a, d)), (anc, desc)


class TestClampEstimate:
    @pytest.fixture()
    def operands(self):
        a = NodeSet([Element("a", 1, 4), Element("a", 6, 9)])
        d = NodeSet([Element("d", 2, 3), Element("d", 7, 8)])
        return a, d

    def test_overestimate_clamped(self, operands):
        a, d = operands
        raw = Estimate(1000.0, "X", details={"k": 1})
        clamped = clamp_estimate(raw, a, d)
        assert clamped.value == 2.0
        assert clamped.details["clamped"] is True
        assert clamped.details["k"] == 1  # original details preserved

    def test_feasible_estimate_untouched(self, operands):
        a, d = operands
        raw = Estimate(1.5, "X")
        clamped = clamp_estimate(raw, a, d)
        assert clamped.value == 1.5
        assert clamped.details["clamped"] is False

    def test_negative_clamped_to_zero(self, operands):
        a, d = operands
        clamped = clamp_estimate(Estimate(-3.0, "X"), a, d)
        assert clamped.value == 0.0

    def test_clamping_never_hurts(self, xmark_small):
        """|clamped - true| <= |raw - true| for any raw value."""
        a = xmark_small.node_set("parlist")
        d = xmark_small.node_set("listitem")
        true = containment_join_size(a, d)
        for raw_value in (0.0, true / 2, float(true), true * 50.0):
            raw = Estimate(raw_value, "X")
            clamped = clamp_estimate(raw, a, d)
            assert abs(clamped.value - true) <= abs(raw.value - true) + 1e-9
