"""Tests for repro.datasets.distributions."""

import statistics

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.datasets.distributions import (
    Bernoulli,
    Choice,
    Fixed,
    Poisson,
    UniformInt,
    scaled_count,
)


def sample_many(dist, n=4000, seed=0):
    rng = np.random.default_rng(seed)
    return [dist.sample(rng) for __ in range(n)]


class TestFixed:
    def test_always_value(self):
        assert set(sample_many(Fixed(3), 50)) == {3}
        assert Fixed(3).mean == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            Fixed(-1)


class TestBernoulli:
    def test_support(self):
        assert set(sample_many(Bernoulli(0.5))) == {0, 1}

    def test_mean(self):
        assert statistics.fmean(sample_many(Bernoulli(0.3))) == pytest.approx(
            0.3, abs=0.03
        )
        assert Bernoulli(0.3).mean == 0.3

    def test_degenerate(self):
        assert set(sample_many(Bernoulli(0.0), 100)) == {0}
        assert set(sample_many(Bernoulli(1.0), 100)) == {1}

    def test_invalid_probability(self):
        with pytest.raises(ReproError):
            Bernoulli(1.5)
        with pytest.raises(ReproError):
            Bernoulli(-0.1)


class TestUniformInt:
    def test_support(self):
        values = set(sample_many(UniformInt(2, 5)))
        assert values == {2, 3, 4, 5}

    def test_mean(self):
        assert UniformInt(2, 5).mean == 3.5
        assert statistics.fmean(
            sample_many(UniformInt(2, 5))
        ) == pytest.approx(3.5, abs=0.1)

    def test_invalid_bounds(self):
        with pytest.raises(ReproError):
            UniformInt(5, 2)
        with pytest.raises(ReproError):
            UniformInt(-1, 2)


class TestPoisson:
    def test_mean(self):
        assert statistics.fmean(sample_many(Poisson(4.9))) == pytest.approx(
            4.9, rel=0.05
        )
        assert Poisson(4.9).mean == 4.9

    def test_non_negative(self):
        assert all(v >= 0 for v in sample_many(Poisson(0.3)))

    def test_invalid_rate(self):
        with pytest.raises(ReproError):
            Poisson(-1.0)


class TestChoice:
    def test_support(self):
        dist = Choice((1, 3), (0.5, 0.5))
        assert set(sample_many(dist)) == {1, 3}

    def test_mean_formula(self):
        dist = Choice((0, 1, 2), (0.4, 0.535, 0.065))
        assert dist.mean == pytest.approx(0.665)
        assert statistics.fmean(sample_many(dist)) == pytest.approx(
            dist.mean, abs=0.03
        )

    def test_unnormalized_weights(self):
        dist = Choice((1, 2), (2.0, 2.0))
        assert dist.mean == pytest.approx(1.5)

    def test_invalid(self):
        with pytest.raises(ReproError):
            Choice((1, 2), (0.5,))
        with pytest.raises(ReproError):
            Choice((), ())
        with pytest.raises(ReproError):
            Choice((1,), (-1.0,))
        with pytest.raises(ReproError):
            Choice((1,), (0.0,))


class TestScaledCount:
    def test_scaling(self):
        assert scaled_count(100, 1.0) == 100
        assert scaled_count(100, 0.5) == 50
        assert scaled_count(100, 2.0) == 200

    def test_never_below_one(self):
        assert scaled_count(5, 0.001) == 1

    def test_rounding(self):
        assert scaled_count(10, 0.25) == 2  # round(2.5) banker's -> 2

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            scaled_count(10, 0.0)
        with pytest.raises(ReproError):
            scaled_count(10, -1.0)
