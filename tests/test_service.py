"""Tests for the estimation service layer (:mod:`repro.service`).

Covers the service contract end to end: request validation and batch
keys, queue coalescing, sequential-parity of service answers (the same
bit-exact estimate a direct ``repro.api.estimate`` call returns), result
memoization and in-flight deduplication, the degradation ladder under
injected faults and deadlines, load shedding, the circuit breaker, and
shutdown semantics.  Fault injection goes through the public
``estimator_factory`` hook — no monkeypatching of internals.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro import api
from repro.core.errors import (
    DeadlineExceededError,
    InvalidNodeSetError,
    ServiceError,
    UnknownEstimatorError,
)
from repro.estimators.base import Estimate
from repro.estimators.registry import make_estimator
from repro.service import (
    LADDER,
    CircuitBreaker,
    EstimateRequest,
    EstimationService,
    RequestQueue,
)
from repro.service.bench import build_trace
from repro.service.request import ServiceFuture


def _request(figure1_tree, **overrides):
    a, d = figure1_tree
    kwargs = dict(
        ancestors=a,
        descendants=d,
        method="IM",
        config={"num_samples": 10, "seed": 3},
    )
    kwargs.update(overrides)
    return EstimateRequest(**kwargs)


class _FailingFactory:
    """An ``estimator_factory`` that raises for the first ``fail`` calls."""

    def __init__(self, fail: int = 10**9):
        self.fail = fail
        self.calls = 0

    def __call__(self, method, **config):
        self.calls += 1
        if self.calls <= self.fail:
            raise RuntimeError("injected estimator fault")
        return make_estimator(method, **config)


class _FakeClock:
    """Injectable monotonic clock advanced explicitly by the test."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class _SlowFactory:
    """Wraps real estimators with a fixed pre-estimate delay.

    The delay advances the injected fake clock when one is given
    (deterministic under any CI load); otherwise it really sleeps.
    """

    def __init__(self, delay_s: float, clock: _FakeClock | None = None):
        self.delay_s = delay_s
        self.clock = clock

    def __call__(self, method, **config):
        inner = make_estimator(method, **config)
        delay_s = self.delay_s
        clock = self.clock

        class Slow:
            def estimate(self, a, d, workspace=None):
                if clock is not None:
                    clock.advance(delay_s)
                else:
                    time.sleep(delay_s)
                return inner.estimate(a, d, workspace)

        return Slow()


class TestEstimateRequest:
    def test_rejects_non_nodeset_operands(self, figure1_tree):
        a, __ = figure1_tree
        with pytest.raises(InvalidNodeSetError):
            EstimateRequest(ancestors=a, descendants=[1, 2, 3])

    def test_rejects_unknown_method(self, figure1_tree):
        a, d = figure1_tree
        with pytest.raises(UnknownEstimatorError):
            EstimateRequest(ancestors=a, descendants=d, method="NOPE")

    def test_resolves_alias_eagerly(self, figure1_tree):
        a, d = figure1_tree
        request = EstimateRequest(
            ancestors=a, descendants=d, method="im-da"
        )
        assert request.method == "IM"

    def test_rejects_nonpositive_deadline(self, figure1_tree):
        a, d = figure1_tree
        with pytest.raises(ServiceError):
            EstimateRequest(ancestors=a, descendants=d, deadline_s=0.0)

    def test_batch_signature_ignores_seed(self, figure1_tree):
        r1 = _request(figure1_tree, config={"num_samples": 10, "seed": 1})
        r2 = _request(figure1_tree, config={"num_samples": 10, "seed": 2})
        r3 = _request(figure1_tree, config={"num_samples": 25, "seed": 1})
        assert r1.batch_signature() == r2.batch_signature()
        assert r1.batch_signature() != r3.batch_signature()

    def test_result_key_none_for_unseeded_stochastic(self, figure1_tree):
        unseeded = _request(figure1_tree, config={"num_samples": 10})
        assert unseeded.result_key() is None
        seeded = _request(figure1_tree)
        assert seeded.result_key() is not None

    def test_result_key_for_deterministic_method(self, figure1_tree):
        pl = _request(figure1_tree, method="PL", config={"num_buckets": 5})
        assert pl.result_key() is not None

    def test_result_key_distinguishes_seeds(self, figure1_tree):
        r1 = _request(figure1_tree, config={"num_samples": 10, "seed": 1})
        r2 = _request(figure1_tree, config={"num_samples": 10, "seed": 2})
        assert r1.result_key() != r2.result_key()

    def test_request_ids_autogenerate_uniquely(self, figure1_tree):
        r1 = _request(figure1_tree)
        r2 = _request(figure1_tree)
        assert r1.request_id != r2.request_id


class TestRequestQueue:
    def test_coalesces_by_signature(self, figure1_tree):
        queue = RequestQueue()
        now = time.monotonic()
        same1 = ServiceFuture(_request(figure1_tree), now)
        other = ServiceFuture(
            _request(figure1_tree, config={"num_samples": 25, "seed": 3}),
            now,
        )
        same2 = ServiceFuture(
            _request(figure1_tree, config={"num_samples": 10, "seed": 9}),
            now,
        )
        for future in (same1, other, same2):
            assert queue.put(future)
        batch = queue.take_batch(max_batch=8, timeout=0.0)
        # The oldest group anchors the batch and collects its later
        # arrival, skipping the incompatible request queued between them.
        assert batch == [same1, same2]
        assert queue.take_batch(8, timeout=0.0) == [other]

    def test_max_batch_cap(self, figure1_tree):
        queue = RequestQueue()
        futures = [
            ServiceFuture(_request(figure1_tree), time.monotonic())
            for __ in range(5)
        ]
        for future in futures:
            queue.put(future)
        assert queue.take_batch(max_batch=3, timeout=0.0) == futures[:3]
        assert queue.take_batch(max_batch=3, timeout=0.0) == futures[3:]

    def test_refuses_when_full_or_closed(self, figure1_tree):
        queue = RequestQueue(maxsize=1)
        assert queue.put(
            ServiceFuture(_request(figure1_tree), time.monotonic())
        )
        assert not queue.put(
            ServiceFuture(_request(figure1_tree), time.monotonic())
        )
        queue.close()
        assert queue.take_batch(8, timeout=0.0)  # drains existing work
        assert queue.take_batch(8, timeout=0.0) == []

    def test_drain_empties_all_groups(self, figure1_tree):
        queue = RequestQueue()
        queue.put(ServiceFuture(_request(figure1_tree), time.monotonic()))
        queue.put(
            ServiceFuture(
                _request(
                    figure1_tree, config={"num_samples": 25, "seed": 3}
                ),
                time.monotonic(),
            )
        )
        assert len(queue.drain()) == 2
        assert len(queue) == 0


class TestSequentialParity:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_map_matches_sequential_estimates(self, figure1_tree, workers):
        trace = [
            _request(figure1_tree, config={"num_samples": n, "seed": s})
            for n in (10, 25)
            for s in (1, 2, 3)
        ]
        expected = [
            api.estimate(
                r.ancestors, r.descendants, r.method, **r.config
            ).value
            for r in trace
        ]
        with EstimationService(workers=workers) as service:
            responses = service.map(trace, timeout=30.0)
        assert [r.estimate.value for r in responses] == expected
        assert all(r.status == "ok" for r in responses)
        assert all(r.ladder_level == 0 for r in responses)
        assert [r.request_id for r in responses] == [
            r.request_id for r in trace
        ]

    def test_synchronous_estimate(self, figure1_tree):
        a, d = figure1_tree
        expected = api.estimate(a, d, "IM", num_samples=10, seed=3)
        with EstimationService(workers=0) as service:
            response = service.estimate(
                a, d, "IM", num_samples=10, seed=3, timeout=30.0
            )
        assert response.estimate.value == expected.value
        assert response.batch_size >= 1
        assert response.wait_s >= 0.0
        assert response.service_s >= response.wait_s

    def test_optimizer_trace_identity(self, xmark_small):
        trace = build_trace("xmark", scale=0.05, repeats=2)
        expected = [
            api.estimate(
                r.ancestors, r.descendants, r.method, **r.config
            ).value
            for r in trace
        ]
        with EstimationService(workers=0, max_batch=32) as service:
            responses = service.map(trace, timeout=60.0)
        assert [r.estimate.value for r in responses] == expected


class TestMemoizationAndDedup:
    def test_repeat_seeded_requests_computed_once(self, figure1_tree):
        requests = [_request(figure1_tree) for __ in range(6)]
        with EstimationService(workers=0) as service:
            responses = service.map(requests, timeout=30.0)
            counters = service.stats()["counters"]
        values = {r.estimate.value for r in responses}
        assert len(values) == 1
        # One lead computed; the rest were deduplicated in flight.
        assert counters.get("service.inflight_hits", 0) == 5

    def test_memo_answers_after_settle(self, figure1_tree):
        with EstimationService(workers=0) as service:
            first = service.estimate(
                *figure1_tree, "IM", num_samples=10, seed=3, timeout=30.0
            )
            second = service.estimate(
                *figure1_tree, "IM", num_samples=10, seed=3, timeout=30.0
            )
            counters = service.stats()["counters"]
        assert second.estimate.value == first.estimate.value
        assert counters.get("service.memo_hits", 0) >= 1

    def test_unseeded_stochastic_never_memoized(self, figure1_tree):
        requests = [
            _request(figure1_tree, config={"num_samples": 10})
            for __ in range(4)
        ]
        with EstimationService(workers=0) as service:
            service.map(requests, timeout=30.0)
            counters = service.stats()["counters"]
        assert counters.get("service.memo_hits", 0) == 0
        assert counters.get("service.inflight_hits", 0) == 0

    def test_memoize_false_disables_dedup(self, figure1_tree):
        requests = [_request(figure1_tree) for __ in range(3)]
        with EstimationService(workers=0, memoize=False) as service:
            responses = service.map(requests, timeout=30.0)
            counters = service.stats()["counters"]
        assert len({r.estimate.value for r in responses}) == 1  # same seed
        assert counters.get("service.memo_hits", 0) == 0
        assert counters.get("service.inflight_hits", 0) == 0


class TestDegradation:
    def test_estimator_fault_degrades_to_bound(self, figure1_tree):
        with EstimationService(
            workers=0, estimator_factory=_FailingFactory()
        ) as service:
            response = service.estimate(*figure1_tree, "IM",
                                        num_samples=10, seed=3,
                                        timeout=30.0)
        assert response.status == "degraded"
        assert response.degraded
        assert response.degraded_reason == "error"
        assert response.ladder_name == "bound"
        assert response.estimate.estimator == "BOUND"
        # Figure 1: |A ⋈ D| = 6; the structural bound encloses it.
        assert response.estimate.value >= 6.0
        assert response.estimate.details["degraded_from"] == "IM"

    def test_expired_deadline_degrades_without_running(self, figure1_tree):
        clock = _FakeClock()
        with EstimationService(workers=0, clock=clock) as service:
            future = service.submit(
                *figure1_tree, "IM", num_samples=10, seed=3,
                deadline_s=0.001,
            )
            clock.advance(0.01)  # deadline passes while queued
            service.help_drain((future,))
            response = future.result(timeout=30.0)
        assert response.status == "degraded"
        assert response.degraded_reason == "deadline"
        assert response.deadline_missed
        assert response.ladder_name == "bound"

    def test_catalog_rung_used_when_operands_match(self, xmark_small):
        catalog = api.build_catalog(
            xmark_small, 400, tags=["item", "name"]
        )
        a = xmark_small.node_set("item")
        d = xmark_small.node_set("name")
        clock = _FakeClock()
        with EstimationService(
            workers=0, catalog=catalog, clock=clock
        ) as service:
            future = service.submit(
                a, d, "IM", num_samples=10, seed=3, deadline_s=0.001
            )
            clock.advance(0.01)
            service.help_drain((future,))
            response = future.result(timeout=30.0)
        assert response.status == "degraded"
        assert response.ladder_name == "catalog"
        assert response.ladder_level == LADDER.index("catalog")
        assert response.estimate.details["degraded_from"] == "IM"

    def test_catalog_rung_skipped_for_filtered_operand(self, xmark_small):
        catalog = api.build_catalog(
            xmark_small, 400, tags=["item", "name"]
        )
        from repro.core.nodeset import NodeSet

        a = xmark_small.node_set("item")
        d = xmark_small.node_set("name")
        filtered = NodeSet(list(d)[: len(d) // 2], name=d.name)
        clock = _FakeClock()
        with EstimationService(
            workers=0, catalog=catalog, clock=clock
        ) as service:
            future = service.submit(
                a, filtered, "IM", num_samples=10, seed=3,
                deadline_s=0.001,
            )
            clock.advance(0.01)
            service.help_drain((future,))
            response = future.result(timeout=30.0)
        # Whole-tag statistics must not answer for a filtered subset.
        assert response.ladder_name == "bound"

    def test_predicted_latency_degrades_upfront(self, figure1_tree):
        clock = _FakeClock()
        with EstimationService(
            workers=0,
            estimator_factory=_SlowFactory(0.05, clock=clock),
            clock=clock,
        ) as service:
            # Teach the breaker's EWMA that this method is slow.
            warm = service.estimate(*figure1_tree, "IM", num_samples=10,
                                    seed=3, timeout=30.0)
            assert warm.status == "ok"
            response = service.estimate(
                *figure1_tree, "IM", num_samples=10, seed=4,
                deadline_s=0.005, timeout=30.0,
            )
        assert response.status == "degraded"
        assert response.degraded_reason == "predicted"
        # Degraded pre-emptively, so the deadline itself was kept.
        assert not response.deadline_missed

    def test_every_stressed_request_is_answered(self, figure1_tree):
        requests = [
            _request(
                figure1_tree,
                config={"num_samples": 10, "seed": s},
                deadline_s=0.0005,
            )
            for s in range(30)
        ]
        with EstimationService(workers=0) as service:
            responses = service.map(requests, timeout=30.0)
        assert len(responses) == len(requests)
        for response in responses:
            assert response.estimate.value >= 0.0
            if response.degraded:
                assert response.status in ("degraded", "shed")
                assert response.degraded_reason is not None


class TestSheddingAndShutdown:
    def test_overload_sheds_inline(self, figure1_tree):
        requests = [
            _request(figure1_tree, config={"num_samples": 10 + i})
            for i in range(3)
        ]
        with EstimationService(workers=0, queue_size=1) as service:
            futures = [service.submit(request=r) for r in requests]
            shed = [f.result(30.0) for f in futures[1:]]
            service.help_drain(futures)
            first = futures[0].result(30.0)
        assert first.status == "ok"
        for response in shed:
            assert response.status == "shed"
            assert response.degraded_reason == "overload"
            assert response.estimate.estimator == "BOUND"

    def test_close_answers_queued_requests(self, figure1_tree):
        service = EstimationService(workers=0)
        future = service.submit(*figure1_tree, "IM", num_samples=10,
                                seed=3)
        service.close()
        response = future.result(timeout=30.0)
        assert response.status == "shed"
        assert response.degraded_reason == "shutdown"

    def test_submit_after_close_raises(self, figure1_tree):
        service = EstimationService(workers=0)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(*figure1_tree, "IM", num_samples=10, seed=3)

    def test_result_wait_timeout_raises(self, figure1_tree):
        with EstimationService(workers=0) as service:
            future = service.submit(*figure1_tree, "IM", num_samples=10,
                                    seed=3)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=0.01)
            service.help_drain((future,))
            assert future.result(timeout=30.0).status == "ok"


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, cooloff_s=60.0)
        assert breaker.state == "closed"
        breaker.record(0.01, ok=False)
        assert breaker.state == "closed"
        breaker.record(0.01, ok=False)
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_admits_single_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(threshold=1, cooloff_s=0.01, clock=clock)
        breaker.record(0.01, ok=False)
        assert breaker.state == "open"
        clock.advance(0.02)
        assert breaker.state == "half-open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else keeps waiting
        breaker.record(0.01, ok=True)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_ewma_tracks_latency(self):
        breaker = CircuitBreaker(alpha=0.5)
        breaker.record(0.1, ok=True)
        breaker.record(0.2, ok=True)
        assert breaker.predicted_latency() == pytest.approx(0.15)

    def test_open_breaker_degrades_deadline_requests(self, figure1_tree):
        factory = _FailingFactory(fail=2)
        with EstimationService(
            workers=0,
            estimator_factory=factory,
            breaker_threshold=2,
            breaker_cooloff_s=60.0,
        ) as service:
            # Two distinct no-deadline requests trip the breaker.
            for seed in (1, 2):
                response = service.estimate(
                    *figure1_tree, "IM", num_samples=10, seed=seed,
                    timeout=30.0,
                )
                assert response.degraded_reason == "error"
            assert service.stats()["breakers"]["IM"]["state"] == "open"
            response = service.estimate(
                *figure1_tree, "IM", num_samples=10, seed=3,
                deadline_s=10.0, timeout=30.0,
            )
        assert response.degraded_reason == "breaker"
        # The factory recovered, but the breaker short-circuited before
        # construction: only the two tripping calls ever reached it.
        assert factory.calls == 2


@pytest.mark.slow
class TestRealClockIntegration:
    """Wall-clock twins of the fake-clock tests above.

    Excluded from tier-1 (``-m "not slow"``); the nightly job runs them
    to confirm the injected-clock behavior matches real time.
    """

    def test_expired_deadline_real_clock(self, figure1_tree):
        with EstimationService(workers=0) as service:
            future = service.submit(
                *figure1_tree, "IM", num_samples=10, seed=3,
                deadline_s=0.001,
            )
            time.sleep(0.05)
            service.help_drain((future,))
            response = future.result(timeout=30.0)
        assert response.status == "degraded"
        assert response.degraded_reason == "deadline"
        assert response.deadline_missed

    def test_half_open_real_clock(self):
        breaker = CircuitBreaker(threshold=1, cooloff_s=0.02)
        breaker.record(0.01, ok=False)
        assert breaker.state == "open"
        time.sleep(0.05)
        assert breaker.state == "half-open"
        assert breaker.allow()
        assert not breaker.allow()


class TestResponseWireFormat:
    def test_to_dict_embeds_versioned_estimate(self, figure1_tree):
        with EstimationService(workers=0) as service:
            response = service.estimate(
                *figure1_tree, "IM", num_samples=10, seed=3, timeout=30.0
            )
        payload = response.to_dict()
        assert payload["schema_version"] == 1
        assert payload["status"] == "ok"
        assert payload["ladder_name"] == "requested"
        rebuilt = Estimate.from_dict(payload["estimate"])
        assert rebuilt.value == response.estimate.value
        assert rebuilt.estimator == response.estimate.estimator


class TestPublicSurface:
    def test_serve_facade(self, figure1_tree):
        with repro.serve(workers=0) as service:
            assert isinstance(service, EstimationService)
            response = service.estimate(
                *figure1_tree, "PL", num_buckets=5, timeout=30.0
            )
        expected = api.estimate(*figure1_tree, "PL", num_buckets=5)
        assert response.estimate.value == expected.value

    def test_service_types_reexported(self):
        for name in (
            "EstimationService",
            "EstimateRequest",
            "EstimateResponse",
            "serve",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__
            assert name in api.__all__
