"""Tests for repro.core.element: Region and Element."""

import pytest

from repro.core.element import Element, Region
from repro.core.errors import InvalidRegionCodeError


class TestRegion:
    def test_length(self):
        assert Region(2, 7).length == 5

    def test_contains_proper(self):
        assert Region(1, 10).contains(Region(2, 9))
        assert Region(1, 10).contains(Region(2, 3))

    def test_contains_rejects_equal(self):
        assert not Region(1, 10).contains(Region(1, 10))

    def test_contains_rejects_shared_boundary(self):
        assert not Region(1, 10).contains(Region(1, 5))
        assert not Region(1, 10).contains(Region(5, 10))

    def test_contains_rejects_disjoint(self):
        assert not Region(1, 4).contains(Region(5, 8))

    def test_contains_point_inclusive(self):
        region = Region(3, 6)
        assert region.contains_point(3)
        assert region.contains_point(6)
        assert region.contains_point(4.5)
        assert not region.contains_point(2)
        assert not region.contains_point(7)

    def test_disjoint(self):
        assert Region(1, 3).disjoint(Region(4, 6))
        assert Region(4, 6).disjoint(Region(1, 3))
        assert not Region(1, 5).disjoint(Region(4, 6))

    def test_partial_overlap_detected(self):
        assert Region(1, 5).partially_overlaps(Region(3, 8))
        assert Region(3, 8).partially_overlaps(Region(1, 5))

    def test_partial_overlap_excludes_nesting(self):
        assert not Region(1, 10).partially_overlaps(Region(3, 5))
        assert not Region(3, 5).partially_overlaps(Region(1, 10))

    def test_partial_overlap_excludes_disjoint_and_equal(self):
        assert not Region(1, 3).partially_overlaps(Region(5, 8))
        assert not Region(1, 3).partially_overlaps(Region(1, 3))

    def test_validate_ok(self):
        assert Region(1, 2).validate() == Region(1, 2)

    @pytest.mark.parametrize("start,end", [(5, 5), (7, 2)])
    def test_validate_rejects_bad_codes(self, start, end):
        with pytest.raises(InvalidRegionCodeError):
            Region(start, end).validate()


class TestElement:
    def test_construction_and_fields(self):
        element = Element("item", 2, 9, level=3)
        assert element.tag == "item"
        assert element.region == Region(2, 9)
        assert element.length == 7
        assert element.level == 3

    def test_invalid_region_rejected_at_construction(self):
        with pytest.raises(InvalidRegionCodeError):
            Element("bad", 5, 5)
        with pytest.raises(InvalidRegionCodeError):
            Element("bad", 9, 2)

    def test_is_ancestor_of(self):
        outer = Element("a", 1, 10)
        inner = Element("b", 3, 4)
        assert outer.is_ancestor_of(inner)
        assert not inner.is_ancestor_of(outer)
        assert not outer.is_ancestor_of(outer)

    def test_is_ancestor_of_sibling(self):
        left = Element("a", 1, 4)
        right = Element("b", 5, 8)
        assert not left.is_ancestor_of(right)
        assert not right.is_ancestor_of(left)

    def test_contains_point(self):
        element = Element("a", 2, 7)
        assert element.contains_point(2)
        assert element.contains_point(7)
        assert not element.contains_point(8)

    def test_interval_and_point_views(self):
        element = Element("a", 2, 7)
        assert element.as_interval() == (2, 7)
        assert element.as_point() == 2

    def test_frozen(self):
        element = Element("a", 1, 2)
        with pytest.raises(AttributeError):
            element.start = 5

    def test_equality_and_hash(self):
        assert Element("a", 1, 2) == Element("a", 1, 2)
        assert Element("a", 1, 2) != Element("b", 1, 2)
        assert hash(Element("a", 1, 2)) == hash(Element("a", 1, 2))
