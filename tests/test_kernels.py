"""The repro.kernels layer: arenas, fused kernels, backend registry.

Three contracts pinned here:

* **backend registry** — numpy is always available; selecting numba on
  a numpy-only install falls back silently and reports the fallback;
  unknown names raise; ``use_kernel_backend`` restores the previous
  backend on exit (including on error).
* **fused-vs-reference parity** — every sampling estimator produces
  bit-for-bit identical estimates under the fused single-pass kernels
  and under :func:`repro.perf.reference_kernels` (which rebuilds the
  paper's per-call index composition), on every probe backend and every
  available kernel backend, with and without an ambient
  :class:`~repro.perf.IndexCache` (the table-gather tier).
* **arena semantics** — operand arenas are views (no copies), memoized
  on the object without a cache and content-keyed through the cache
  with one; the stab-count table equals the stabbing counter evaluated
  over every descendant start; reference mode bypasses the
  turning-point cache on the node set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.index.stab import StabbingCounter
from repro.kernels import (
    KNOWN_BACKENDS,
    OPERAND_FIELDS,
    OperandArena,
    available_backends,
    kernel_backend,
    operand_arena,
    set_kernel_backend,
    stab_count_table,
    use_kernel_backend,
)
from repro.perf import IndexCache, reference_kernels, use_index_cache

NUMBA_INSTALLED = "numba" in available_backends()


@pytest.fixture
def operands(xmark_small):
    tree = xmark_small.tree
    return tree.node_set("desp"), tree.node_set("text")


class TestBackendRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()
        assert set(available_backends()) <= set(KNOWN_BACKENDS)

    def test_default_backend_is_numpy(self):
        assert kernel_backend() == "numpy"

    def test_unknown_backend_raises(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            set_kernel_backend("cython")
        # the failed call must not have changed the active backend
        assert kernel_backend() == "numpy"

    def test_numba_selection_reports_actual_backend(self):
        # The soft-dependency contract: selecting numba either activates
        # it (installed) or falls back to numpy silently (absent) — the
        # return value always names what is actually running.
        try:
            active = set_kernel_backend("numba")
            expected = "numba" if NUMBA_INSTALLED else "numpy"
            assert active == expected
            assert kernel_backend() == expected
        finally:
            set_kernel_backend("numpy")

    def test_use_kernel_backend_restores(self):
        before = kernel_backend()
        with use_kernel_backend("numba") as active:
            assert active == kernel_backend()
            assert active in available_backends()
        assert kernel_backend() == before

    def test_use_kernel_backend_restores_on_error(self):
        before = kernel_backend()
        with pytest.raises(RuntimeError):
            with use_kernel_backend("numba"):
                raise RuntimeError("boom")
        assert kernel_backend() == before


ESTIMATOR_CASES = [
    ("IM-rank", lambda s: IMSamplingEstimator(num_samples=9, seed=s)),
    (
        "IM-ttree",
        lambda s: IMSamplingEstimator(num_samples=9, seed=s, backend="ttree"),
    ),
    (
        "IM-xrtree",
        lambda s: IMSamplingEstimator(
            num_samples=9, seed=s, backend="xrtree"
        ),
    ),
    (
        "IM-replace",
        lambda s: IMSamplingEstimator(num_samples=9, seed=s, replace=True),
    ),
    ("PM-rank", lambda s: PMSamplingEstimator(num_samples=9, seed=s)),
    (
        "PM-ttree",
        lambda s: PMSamplingEstimator(num_samples=9, seed=s, backend="ttree"),
    ),
    ("CROSS", lambda s: CrossSamplingEstimator(num_samples=9, seed=s)),
    ("SYS", lambda s: SystematicSamplingEstimator(num_samples=4, seed=s)),
    ("SEMI-D", lambda s: SemijoinDescendantsEstimator(num_samples=7, seed=s)),
    ("SEMI-A", lambda s: SemijoinAncestorsEstimator(num_samples=7, seed=s)),
    ("BIFOCAL", lambda s: BifocalEstimator(num_samples=6, seed=s)),
    (
        "BIFOCAL-t3",
        lambda s: BifocalEstimator(num_samples=6, seed=s, threshold=3),
    ),
]


def _estimate(make, seed, a, d, cache):
    if cache is None:
        return make(seed).estimate(a, d)
    with use_index_cache(cache):
        return make(seed).estimate(a, d)


@pytest.mark.parametrize(
    "name,make", ESTIMATOR_CASES, ids=[c[0] for c in ESTIMATOR_CASES]
)
@pytest.mark.parametrize("cached", [False, True], ids=["direct", "cached"])
class TestFusedVsReference:
    def test_bit_for_bit(self, name, make, cached, operands):
        """Fused kernels == the paper's index composition, exactly."""
        a, d = operands
        for seed in (0, 7):
            with reference_kernels():
                want = _estimate(make, seed, a, d, None)
            cache = IndexCache() if cached else None
            got = _estimate(make, seed, a, d, cache)
            assert got.value == want.value, name
            assert got.details == want.details, name

    def test_backends_agree(self, name, make, cached, operands):
        """Every available kernel backend produces identical results."""
        a, d = operands
        cache = IndexCache() if cached else None
        results = []
        for backend in available_backends():
            with use_kernel_backend(backend):
                results.append(_estimate(make, 3, a, d, cache))
        first = results[0]
        for other in results[1:]:
            assert other.value == first.value, name
            assert other.details == first.details, name


class TestFusedEdgeCases:
    def test_empty_descendants_short_circuit(self, figure1_tree):
        # An empty descendant operand clamps the sample count to zero:
        # the fused m == 0 guard must reproduce the reference's empty
        # answer, not divide by zero.
        a, __ = figure1_tree
        est = IMSamplingEstimator(num_samples=4, seed=0).estimate(
            a, NodeSet([])
        )
        with reference_kernels():
            want = IMSamplingEstimator(num_samples=4, seed=0).estimate(
                a, NodeSet([])
            )
        assert est.value == want.value == 0.0
        assert est.details == want.details

    def test_single_element_operands(self):
        a = NodeSet([Element("a", 1, 4, 0)])
        d = NodeSet([Element("d", 2, 3, 1)])
        for __, make in ESTIMATOR_CASES:
            with reference_kernels():
                want = make(1).estimate(a, d)
            got = make(1).estimate(a, d)
            assert got.value == want.value
            assert got.details == want.details


class TestOperandArena:
    def test_fields_are_views(self, operands):
        a, __ = operands
        arena = operand_arena(a)
        assert arena.starts is a.starts
        assert arena.ends is a.ends
        assert arena.sorted_ends is a.sorted_ends
        assert arena.fingerprint == a.fingerprint
        assert len(arena) == len(a)
        assert tuple(arena.shard_fields()) == OPERAND_FIELDS

    def test_object_memo_without_cache(self, operands):
        a, __ = operands
        assert operand_arena(a) is operand_arena(a)

    def test_content_keyed_through_cache(self, operands):
        a, __ = operands
        clone = NodeSet(list(a.elements), name=a.name)
        cache = IndexCache()
        first = operand_arena(a, cache)
        assert operand_arena(clone, cache) is first
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_turning_points_padded(self, operands):
        a, __ = operands
        keys, padded = operand_arena(a).turning_points()
        ref_keys, ref_values = a.turning_points_arrays
        assert np.array_equal(keys, ref_keys)
        assert padded[0] == 0
        assert np.array_equal(padded[1:], ref_values)
        assert not padded.flags.writeable

    def test_turning_points_bypass_under_reference_mode(self, operands):
        a, __ = operands
        cached_keys, __ = a.turning_points_arrays
        with reference_kernels():
            ref_keys, __ = a.turning_points_arrays
        assert np.array_equal(cached_keys, ref_keys)
        # reference mode recomputes: same values, distinct array object
        assert ref_keys is not cached_keys

    def test_shard_roundtrip(self, operands):
        a, __ = operands
        arena = operand_arena(a)
        rebuilt = OperandArena.from_shard_views(
            arena.shard_fields(), name=a.name, fingerprint=a.fingerprint
        )
        assert np.array_equal(rebuilt.starts, a.starts)
        assert np.array_equal(rebuilt.sorted_ends, a.sorted_ends)
        assert rebuilt.fingerprint == a.fingerprint
        # the seeded sorted_ends view is adopted, not re-derived
        assert rebuilt.sorted_ends is arena.sorted_ends


class TestStabCountTable:
    def test_equals_stabbing_counter(self, operands):
        a, d = operands
        cache = IndexCache()
        table = stab_count_table(a, d, cache)
        want = StabbingCounter(a).count_many(d.starts)
        assert np.array_equal(table, want)
        assert table.dtype == np.int64
        assert not table.flags.writeable

    def test_cached_by_both_fingerprints(self, operands):
        a, d = operands
        cache = IndexCache()
        first = stab_count_table(a, d, cache)
        assert stab_count_table(a, d, cache) is first
        # swapping operands is a different table, not a cache hit
        swapped = stab_count_table(d, a, cache)
        assert swapped is not first
        assert len(swapped) == len(a)
