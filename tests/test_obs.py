"""Tests for repro.obs: metrics, tracing, telemetry, instrumentation.

The load-bearing properties: totals are exact however many threads or
forked workers produced them, the disabled path records nothing, and
``observe`` never leaks state past its block.
"""

import io
import json
import math
import threading

import pytest

from repro import obs
from repro.core.budget import SpaceBudget
from repro.datasets.workloads import dblp_queries
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.data import get_dataset
from repro.experiments.harness import evaluate, paper_methods
from repro.perf.cache import SummaryCache, use_cache

SCALE = 0.05


@pytest.fixture(scope="module")
def dblp():
    return get_dataset("dblp", scale=SCALE)


class TestCounter:
    def test_increments(self):
        counter = obs.Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            obs.Counter("c").inc(-1)

    def test_concurrent_increments_exact(self):
        counter = obs.Counter("c")

        def work():
            for __ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=work) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000


class TestHistogram:
    def test_totals(self):
        histogram = obs.Histogram("h")
        for v in (1.0, 2.0, 3.0):
            histogram.observe(v)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_empty(self):
        histogram = obs.Histogram("h")
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0

    def test_keep_cap_bounds_retention_not_totals(self):
        histogram = obs.Histogram("h", keep=10)
        for i in range(100):
            histogram.observe(float(i))
        assert histogram.count == 100
        assert len(histogram.values) == 10
        assert histogram.values == [float(i) for i in range(10)]

    def test_percentile_nearest_rank(self):
        histogram = obs.Histogram("h")
        for i in range(1, 101):
            histogram.observe(float(i))
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(50) == 51.0

    def test_percentile_range_checked(self):
        with pytest.raises(ValueError):
            obs.Histogram("h").percentile(101)

    def test_concurrent_observations_exact_totals(self):
        histogram = obs.Histogram("h")

        def work():
            for i in range(5_000):
                histogram.observe(float(i))

        threads = [threading.Thread(target=work) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert histogram.count == 20_000
        assert histogram.min == 0.0
        assert histogram.max == 4999.0


class TestTimerAndRegistry:
    def test_timer_records(self):
        registry = obs.MetricsRegistry()
        with registry.timer("t.seconds") as timer:
            pass
        assert timer.elapsed is not None and timer.elapsed >= 0.0
        assert registry.histogram("t.seconds").count == 1

    def test_get_or_create_is_stable(self):
        registry = obs.MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert len(registry) == 2

    def test_snapshot_shape(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["values"] == [1.5]
        json.dumps(snapshot)  # JSON-able by contract

    def test_snapshot_empty_histogram_min_max_none(self):
        registry = obs.MetricsRegistry()
        registry.histogram("h")
        data = registry.snapshot()["histograms"]["h"]
        assert data["min"] is None and data["max"] is None

    def test_merge_adds(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        for registry, amount in ((a, 2), (b, 5)):
            registry.counter("c").inc(amount)
            registry.histogram("h").observe(float(amount))
        a.merge(b)
        assert a.counter("c").value == 7
        assert a.histogram("h").count == 2
        assert a.histogram("h").max == 5.0

    def test_merge_accepts_snapshots_and_is_grouping_independent(self):
        parts = []
        for i in range(4):
            registry = obs.MetricsRegistry()
            registry.counter("c").inc(i + 1)
            registry.histogram("h").observe(float(i))
            parts.append(registry.snapshot())
        merged = obs.merge_snapshots(parts)
        pairwise = obs.merge_snapshots(
            [obs.merge_snapshots(parts[:2]), obs.merge_snapshots(parts[2:])]
        )
        assert merged["counters"] == pairwise["counters"] == {"c": 10}
        assert (
            merged["histograms"]["h"]["count"]
            == pairwise["histograms"]["h"]["count"]
            == 4
        )


class TestTracer:
    def test_nested_spans(self):
        tracer = obs.Tracer()
        with tracer.span("outer", kind="test") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent == "outer"
        assert outer.parent is None
        assert outer.attributes == {"kind": "test"}
        names = [s.name for s in tracer.finished]
        assert names == ["inner", "outer"]
        assert all(s.duration >= 0.0 for s in tracer.finished)

    def test_to_record_is_jsonable(self):
        tracer = obs.Tracer()
        with tracer.span("s", n=3):
            pass
        record = tracer.finished[0].to_record()
        json.dumps(record)
        assert record["name"] == "s"

    def test_bounded(self):
        tracer = obs.Tracer(max_spans=5)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 5
        assert tracer.finished[-1].name == "s9"


class TestTelemetry:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with obs.TelemetrySink(path) as sink:
            sink.emit({"event": "estimate", "value": 1.5})
            sink.emit({"event": "query", "mre": math.inf})
        assert sink.emitted == 2
        records = obs.read_telemetry(path)
        assert records[0] == {"event": "estimate", "value": 1.5}
        assert records[1]["mre"] == math.inf  # Python-JSON flavor

    def test_memory_sink(self):
        sink, buffer = obs.memory_sink()
        sink.emit({"event": "bench"})
        records = obs.read_telemetry(io.StringIO(buffer.getvalue()))
        assert records == [{"event": "bench"}]


class TestObserve:
    def test_disabled_by_default(self):
        assert not obs.enabled()

    def test_swap_and_restore(self):
        registry = obs.MetricsRegistry()
        outer = obs.get_registry()
        with obs.observe(registry=registry) as installed:
            assert installed is registry
            assert obs.get_registry() is registry
            assert obs.enabled()
        assert not obs.enabled()
        assert obs.get_registry() is outer

    def test_force_disable_inside(self):
        with obs.observe():
            with obs.observe(enabled=False):
                assert not obs.enabled()
            assert obs.enabled()

    def test_phase_timer_noop_when_disabled(self):
        timer = obs.phase_timer("PL", "estimate")
        with timer:
            pass
        assert not isinstance(timer, obs.Timer)


class TestEstimatorInstrumentation:
    def test_estimate_records_metrics(self, figure1_tree):
        a, d = figure1_tree
        with obs.observe() as registry:
            result = PLHistogramEstimator(num_buckets=5).estimate(a, d)
        counters = registry.counters()
        assert counters["estimator.PL.calls"] == 1
        assert counters["estimator.PL.num_buckets"] == 5
        assert registry.histogram("estimator.PL.seconds").count == 1
        assert registry.histogram("phase.PL.summary_build.seconds").count > 0
        assert registry.histogram("phase.PL.estimate.seconds").count == 1
        assert result.value >= 0.0

    def test_estimate_identical_with_and_without(self, figure1_tree):
        a, d = figure1_tree
        bare = PLHistogramEstimator(num_buckets=5).estimate(a, d)
        with obs.observe():
            observed = PLHistogramEstimator(num_buckets=5).estimate(a, d)
        assert observed.value == bare.value
        assert observed.details == bare.details

    def test_disabled_records_nothing(self, figure1_tree):
        a, d = figure1_tree
        registry = obs.get_registry()
        before = len(registry)
        PLHistogramEstimator(num_buckets=5).estimate(a, d)
        assert len(registry) == before

    def test_sink_receives_estimate_events(self, figure1_tree):
        a, d = figure1_tree
        sink, buffer = obs.memory_sink()
        with obs.observe(sink=sink):
            PLHistogramEstimator(num_buckets=5).estimate(a, d)
            obs.emit_summary()
        records = obs.read_telemetry(io.StringIO(buffer.getvalue()))
        events = [r["event"] for r in records]
        assert events == ["estimate", "summary"]
        assert records[0]["estimator"] == "PL"
        assert records[0]["seconds"] >= 0.0
        assert records[1]["metrics"]["counters"]["estimator.PL.calls"] == 1


class TestCacheCounters:
    def test_ambient_cache_hits_and_misses(self, figure1_tree):
        a, d = figure1_tree
        cache = SummaryCache()
        with obs.observe() as registry:
            with use_cache(cache):
                for __ in range(3):
                    PLHistogramEstimator(num_buckets=5).estimate(a, d)
        counters = registry.counters()
        stats = cache.stats()
        assert counters["cache.misses"] == stats["misses"] > 0
        assert counters["cache.hits"] == stats["hits"] > 0

    def test_evictions_counted(self):
        cache = SummaryCache(maxsize=1)
        with obs.observe() as registry:
            cache.get_or_build("k1", lambda: "a")
            cache.get_or_build("k2", lambda: "b")
        assert registry.counters()["cache.evictions"] == 1
        assert cache.stats()["evictions"] == 1

    def test_nbytes_tracked(self):
        cache = SummaryCache(maxsize=2)
        cache.get_or_build("k1", lambda: list(range(100)))
        assert cache.stats()["nbytes"] > 0
        cache.clear()
        assert cache.stats()["nbytes"] == 0


class TestHarnessMerge:
    """Worker metric snapshots merge into totals independent of sharding."""

    def _run(self, dblp, workers):
        queries = dblp_queries()[:4]
        methods = paper_methods(SpaceBudget(200))
        with obs.observe() as registry:
            rows = evaluate(
                dblp, queries, methods, runs=2, seed=0, workers=workers
            )
        return rows, registry.snapshot()

    def test_totals_identical_across_worker_counts(self, dblp):
        serial_rows, serial = self._run(dblp, None)
        for workers in (2, 3):
            rows, snapshot = self._run(dblp, workers)
            assert [r.errors for r in rows] == [
                r.errors for r in serial_rows
            ]
            assert snapshot["counters"] == serial["counters"]
            for name, data in serial["histograms"].items():
                assert snapshot["histograms"][name]["count"] == data["count"]

    def test_query_counter_matches_rows(self, dblp):
        rows, snapshot = self._run(dblp, 2)
        assert snapshot["counters"]["harness.queries"] == len(rows)

    def test_query_events_streamed_serial(self, dblp):
        sink, buffer = obs.memory_sink()
        queries = dblp_queries()[:2]
        with obs.observe(sink=sink):
            evaluate(
                dblp, queries, paper_methods(SpaceBudget(200)),
                runs=1, seed=0,
            )
        records = obs.read_telemetry(io.StringIO(buffer.getvalue()))
        query_events = [r for r in records if r["event"] == "query"]
        assert [q["query"] for q in query_events] == [
            q.id for q in queries
        ]


class TestReport:
    def test_render_report_sections(self, figure1_tree):
        a, d = figure1_tree
        sink, buffer = obs.memory_sink()
        with obs.observe(sink=sink):
            PLHistogramEstimator(num_buckets=5).estimate(a, d)
            obs.record_query("Q1", 6, {"PL": 12.5}, {"PL": 5.25})
            obs.emit_summary()
        records = obs.read_telemetry(io.StringIO(buffer.getvalue()))
        report = obs.render_report(records)
        assert "Estimator calls" in report
        assert "PL" in report
        assert "Relative error" in report
        assert "Counters" in report
        assert "Phase timings" in report

    def test_summarize_counts(self):
        records = [
            {"event": "estimate", "estimator": "IM", "seconds": 0.01},
            {"event": "estimate", "estimator": "IM", "seconds": 0.02},
            {"event": "query", "query": "Q", "true_size": 3,
             "errors": {"IM": 1.0}, "estimates": {"IM": 3.0}},
        ]
        summary = obs.summarize_telemetry(records)
        assert len(summary["latencies"]["IM"]) == 2

    def test_render_empty(self):
        assert "no telemetry" in obs.render_report([]).lower()
