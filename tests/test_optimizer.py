"""Tests for repro.optimizer: chain sizes and join-order planning."""

import pytest

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.join import containment_join_size
from repro.optimizer import chain_join_size, optimize, optimize_chain, plan_cost
from repro.optimizer.planner import JoinPlan
from repro.xmltree import parse_xml


class _ExactEstimator:
    """Test double: an 'estimator' that returns the exact join size."""

    name = "EXACT"

    def estimate(self, ancestors, descendants, workspace=None):
        from repro.estimators.base import Estimate

        return Estimate(
            float(containment_join_size(ancestors, descendants)), self.name
        )


def brute_force_chain(node_sets):
    """O(prod |s_i|) chain count for validation."""

    def extend(prefix_element, depth):
        if depth == len(node_sets):
            return 1
        total = 0
        for element in node_sets[depth]:
            if prefix_element is None or prefix_element.is_ancestor_of(
                element
            ):
                total += extend(element, depth + 1)
        return total

    return extend(None, 0)


@pytest.fixture(scope="module")
def paper_doc():
    return parse_xml(
        "<lib>"
        "<paper><appendix><table/><table/></appendix></paper>"
        "<paper><appendix/></paper>"
        "<paper><section><table/></section></paper>"
        "<table/>"
        "</lib>"
    )


class TestChainJoinSize:
    def test_two_sets_equals_containment_join(self, figure1_tree):
        a, d = figure1_tree
        assert chain_join_size([a, d]) == containment_join_size(a, d)

    def test_single_set(self, figure1_tree):
        a, __ = figure1_tree
        assert chain_join_size([a]) == len(a)

    def test_paper_intro_example(self, paper_doc):
        """//paper//appendix//table has exactly 2 matches."""
        sets = [
            paper_doc.node_set(tag) for tag in ("paper", "appendix", "table")
        ]
        assert chain_join_size(sets) == 2
        assert chain_join_size(sets) == brute_force_chain(sets)

    def test_empty_link_breaks_chain(self, paper_doc):
        sets = [
            paper_doc.node_set("paper"),
            paper_doc.node_set("nothing"),
            paper_doc.node_set("table"),
        ]
        assert chain_join_size(sets) == 0

    def test_multiplicities(self):
        # Two nested a's over one d: chain a//a//d counts once per pair.
        a = NodeSet([Element("a", 1, 10), Element("a", 2, 9)])
        d = NodeSet([Element("d", 3, 4)])
        assert chain_join_size([a, a, d]) == 1  # outer->inner->d only
        assert chain_join_size([a, d]) == 2

    def test_against_brute_force_on_dataset(self, xmark_small):
        sets = [
            xmark_small.node_set(tag)
            for tag in ("open_auction", "annotation", "desp")
        ]
        # DP result must match the per-descendant accumulation definition:
        expected = 0
        annotations = sets[1]
        desps = sets[2]
        auctions = sets[0]
        for desp in desps:
            for ann in annotations:
                if not ann.is_ancestor_of(desp):
                    continue
                for auc in auctions:
                    if auc.is_ancestor_of(ann):
                        expected += 1
        assert chain_join_size(sets) == expected

    def test_empty_chain_rejected(self):
        with pytest.raises(EstimationError):
            chain_join_size([])


class TestOptimizeChain:
    def test_picks_smaller_intermediate(self, paper_doc):
        """The intro scenario: join the cheaper pair first."""
        names = ["paper", "appendix", "table"]
        sets = [paper_doc.node_set(tag) for tag in names]
        plan = optimize(sets, _ExactEstimator())
        # |paper ⋈ appendix| = 2, |appendix ⋈ table| = 2: tie; both plans
        # cost the same, so we only require a valid two-join plan.
        assert plan.lo == 0 and plan.hi == 2
        assert not plan.is_leaf

    def test_asymmetric_choice(self, xmark_small):
        """On real data the pair sizes differ; exact costs must justify
        the plan: its cost is minimal among both 3-chain options."""
        sets = [
            xmark_small.node_set(tag)
            for tag in ("open_auction", "annotation", "text")
        ]
        plan = optimize(sets, _ExactEstimator())
        left_first = containment_join_size(sets[0], sets[1])
        right_first = containment_join_size(sets[1], sets[2])
        chosen_first = (
            left_first if plan.left.hi == 1 else right_first
        )
        assert chosen_first == min(left_first, right_first)

    def test_plan_cost_matches_structure(self, xmark_small):
        sets = [
            xmark_small.node_set(tag)
            for tag in ("desp", "parlist", "listitem", "text")
        ]
        plan = optimize(sets, _ExactEstimator())
        # plan_cost sums intermediate sizes excluding the root.
        def collect(node, is_root=True):
            if node.is_leaf:
                return []
            sizes = [] if is_root else [node.estimated_size]
            return (
                sizes + collect(node.left, False) + collect(node.right, False)
            )

        assert plan_cost(plan) == pytest.approx(sum(collect(plan)))

    def test_describe(self):
        leaf_a = JoinPlan(0, 0, 10)
        leaf_b = JoinPlan(1, 1, 20)
        parent = JoinPlan(0, 1, 5, leaf_a, leaf_b)
        assert parent.describe(["x", "y"]) == "(x ⋈ y)"

    def test_too_short_chain_rejected(self, figure1_tree):
        a, __ = figure1_tree
        with pytest.raises(EstimationError):
            optimize([a], _ExactEstimator())

    def test_works_with_sampling_estimator(self, xmark_small):
        sets = [
            xmark_small.node_set(tag)
            for tag in ("open_auction", "bidder", "increase")
        ]
        estimator = IMSamplingEstimator(num_samples=50, seed=3)
        plan = optimize(
            sets, estimator, workspace=xmark_small.tree.workspace()
        )
        assert plan_cost(plan) >= 0.0

    def test_optimize_chain_shim_warns_and_matches(self, xmark_small):
        """The deprecated estimator-argument entry point still works,
        warns, and plans identically to the generator-native path."""
        sets = [
            xmark_small.node_set(tag)
            for tag in ("open_auction", "annotation", "text")
        ]
        workspace = xmark_small.tree.workspace()
        with pytest.warns(DeprecationWarning, match="optimize_chain"):
            legacy = optimize_chain(
                sets, IMSamplingEstimator(num_samples=50, seed=3), workspace
            )
        direct = optimize(
            sets,
            IMSamplingEstimator(num_samples=50, seed=3),
            workspace=workspace,
        )
        assert legacy == direct
