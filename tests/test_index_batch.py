"""Batched probe kernels and multi-trial sampling paths vs references.

Three bit-for-bit contracts from the batched-probe layer:

* the bulk probe kernels (``count_many``, ``stab_count_many``,
  ``start_membership_many``) equal their retained ``*_reference`` loops
  on arbitrary node sets and probe positions;
* ``estimate_trials(A, D, k)`` returns exactly what ``k`` sequential
  ``estimate`` calls would — values, details and the generator state
  left behind — with or without an :class:`~repro.perf.IndexCache`;
* ``estimate_across`` does the same for the harness's
  fresh-instance-per-repetition pattern, and the harness's batched
  evaluation produces the same rows as the sequential reference path.

Plus the :class:`IndexCache` semantics: content-keyed sharing, LRU
eviction, reference-mode bypass and the ``index_cache.*`` obs counters.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs, perf
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.cross_sampling import (
    CrossSamplingEstimator,
    SystematicSamplingEstimator,
)
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.index.stab import (
    StabbingCounter,
    start_membership_many,
    start_membership_many_reference,
)
from repro.index.ttree import TTree
from repro.index.xrtree import XRTree
from repro.perf import IndexCache, resolve_index_cache, use_index_cache
from repro.xmltree.tree import TreeBuilder

TAGS = ("a", "b", "c")


@st.composite
def random_node_sets(draw, max_size=40):
    """A strictly nested node set from a random parent array."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    parents = [-1] + [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, size)
    ]
    tags = [draw(st.sampled_from(TAGS)) for __ in range(size)]
    children: list[list[int]] = [[] for __ in range(size)]
    for child, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(child)
    builder = TreeBuilder()

    def emit(node: int) -> None:
        with builder.element(tags[node]):
            for child in children[node]:
                emit(child)

    emit(0)
    tree = builder.finish()
    tag = draw(st.sampled_from(TAGS))
    return NodeSet(
        [e for e in tree.elements if e.tag == tag], name=tag, validate=False
    )


#: Positions deliberately straddle and overshoot the region codes the
#: strategy can produce (< ~120), and duplicates are allowed — sampling
#: with replacement probes the same position repeatedly.
positions_arrays = st.lists(
    st.integers(min_value=0, max_value=150), max_size=40
).map(lambda raw: np.asarray(raw, dtype=np.int64))

EDGE_CASE_SETS = [
    NodeSet([]),
    NodeSet([Element("a", 1, 2, 0)]),
    NodeSet([Element("a", 1, 100, 0)]),
    NodeSet(
        [
            Element("a", 1, 40, 0),
            Element("a", 2, 9, 1),
            Element("a", 10, 39, 1),
            Element("a", 11, 20, 2),
        ]
    ),
]

EDGE_CASE_POSITIONS = np.array(
    [0, 1, 1, 2, 9, 10, 11, 20, 39, 40, 41, 100, 101, 140], dtype=np.int64
)


def _assert_probe_kernels_agree(node_set: NodeSet, positions: np.ndarray):
    for index in (StabbingCounter(node_set), TTree(node_set)):
        assert np.array_equal(
            index.count_many(positions),
            index.count_many_reference(positions),
        ), type(index).__name__
    xrtree = XRTree(node_set)
    assert np.array_equal(
        xrtree.stab_count_many(positions),
        xrtree.stab_count_many_reference(positions),
    )
    assert np.array_equal(
        start_membership_many(node_set.starts, positions),
        start_membership_many_reference(node_set.starts, positions),
    )


class TestBatchedProbeKernels:
    @given(random_node_sets(), positions_arrays)
    @settings(max_examples=80, deadline=None)
    def test_matches_reference(self, node_set, positions):
        _assert_probe_kernels_agree(node_set, positions)

    @pytest.mark.parametrize("node_set", EDGE_CASE_SETS)
    def test_edge_cases(self, node_set):
        _assert_probe_kernels_agree(node_set, EDGE_CASE_POSITIONS)
        _assert_probe_kernels_agree(
            node_set, np.array([], dtype=np.int64)
        )

    @given(random_node_sets(), positions_arrays)
    @settings(max_examples=40, deadline=None)
    def test_reference_mode_dispatch(self, node_set, positions):
        """Under reference kernels the bulk entry points run the loops."""
        with perf.reference_kernels():
            _assert_probe_kernels_agree(node_set, positions)


#: Every batched sampling estimator, each with the probe backends it
#: supports.  ``TwoSampleEstimator`` is absent by design: its per-trial
#: operand resampling has no batched form.
FACTORIES = [
    ("IM-rank", lambda s: IMSamplingEstimator(num_samples=7, seed=s)),
    (
        "IM-ttree",
        lambda s: IMSamplingEstimator(num_samples=7, seed=s, backend="ttree"),
    ),
    (
        "IM-xrtree",
        lambda s: IMSamplingEstimator(
            num_samples=7, seed=s, backend="xrtree"
        ),
    ),
    (
        "IM-replace",
        lambda s: IMSamplingEstimator(num_samples=7, seed=s, replace=True),
    ),
    ("PM-rank", lambda s: PMSamplingEstimator(num_samples=7, seed=s)),
    (
        "PM-ttree",
        lambda s: PMSamplingEstimator(num_samples=7, seed=s, backend="ttree"),
    ),
    ("CROSS", lambda s: CrossSamplingEstimator(num_samples=7, seed=s)),
    ("SYS", lambda s: SystematicSamplingEstimator(num_samples=3, seed=s)),
    ("SEMI-D", lambda s: SemijoinDescendantsEstimator(num_samples=5, seed=s)),
    ("SEMI-A", lambda s: SemijoinAncestorsEstimator(num_samples=5, seed=s)),
    ("BIFOCAL", lambda s: BifocalEstimator(num_samples=6, seed=s)),
    (
        "BIFOCAL-t3",
        lambda s: BifocalEstimator(num_samples=6, seed=s, threshold=3),
    ),
]
FACTORY_IDS = [label for label, __ in FACTORIES]


def _assert_same_estimates(results, expected):
    assert [r.value for r in results] == [e.value for e in expected]
    assert [r.details for r in results] == [e.details for e in expected]


class TestEstimateTrials:
    @pytest.mark.parametrize(
        "factory", [f for __, f in FACTORIES], ids=FACTORY_IDS
    )
    @given(
        ancestors=random_node_sets(max_size=25),
        descendants=random_node_sets(max_size=25),
        trials=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_sequential(
        self, factory, ancestors, descendants, trials, seed
    ):
        sequential = factory(seed)
        expected = [
            sequential.estimate(ancestors, descendants)
            for __ in range(trials)
        ]
        batched = factory(seed)
        results = batched.estimate_trials(ancestors, descendants, trials)
        _assert_same_estimates(results, expected)
        assert (
            batched._rng.bit_generator.state
            == sequential._rng.bit_generator.state
        )
        # The index cache must not change a single bit either.
        cached = factory(seed)
        with use_index_cache(IndexCache()):
            cached_results = cached.estimate_trials(
                ancestors, descendants, trials
            )
        _assert_same_estimates(cached_results, expected)

    def test_zero_trials(self):
        estimator = IMSamplingEstimator(num_samples=3, seed=0)
        some = NodeSet([Element("a", 1, 4)])
        assert estimator.estimate_trials(some, some, 0) == []

    def test_negative_trials_rejected(self):
        estimator = IMSamplingEstimator(num_samples=3, seed=0)
        some = NodeSet([Element("a", 1, 4)])
        with pytest.raises(EstimationError):
            estimator.estimate_trials(some, some, -1)

    def test_empty_operands_draw_nothing(self):
        estimator = PMSamplingEstimator(num_samples=3, seed=0)
        before = estimator._rng.bit_generator.state
        results = estimator.estimate_trials(
            NodeSet([]), NodeSet([Element("a", 1, 4)]), 3
        )
        assert [r.value for r in results] == [0.0, 0.0, 0.0]
        assert estimator._rng.bit_generator.state == before


class TestEstimateAcross:
    @pytest.mark.parametrize(
        "factory", [f for __, f in FACTORIES], ids=FACTORY_IDS
    )
    @given(
        ancestors=random_node_sets(max_size=25),
        descendants=random_node_sets(max_size=25),
        instances=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_fresh_instances(
        self, factory, ancestors, descendants, instances, seed
    ):
        solo = [factory(seed + i) for i in range(instances)]
        expected = [e.estimate(ancestors, descendants) for e in solo]
        batch = [factory(seed + i) for i in range(instances)]
        results = type(batch[0]).estimate_across(
            batch, ancestors, descendants
        )
        _assert_same_estimates(results, expected)
        for batched, sequential in zip(batch, solo):
            assert (
                batched._rng.bit_generator.state
                == sequential._rng.bit_generator.state
            )

    def test_empty_estimator_list(self):
        some = NodeSet([Element("a", 1, 4)])
        assert IMSamplingEstimator.estimate_across([], some, some) == []

    def test_rejects_mixed_configuration(self):
        some = NodeSet([Element("a", 1, 4)])
        mixed = [
            IMSamplingEstimator(num_samples=5, seed=0),
            IMSamplingEstimator(num_samples=6, seed=1),
        ]
        with pytest.raises(EstimationError):
            IMSamplingEstimator.estimate_across(mixed, some, some)

    def test_rejects_mixed_backends(self):
        some = NodeSet([Element("a", 1, 4)])
        mixed = [
            IMSamplingEstimator(num_samples=5, seed=0, backend="rank"),
            IMSamplingEstimator(num_samples=5, seed=1, backend="ttree"),
        ]
        with pytest.raises(EstimationError):
            IMSamplingEstimator.estimate_across(mixed, some, some)


@pytest.fixture(scope="module")
def xmark_operands():
    from repro.datasets import generate_xmark
    from repro.join import containment_join_size

    dataset = generate_xmark(scale=0.05, seed=101)
    a = dataset.node_set("desp")
    d = dataset.node_set("text")
    return (
        dataset,
        a,
        d,
        dataset.tree.workspace(),
        containment_join_size(a, d),
    )


class TestHarnessBatching:
    def test_batched_rows_equal_sequential_rows(self, xmark_operands):
        """evaluate() under the default batched path must reproduce the
        reference path (sequential per-call estimates) row for row."""
        from repro.datasets.workloads import Query
        from repro.experiments.harness import MethodSpec, evaluate

        dataset, *_ = xmark_operands
        queries = [Query("q1", "desp", "text"), Query("q2", "kwd", "desp")]
        methods = [
            MethodSpec(
                "IM",
                lambda seed: IMSamplingEstimator(num_samples=20, seed=seed),
            ),
            MethodSpec(
                "PM",
                lambda seed: PMSamplingEstimator(num_samples=20, seed=seed),
            ),
        ]
        batched = evaluate(dataset, queries, methods, runs=4, seed=5)
        with perf.reference_kernels():
            sequential = evaluate(dataset, queries, methods, runs=4, seed=5)
        assert [(r.errors, r.estimates) for r in batched] == [
            (r.errors, r.estimates) for r in sequential
        ]

    def test_unbiased_through_batched_path(self, xmark_operands):
        """Theorem 3 survives batching: E[X̂] = X over many trials."""
        __, a, d, workspace, true = xmark_operands
        estimator = IMSamplingEstimator(num_samples=40, seed=7)
        results = estimator.estimate_trials(a, d, 300, workspace)
        mean = statistics.fmean(r.value for r in results)
        assert abs(mean - true) / true < 0.05


class TestIndexCache:
    def test_content_keyed_sharing(self, xmark_operands):
        __, a, *_ = xmark_operands
        cache = IndexCache()
        first = cache.stabbing_counter(a)
        assert cache.stabbing_counter(a) is first
        # A different NodeSet object with identical content hits too.
        clone = NodeSet(list(a), name=a.name)
        assert cache.stabbing_counter(clone) is first
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 1

    def test_distinct_structures_distinct_entries(self, xmark_operands):
        __, a, *_ = xmark_operands
        cache = IndexCache()
        cache.stabbing_counter(a)
        cache.ttree(a)
        cache.xrtree(a)
        cache.start_index(a)
        assert len(cache) == 4
        assert cache.stats()["nbytes"] > 0

    def test_lru_eviction(self, xmark_operands):
        __, a, d, *_ = xmark_operands
        cache = IndexCache(maxsize=1)
        cache.stabbing_counter(a)
        cache.stabbing_counter(d)
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 1

    def test_reference_mode_disables_resolution(self):
        cache = IndexCache()
        with use_index_cache(cache):
            assert resolve_index_cache(None) is cache
            with perf.reference_kernels():
                assert resolve_index_cache(None) is None
                assert resolve_index_cache(cache) is None
        assert resolve_index_cache(None) is None

    def test_explicit_cache_beats_ambient(self):
        ambient, explicit = IndexCache(), IndexCache()
        with use_index_cache(ambient):
            assert resolve_index_cache(explicit) is explicit

    def test_empty_ambient_cache_still_resolves(self):
        """An empty cache is falsy (``__len__``); resolution must not
        drop it."""
        cache = IndexCache()
        assert len(cache) == 0
        with use_index_cache(cache):
            assert resolve_index_cache(None) is cache

    def test_obs_counters(self, xmark_operands):
        __, a, *_ = xmark_operands
        with obs.observe(registry=obs.MetricsRegistry()) as registry:
            cache = IndexCache()
            cache.ttree(a)
            cache.ttree(a)
        counters = registry.counters()
        assert counters["index_cache.misses"] == 1
        assert counters["index_cache.hits"] == 1
        assert counters["index_cache.built_nbytes"] > 0
        # The summary cache keeps its own namespace.
        assert "cache.misses" not in counters

    def test_estimators_populate_ambient_cache(self, xmark_operands):
        __, a, d, workspace, __true = xmark_operands
        cache = IndexCache()
        with use_index_cache(cache):
            IMSamplingEstimator(num_samples=10, seed=0).estimate_trials(
                a, d, 3, workspace
            )
            PMSamplingEstimator(num_samples=10, seed=0).estimate_trials(
                a, d, 3, workspace
            )
        stats = cache.stats()
        # Two builds: the ancestor operand arena and the stab-count
        # table (IM's table gather).  PM's rank backend reuses the
        # arena, and its vectorized start-membership kernel needs no
        # descendant-side index at all.
        assert stats["misses"] == 2
        assert stats["hits"] >= 1
