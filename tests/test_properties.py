"""Property-based tests (hypothesis) for the core invariants.

Random region-coded trees are generated from random parent arrays, which
cover arbitrary shapes: chains, stars, bushy trees, recursive tag nesting.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.bifocal import BifocalEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.index.bplus import BPlusTree
from repro.index.stab import StabbingCounter
from repro.index.ttree import TTree
from repro.index.xrtree import XRTree
from repro.join import (
    containment_join_size,
    merge_join,
    nested_loop_join,
    stack_tree_join,
)
from repro.models import (
    covering_table,
    inner_product_size,
    point_view,
    stabbing_pairs_count,
    start_table,
    turning_points,
)
from repro.xmltree import parse_xml, to_xml
from repro.xmltree.tree import DataTree, TreeBuilder

TAGS = ("a", "b", "c")


@st.composite
def random_trees(draw, max_size=60):
    """A random DataTree built from a random parent array."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    parents = [-1] + [
        draw(st.integers(min_value=0, max_value=i - 1))
        for i in range(1, size)
    ]
    tags = [draw(st.sampled_from(TAGS)) for __ in range(size)]
    children: list[list[int]] = [[] for __ in range(size)]
    for child, parent in enumerate(parents):
        if parent >= 0:
            children[parent].append(child)
    builder = TreeBuilder()

    def emit(node: int) -> None:
        with builder.element(tags[node]):
            for child in children[node]:
                emit(child)

    emit(0)
    return builder.finish()


def brute_join_size(a: NodeSet, d: NodeSet) -> int:
    return sum(
        1 for x in a for y in d if x.start < y.start < x.end
    )


class TestRegionCodeInvariants:
    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_codes_distinct_and_nested(self, tree: DataTree):
        codes: set[int] = set()
        for element in tree.elements:
            assert element.start < element.end
            assert element.start not in codes
            assert element.end not in codes
            codes.update((element.start, element.end))
        # Strict nesting across the whole tree.
        elements = sorted(tree.elements, key=lambda e: e.start)
        open_ends: list[int] = []
        for element in elements:
            while open_ends and open_ends[-1] < element.start:
                open_ends.pop()
            if open_ends:
                assert element.end < open_ends[-1]
            open_ends.append(element.end)

    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_parent_encloses_child(self, tree: DataTree):
        for index in range(tree.size):
            parent = tree.parent_index(index)
            if parent >= 0:
                assert tree.element(parent).region.contains(
                    tree.element(index).region
                )

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_node_set_validation_accepts_generated_sets(self, tree):
        for tag in TAGS:
            NodeSet(tree.node_set(tag).elements, validate=True)


class TestJoinEquivalences:
    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_all_join_algorithms_agree(self, tree: DataTree):
        a = tree.node_set("a")
        d = tree.node_set("b")
        expected = brute_join_size(a, d)
        assert containment_join_size(a, d) == expected
        assert len(nested_loop_join(a, d)) == expected
        assert len(merge_join(a, d)) == expected
        assert len(stack_tree_join(a, d)) == expected

    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_theorem1(self, tree: DataTree):
        """Interval model: join size == stabbing (interval, point) pairs."""
        a = tree.node_set("a")
        d = tree.node_set("b")
        assert stabbing_pairs_count(a, point_view(d)) == brute_join_size(a, d)

    @given(random_trees())
    @settings(max_examples=60, deadline=None)
    def test_theorem2(self, tree: DataTree):
        """Position model: join size == inner product of PMA and PMD."""
        a = tree.node_set("a")
        d = tree.node_set("b")
        workspace = tree.workspace()
        assert inner_product_size(
            covering_table(a, workspace), start_table(d, workspace)
        ) == brute_join_size(a, d)

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_descendant_join_bounded_by_height(self, tree: DataTree):
        """Feature 3(b) of Section 3.1: each d joins <= H ancestors."""
        a = tree.node_set("a")
        height = tree.height
        for d in tree.node_set("b"):
            assert a.stab_count(d.start) <= height


class TestIndexEquivalences:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_stab_backends_agree(self, tree: DataTree):
        a = tree.node_set("a")
        counter = StabbingCounter(a)
        ttree = TTree(a)
        xrtree = XRTree(a, page_size=3)
        xrtree.validate()
        workspace = tree.workspace()
        for position in range(workspace.lo - 1, workspace.hi + 2):
            expected = sum(
                1 for e in a if e.start <= position <= e.end
            )
            assert counter.count(position) == expected
            assert ttree.count(position) == expected
            assert xrtree.stab_count(position) == expected

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_turning_points_reconstruct_pma(self, tree: DataTree):
        a = tree.node_set("a")
        workspace = tree.workspace()
        dense = covering_table(a, workspace)
        sparse = dict(turning_points(a))
        value = 0
        for offset, position in enumerate(workspace.positions()):
            value = sparse.get(position, value)
            assert value == dense[offset]


class TestBPlusTreeModel:
    @given(
        st.lists(
            st.integers(min_value=-10**6, max_value=10**6),
            min_size=0,
            max_size=200,
        ),
        st.integers(min_value=3, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_against_dict_model(self, keys, order):
        tree = BPlusTree(order=order)
        model: dict[int, int] = {}
        for i, key in enumerate(keys):
            tree.insert(key, i)
            model[key] = i
        tree.validate()
        assert len(tree) == len(model)
        assert list(tree.items()) == sorted(model.items())
        for probe in keys[:20]:
            assert tree.get(probe) == model[probe]
        sorted_keys = sorted(model)
        for probe in list(model)[:20]:
            expected_floor = max(
                (k for k in sorted_keys if k <= probe + 1), default=None
            )
            got = tree.floor_entry(probe + 1)
            if expected_floor is None:
                assert got is None
            else:
                assert got == (expected_floor, model[expected_floor])

    @given(
        st.sets(
            st.integers(min_value=0, max_value=10**5),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_equals_insertion(self, key_set):
        items = [(k, -k) for k in sorted(key_set)]
        bulk = BPlusTree.bulk_load(items, order=8)
        incremental = BPlusTree(order=8)
        for key, value in items:
            incremental.insert(key, value)
        bulk.validate()
        incremental.validate()
        assert list(bulk.items()) == list(incremental.items())


class TestEstimatorSanity:
    @given(random_trees(), st.integers(min_value=1, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_im_full_sample_exact(self, tree: DataTree, extra):
        """IM-DA-Est with m >= |D| must return the exact size."""
        a = tree.node_set("a")
        d = tree.node_set("b")
        if len(a) == 0 or len(d) == 0:
            return
        estimator = IMSamplingEstimator(num_samples=len(d) + extra, seed=0)
        assert estimator.estimate(a, d, tree.workspace()).value == (
            brute_join_size(a, d)
        )

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_bifocal_threshold_one_exact(self, tree: DataTree):
        """With τ=1 the bifocal dense part covers everything: exact."""
        a = tree.node_set("a")
        d = tree.node_set("b")
        if len(a) == 0 or len(d) == 0:
            return
        estimator = BifocalEstimator(num_samples=1, seed=0, threshold=1)
        assert estimator.estimate(a, d, tree.workspace()).value == (
            brute_join_size(a, d)
        )

    @given(random_trees(), st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_pl_estimate_non_negative_finite(self, tree: DataTree, buckets):
        a = tree.node_set("a")
        d = tree.node_set("b")
        estimate = PLHistogramEstimator(num_buckets=buckets).estimate(
            a, d, tree.workspace()
        )
        assert estimate.value >= 0.0
        assert np.isfinite(estimate.value)

    @given(random_trees())
    @settings(max_examples=30, deadline=None)
    def test_pl_single_bucket_closed_form(self, tree: DataTree):
        """One bucket: estimate == l̄/w · n(A) · n(D) exactly."""
        a = tree.node_set("a")
        d = tree.node_set("b")
        if len(a) == 0 or len(d) == 0:
            return
        workspace = tree.workspace()
        estimate = PLHistogramEstimator(num_buckets=1).estimate(
            a, d, workspace
        )
        expected = a.average_length / workspace.width * len(a) * len(d)
        assert abs(estimate.value - expected) < 1e-9 * max(1.0, expected)


class TestRoundTrips:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_xml_serialization_round_trip(self, tree: DataTree):
        reparsed = parse_xml(to_xml(tree))
        assert [
            (e.tag, e.start, e.end, e.level) for e in reparsed.elements
        ] == [(e.tag, e.start, e.end, e.level) for e in tree.elements]

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_workspace_bucketing_covers_all_starts(self, tree: DataTree):
        workspace = tree.workspace()
        for count in (1, 2, 7):
            buckets = workspace.buckets(count)
            for element in tree.elements:
                index = workspace.bucket_of(element.start, count)
                assert buckets[index].wss <= element.start < (
                    buckets[index].wse + 1e-9
                )
