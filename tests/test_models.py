"""Tests for repro.models: Theorems 1 and 2 and the model tables."""

import numpy as np
import pytest

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.join import containment_join_size
from repro.models import (
    covering_table,
    inner_product_size,
    interval_view,
    point_view,
    stabbing_pairs_count,
    start_table,
    turning_points,
)


class TestIntervalModel:
    def test_views(self, figure1_tree):
        a, d = figure1_tree
        assert interval_view(a) == [(1, 22), (2, 7), (18, 21)]
        assert point_view(d).tolist() == [3, 9, 11, 19]

    def test_theorem1_on_figure1(self, figure1_tree):
        """Theorem 1: join size == stabbing (interval, point) pairs."""
        a, d = figure1_tree
        assert stabbing_pairs_count(a, point_view(d)) == 6

    def test_theorem1_accepts_raw_intervals(self, figure1_tree):
        a, d = figure1_tree
        assert stabbing_pairs_count(interval_view(a), point_view(d)) == 6

    def test_theorem1_empty(self):
        assert stabbing_pairs_count(NodeSet([]), np.array([])) == 0
        assert stabbing_pairs_count(NodeSet([]), np.array([1, 2])) == 0

    @pytest.mark.parametrize("dataset_fixture", ["xmark_small", "dblp_small"])
    def test_theorem1_on_datasets(self, dataset_fixture, request):
        dataset = request.getfixturevalue(dataset_fixture)
        workload = {
            "xmark_small": [("desp", "parlist"), ("item", "mailbox")],
            "dblp_small": [("inproceeding", "author"), ("cite", "label")],
        }[dataset_fixture]
        for anc, desc in workload:
            a = dataset.node_set(anc)
            d = dataset.node_set(desc)
            assert stabbing_pairs_count(a, point_view(d)) == (
                containment_join_size(a, d)
            )


class TestPositionModel:
    def test_figure1_tables(self, figure1_tree):
        """The PMA/PMD columns printed in Figure 1(c)."""
        a, d = figure1_tree
        workspace = Workspace(1, 22)
        pma = covering_table(a, workspace)
        pmd = start_table(d, workspace)
        expected_pma = [1, 2, 2, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
                        2, 2, 2, 2, 1]
        expected_pmd = [0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0,
                        0, 1, 0, 0, 0]
        assert pma.tolist() == expected_pma
        assert pmd.tolist() == expected_pmd

    def test_theorem2_on_figure1(self, figure1_tree):
        """Theorem 2: join size == inner product of PMA(A) and PMD(D)."""
        a, d = figure1_tree
        workspace = Workspace(1, 22)
        assert (
            inner_product_size(
                covering_table(a, workspace), start_table(d, workspace)
            )
            == 6
        )

    def test_theorem2_on_dataset(self, dblp_small):
        workspace = dblp_small.tree.workspace()
        for anc, desc in [("inproceeding", "author"), ("title", "sup")]:
            a = dblp_small.node_set(anc)
            d = dblp_small.node_set(desc)
            assert inner_product_size(
                covering_table(a, workspace), start_table(d, workspace)
            ) == containment_join_size(a, d)

    def test_inner_product_shape_mismatch(self):
        with pytest.raises(ValueError):
            inner_product_size(np.zeros(3), np.zeros(4))

    def test_covering_table_clips_to_workspace(self):
        ns = NodeSet([Element("a", 1, 10)])
        table = covering_table(ns, Workspace(4, 6))
        assert table.tolist() == [1, 1, 1]

    def test_start_table_is_binary(self, figure1_tree):
        __, d = figure1_tree
        table = start_table(d, Workspace(1, 22))
        assert set(table.tolist()) <= {0, 1}
        assert table.sum() == len(d)

    def test_start_table_outside_workspace_dropped(self):
        ns = NodeSet([Element("a", 1, 2), Element("b", 5, 6)])
        table = start_table(ns, Workspace(4, 8))
        assert table.tolist() == [0, 1, 0, 0, 0]


class TestTurningPoints:
    def test_figure4_turning_points(self, figure1_tree):
        """Figure 4's T-tree keys for the example's ancestor set."""
        a, __ = figure1_tree
        points = turning_points(a)
        # The figure lists (1,1),(2,2),(8,1),(18,2),(22,1); after position
        # 22 everything is closed, adding the final (23, 0).
        assert points == [(1, 1), (2, 2), (8, 1), (18, 2), (22, 1), (23, 0)]

    def test_turning_points_match_dense_table(self, figure1_tree):
        a, __ = figure1_tree
        workspace = Workspace(1, 22)
        dense = covering_table(a, workspace)
        points = dict(turning_points(a))
        value = 0
        for offset, position in enumerate(workspace.positions()):
            value = points.get(position, value)
            assert value == dense[offset]

    def test_turning_points_bounded_by_2n(self, xmark_small):
        for tag in ("item", "parlist", "text"):
            node_set = xmark_small.node_set(tag)
            assert len(turning_points(node_set)) <= 2 * len(node_set)

    def test_turning_points_empty(self):
        assert turning_points(NodeSet([])) == []

    def test_adjacent_regions_merge_events(self):
        # (1,4) and (5,8): position 5 opens exactly when 4 closes (+1 at 5,
        # -1 at 5) so there is no turning point at 5.
        ns = NodeSet([Element("a", 1, 4), Element("b", 5, 8)])
        assert turning_points(ns) == [(1, 1), (9, 0)]
