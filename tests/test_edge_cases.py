"""Edge-case battery across modules: extremes, degenerate inputs, limits."""

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators import make_estimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.join import containment_join_size
from repro.xmltree import parse_xml, to_xml
from repro.xmltree.tree import DataTree, TreeBuilder


class TestExtremePositions:
    def test_huge_codes(self):
        base = 2**40
        a = NodeSet([Element("a", base + 1, base + 100)])
        d = NodeSet([Element("d", base + 10, base + 11)])
        assert containment_join_size(a, d) == 1
        assert a.stab_count(base + 50) == 1

    def test_minimal_workspace(self):
        workspace = Workspace(5, 5)
        assert workspace.width == 1
        buckets = workspace.buckets(1)
        assert buckets[0].width == pytest.approx(1.0)
        assert workspace.bucket_of(5, 1) == 0

    def test_more_buckets_than_positions(self):
        workspace = Workspace(1, 4)
        a = NodeSet([Element("a", 1, 4)])
        d = NodeSet([Element("d", 2, 3)])
        estimate = PLHistogramEstimator(num_buckets=50).estimate(
            a, d, workspace
        )
        assert estimate.value >= 0.0

    def test_single_cell_ph(self):
        a = NodeSet([Element("a", 1, 10)])
        d = NodeSet([Element("d", 3, 4)])
        estimate = PHHistogramEstimator(
            num_cells=1, overlap_known=False
        ).estimate(a, d, Workspace(1, 10))
        assert estimate.value >= 0.0


class TestDegenerateOperands:
    def test_single_descendant_sampling(self):
        a = NodeSet([Element("a", 1, 10)])
        d = NodeSet([Element("d", 4, 5)])
        estimator = IMSamplingEstimator(num_samples=100, seed=0)
        assert estimator.estimate(a, d).value == 1.0

    def test_identical_operand_sets(self):
        """Self-join of a recursive tag: a // a."""
        tree = parse_xml("<a><a><a/></a></a>")
        a = tree.node_set("a")
        # outer contains middle+inner, middle contains inner: 3 pairs.
        assert containment_join_size(a, a) == 3

    def test_every_registry_estimator_with_minimal_config(
        self, figure1_tree
    ):
        """Every estimator runs at its smallest sensible configuration."""
        a, d = figure1_tree
        workspace = Workspace(1, 22)
        minimal = {
            "PL": {"num_buckets": 1},
            "PH": {"num_cells": 1},
            "IM": {"num_samples": 1, "seed": 0},
            "PM": {"num_samples": 1, "seed": 0},
            "COV": {"num_buckets": 1},
            "CROSS": {"num_samples": 1, "seed": 0},
            "SYS": {"num_samples": 1, "seed": 0},
            "BIFOCAL": {"num_samples": 1, "seed": 0},
            "SKETCH": {"num_counters": 1, "depth": 1, "seed": 0},
            "WAVELET": {"num_coefficients": 1},
            "SEMI-D": {"num_samples": 1, "seed": 0},
            "SEMI-A": {"num_samples": 1, "seed": 0},
            "2SAMPLE": {"num_samples": 1, "seed": 0},
            "HYBRID": {"num_buckets": 1, "num_samples": 1, "seed": 0},
        }
        for name, kwargs in minimal.items():
            estimate = make_estimator(name, **kwargs).estimate(
                a, d, workspace
            )
            assert estimate.value >= 0.0, name

    def test_budget_smaller_than_one_pl_bucket(self):
        with pytest.raises(Exception):
            SpaceBudget(4)


class TestDeepDocuments:
    def test_deep_chain_round_trip(self):
        depth = 400
        builder = TreeBuilder()
        for __ in range(depth):
            builder.open("deep")
        for __ in range(depth):
            builder.close()
        tree = builder.finish()
        assert tree.height == depth
        reparsed = parse_xml(to_xml(tree, indent=0))
        assert reparsed.height == depth
        assert reparsed.size == depth

    def test_deep_chain_joins(self):
        depth = 300
        spec = ("a", [])
        for __ in range(depth - 1):
            spec = ("a", [spec])
        tree = DataTree.from_nested(spec)
        a = tree.node_set("a")
        assert containment_join_size(a, a) == depth * (depth - 1) // 2
        assert a.max_nesting_depth == depth

    def test_wide_document(self):
        builder = TreeBuilder()
        with builder.element("root"):
            for __ in range(5000):
                builder.leaf("leaf")
        tree = builder.finish()
        assert tree.size == 5001
        leaves = tree.node_set("leaf")
        root = tree.node_set("root")
        assert containment_join_size(root, leaves) == 5000
        estimate = IMSamplingEstimator(num_samples=50, seed=1).estimate(
            root, leaves, tree.workspace()
        )
        assert estimate.value == 5000.0  # every leaf has exactly 1 ancestor


class TestWorkspaceMismatch:
    def test_operands_outside_declared_workspace(self):
        """A tight explicit workspace simply truncates histogram views;
        estimators must not crash."""
        a = NodeSet([Element("a", 1, 100)])
        d = NodeSet([Element("d", 50, 51)])
        narrow = Workspace(40, 60)
        estimate = PLHistogramEstimator(num_buckets=4).estimate(
            a, d, narrow
        )
        assert estimate.value >= 0.0

    def test_workspace_much_larger_than_data(self):
        a = NodeSet([Element("a", 500, 510)])
        d = NodeSet([Element("d", 505, 506)])
        wide = Workspace(1, 10**6)
        estimate = PLHistogramEstimator(num_buckets=10).estimate(a, d, wide)
        assert estimate.value >= 0.0
        sampled = IMSamplingEstimator(num_samples=10, seed=0).estimate(
            a, d, wide
        )
        assert sampled.value == 1.0
