"""Tests for word-granularity region coding (builder, parser, generators)."""

import pytest

from repro.core.errors import ReproError
from repro.datasets import generate_dblp, generate_xmach, generate_xmark
from repro.xmltree import parse_xml
from repro.xmltree.tree import TreeBuilder


class TestBuilderAdvance:
    def test_advance_widens_enclosing_region(self):
        builder = TreeBuilder()
        with builder.element("a"):
            builder.advance(5)
        tree = builder.finish()
        assert (tree.root.start, tree.root.end) == (1, 7)

    def test_advance_zero_noop(self):
        builder = TreeBuilder()
        with builder.element("a"):
            builder.advance(0)
        tree = builder.finish()
        assert (tree.root.start, tree.root.end) == (1, 2)

    def test_negative_advance_rejected(self):
        builder = TreeBuilder()
        builder.open("a")
        with pytest.raises(ReproError):
            builder.advance(-1)

    def test_advance_after_finish_rejected(self):
        builder = TreeBuilder()
        builder.leaf("a")
        builder.finish()
        with pytest.raises(ReproError):
            builder.advance(1)

    def test_leaf_with_words(self):
        builder = TreeBuilder()
        with builder.element("a"):
            builder.leaf("b", words=3)
            builder.leaf("c")
        tree = builder.finish()
        b = tree.element(1)
        c = tree.element(2)
        assert (b.start, b.end) == (2, 6)  # 3 words inside
        assert (c.start, c.end) == (7, 8)

    def test_codes_stay_distinct_and_nested(self):
        builder = TreeBuilder()
        with builder.element("a"):
            builder.advance(2)
            with builder.element("b"):
                builder.advance(4)
            builder.advance(1)
        tree = builder.finish()
        a, b = tree.elements
        assert a.region.contains(b.region)
        assert len({a.start, a.end, b.start, b.end}) == 4


class TestParserWordCounting:
    def test_words_consume_positions(self):
        tree = parse_xml("<a>three little words<b/></a>", count_words=True)
        a, b = tree.elements
        assert (b.start, b.end) == (5, 6)  # 1 + open + 3 words
        assert (a.start, a.end) == (1, 7)

    def test_default_ignores_words(self):
        tree = parse_xml("<a>three little words<b/></a>")
        assert (tree.elements[1].start, tree.elements[1].end) == (2, 3)

    def test_whitespace_only_text_is_zero_words(self):
        with_ws = parse_xml("<a>\n   \t <b/></a>", count_words=True)
        without = parse_xml("<a><b/></a>", count_words=True)
        assert [(e.start, e.end) for e in with_ws.elements] == [
            (e.start, e.end) for e in without.elements
        ]

    def test_mixed_content(self):
        tree = parse_xml("<a>pre <b>in</b> post</a>", count_words=True)
        a, b = tree.elements
        assert (b.start, b.end) == (3, 5)  # "pre" then open, "in" inside
        assert (a.start, a.end) == (1, 7)  # "post" before close


class TestGeneratorsWordContent:
    @pytest.mark.parametrize(
        "generator", [generate_xmark, generate_dblp, generate_xmach]
    )
    def test_workspace_grows_with_words(self, generator):
        plain = generator(scale=0.02, seed=7)
        wordy = generator(scale=0.02, seed=7, word_content=True)
        assert wordy.tree.workspace().width > 1.5 * (
            plain.tree.workspace().width
        )

    @pytest.mark.parametrize(
        "generator", [generate_xmark, generate_dblp, generate_xmach]
    )
    def test_calibration_unaffected(self, generator):
        """Word content widens regions but the Table 2 calibration — and
        the overlap properties — must survive.  (Counts are compared to
        the scaled paper targets, not across modes: word draws interleave
        with structure draws, so the two modes are different random
        documents.)"""
        plain = generator(scale=0.05, seed=7)
        wordy = generator(scale=0.05, seed=7, word_content=True)
        plain_overlap = {
            s.predicate: s.has_overlap for s in plain.statistics()
        }
        for stats in wordy.statistics():
            target = stats.paper_count * 0.05
            if target >= 50:
                assert abs(stats.count - target) / target < 0.5, (
                    stats.predicate
                )
            assert stats.has_overlap == plain_overlap[stats.predicate]

    def test_region_codes_remain_valid(self):
        dataset = generate_dblp(scale=0.02, seed=3, word_content=True)
        codes: set[int] = set()
        for element in dataset.tree.elements:
            assert element.start < element.end
            assert element.start not in codes
            assert element.end not in codes
            codes.update((element.start, element.end))

    def test_join_sizes_unchanged_by_coding(self):
        """The coding granularity must not change any join result."""
        from repro.join import containment_join_size

        wordy = generate_dblp(scale=0.05, seed=11, word_content=True)
        plain_equivalent = generate_dblp(scale=0.05, seed=11)
        # Counts differ slightly (different rng streams), but structure
        # invariants hold: every label sits in exactly one cite.
        for dataset in (wordy, plain_equivalent):
            cites = dataset.node_set("cite")
            labels = dataset.node_set("label")
            assert containment_join_size(cites, labels) == len(labels)

    def test_table4_word_coding_tracks_paper(self):
        """Word-granularity cov values land nearer the paper's Table 4
        for the text-heavy queries."""
        from repro.experiments.tables import PAPER_TABLE4, average_cov_table

        element_cov = dict(average_cov_table("dblp", 20, 0.3))
        word_cov = dict(
            average_cov_table("dblp", 20, 0.3, word_content=True)
        )
        for query_id in ("Q1", "Q2", "Q3", "Q6"):
            paper = PAPER_TABLE4[query_id]
            assert abs(word_cov[query_id] - paper) <= abs(
                element_cov[query_id] - paper
            ) + 0.02, query_id
