"""Tests for repro.estimators.pl_histogram."""

import math

import pytest

from repro.core.budget import SpaceBudget
from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.pl_histogram import PLHistogram, PLHistogramEstimator
from repro.join import containment_join_size


def uniform_case(num_ancestors=10, spacing=20, length=10, point_step=2):
    """Equal-length, evenly spaced ancestors; descendants uniform overall.

    Descendant points are placed on a regular grid across the *whole*
    workspace (independent of ancestor positions), so both PL assumptions
    — independence and per-bucket uniformity of D — hold up to
    discreteness, and Equation 1 must come close to the exact size.  Only
    the start position of a descendant matters to the join, so descendant
    regions are synthetic unit intervals (validation is skipped).
    """
    ancestors = [
        Element("a", 1 + i * spacing, 1 + i * spacing + length)
        for i in range(num_ancestors)
    ]
    hi = 1 + (num_ancestors - 1) * spacing + length
    d_set = NodeSet(
        [Element("d", p, p + 1) for p in range(1, hi + 1, point_step)],
        validate=False,
    )
    return NodeSet(ancestors, validate=False), d_set


class TestConstruction:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            PLHistogramEstimator()
        with pytest.raises(EstimationError):
            PLHistogramEstimator(num_buckets=5, budget=SpaceBudget(200))

    def test_budget_conversion(self):
        assert PLHistogramEstimator(budget=SpaceBudget(200)).num_buckets == 10

    def test_invalid_bucket_count(self):
        with pytest.raises(EstimationError):
            PLHistogramEstimator(num_buckets=0)

    def test_invalid_length_mode(self):
        with pytest.raises(EstimationError):
            PLHistogramEstimator(num_buckets=5, length_mode="bogus")


class TestHistogramBuild:
    def test_descendant_counts(self, figure1_tree):
        __, d = figure1_tree
        hist = PLHistogram.build_descendant(d, Workspace(1, 22), 2)
        # Starts 3, 9 in [1, 12); 11 in [1,12) too; 19 in [12, 23).
        assert [b.n for b in hist.buckets] == [3, 1]

    def test_ancestor_counted_in_every_crossed_bucket(self, figure1_tree):
        a, __ = figure1_tree
        hist = PLHistogram.build_ancestor(a, Workspace(1, 22), 2)
        # a3=(1,22) crosses both buckets; a1=(2,7) first; a2=(18,21) second.
        assert [b.n for b in hist.buckets] == [2, 2]

    def test_clipped_lengths(self):
        a = NodeSet([Element("a", 1, 20)])
        hist = PLHistogram.build_ancestor(a, Workspace(1, 20), 2, "clipped")
        # Bucket width 10; the interval contributes its in-bucket portion.
        total = sum(b.total_length for b in hist.buckets)
        assert total == pytest.approx(19.0)

    def test_full_lengths(self):
        a = NodeSet([Element("a", 1, 20)])
        hist = PLHistogram.build_ancestor(a, Workspace(1, 20), 2, "full")
        assert [b.total_length for b in hist.buckets] == [19.0, 19.0]

    def test_average_length_empty_bucket(self):
        a = NodeSet([Element("a", 1, 2)])
        hist = PLHistogram.build_ancestor(a, Workspace(1, 100), 4)
        assert hist.buckets[-1].n == 0
        assert hist.buckets[-1].average_length == 0.0


class TestEstimation:
    def test_single_bucket_formula(self):
        """With one bucket the estimate is l̄/w · n(A) · n(D) exactly."""
        a = NodeSet([Element("a", 1, 11), Element("a", 21, 41)])
        d = NodeSet(
            [Element("d", 5, 10**6), Element("d", 25, 10**6 + 5)],
            validate=False,
        )
        workspace = Workspace(1, 50)
        estimator = PLHistogramEstimator(num_buckets=1)
        result = estimator.estimate(a, d, workspace)
        expected = (10 + 20) / 2 / 50 * 2 * 2
        assert result.value == pytest.approx(expected)

    def test_exact_under_pl_assumptions(self):
        a, d = uniform_case()
        workspace = Workspace.spanning([a.workspace(), d.workspace()])
        true = containment_join_size(a, d)
        estimate = PLHistogramEstimator(num_buckets=1).estimate(
            a, d, workspace
        )
        assert estimate.relative_error(true) < 25.0

    def test_more_buckets_do_not_break_uniform_case(self):
        a, d = uniform_case()
        workspace = Workspace.spanning([a.workspace(), d.workspace()])
        true = containment_join_size(a, d)
        for buckets in (1, 2, 5, 10):
            estimate = PLHistogramEstimator(num_buckets=buckets).estimate(
                a, d, workspace
            )
            assert estimate.relative_error(true) < 40.0

    def test_empty_operands(self):
        empty = NodeSet([])
        some = NodeSet([Element("a", 1, 4)])
        estimator = PLHistogramEstimator(num_buckets=4)
        assert estimator.estimate(empty, some).value == 0.0
        assert estimator.estimate(some, empty).value == 0.0

    def test_mismatched_histograms_rejected(self, figure1_tree):
        a, d = figure1_tree
        workspace = Workspace(1, 22)
        estimator = PLHistogramEstimator(num_buckets=4)
        hist_a = PLHistogram.build_ancestor(a, workspace, 4)
        hist_d = PLHistogram.build_descendant(d, workspace, 5)
        with pytest.raises(EstimationError):
            estimator.estimate_from_histograms(hist_a, hist_d)

    def test_details_present(self, figure1_tree):
        a, d = figure1_tree
        result = PLHistogramEstimator(num_buckets=4).estimate(
            a, d, Workspace(1, 22)
        )
        assert result.details["num_buckets"] == 4
        assert "average_cov" in result.details
        assert "worst_bucket_mre" in result.details
        assert result.estimator == "PL"

    def test_mre_unbounded_for_sparse_descendants(self, dblp_small):
        """DBLP Q5 (title // sup) has cov << 1, hence unbounded MRE."""
        a = dblp_small.node_set("title")
        d = dblp_small.node_set("sup")
        result = PLHistogramEstimator(num_buckets=20).estimate(
            a, d, dblp_small.tree.workspace()
        )
        assert result.details["average_cov"] < 1.0
        assert result.mre == math.inf

    def test_average_cov_matches_details(self, dblp_small):
        a = dblp_small.node_set("inproceeding")
        d = dblp_small.node_set("author")
        estimator = PLHistogramEstimator(num_buckets=20)
        workspace = dblp_small.tree.workspace()
        assert estimator.average_cov(a, d, workspace) == pytest.approx(
            estimator.estimate(a, d, workspace).details["average_cov"]
        )

    def test_clipped_beats_full_on_boundary_crossers(self):
        """Ablation: clipped lengths avoid double counting."""
        # One long ancestor crossing all buckets, descendants inside it.
        a = NodeSet([Element("a", 1, 100)])
        d = NodeSet(
            [Element("d", p, p + 10**4) for p in range(10, 91, 10)],
            validate=False,
        )
        workspace = Workspace(1, 100)
        true = containment_join_size(a, d)
        clipped = PLHistogramEstimator(num_buckets=5).estimate(
            a, d, workspace
        )
        full = PLHistogramEstimator(
            num_buckets=5, length_mode="full"
        ).estimate(a, d, workspace)
        assert clipped.relative_error(true) < full.relative_error(true)
