"""Tests for repro.estimators.sketch: the future-work AGMS estimator."""

import statistics

import numpy as np
import pytest

from repro.core.budget import SpaceBudget
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.estimators.sketch import CountSketch, SketchEstimator, _PolyHash
from repro.join import containment_join_size


@pytest.fixture(scope="module")
def operands():
    from repro.datasets import generate_xmark

    dataset = generate_xmark(scale=0.05, seed=101)
    a = dataset.node_set("desp")
    d = dataset.node_set("text")
    return a, d, dataset.tree.workspace(), containment_join_size(a, d)


class TestPolyHash:
    def test_deterministic(self):
        rng = np.random.default_rng(0)
        h = _PolyHash.random(4, rng)
        keys = np.arange(100)
        assert (h.evaluate(keys) == h.evaluate(keys)).all()

    def test_different_coefficients_differ(self):
        rng = np.random.default_rng(0)
        a = _PolyHash.random(2, rng)
        b = _PolyHash.random(2, rng)
        keys = np.arange(50)
        assert (a.evaluate(keys) != b.evaluate(keys)).any()

    def test_sign_balance(self):
        """4-wise hash should give ~balanced signs over many keys."""
        rng = np.random.default_rng(3)
        h = _PolyHash.random(4, rng)
        bits = (h.evaluate(np.arange(4000)) & 1).astype(int)
        assert 0.45 < bits.mean() < 0.55


class TestCountSketch:
    def test_dimensions(self):
        sketch = CountSketch(3, 16, seed=0)
        assert sketch.counters.shape == (3, 16)

    def test_invalid_dimensions(self):
        with pytest.raises(EstimationError):
            CountSketch(0, 16)
        with pytest.raises(EstimationError):
            CountSketch(3, 0)

    def test_paired_share_hashes(self):
        a, b = CountSketch.paired(3, 16, seed=1)
        assert a.shares_hashes_with(b)
        assert not a.shares_hashes_with(CountSketch(3, 16, seed=1))

    def test_inner_product_requires_shared_hashes(self):
        a = CountSketch(2, 8, seed=0)
        b = CountSketch(2, 8, seed=0)
        with pytest.raises(EstimationError):
            a.inner_product(b)

    def test_exact_for_wide_sketch(self):
        """With width >> support, collisions vanish and the product is
        exact."""
        x = np.array([3, 0, 1, 0, 2, 0, 0, 5])
        y = np.array([1, 1, 0, 0, 4, 0, 0, 2])
        a, b = CountSketch.paired(5, 4096, seed=7)
        a.update_vector(x)
        b.update_vector(y)
        assert a.inner_product(b) == pytest.approx(
            float(np.dot(x, y)), rel=1e-9
        )

    def test_unbiased_inner_product(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, size=300)
        y = rng.integers(0, 2, size=300)
        truth = float(np.dot(x, y))
        estimates = []
        for seed in range(120):
            a, b = CountSketch.paired(1, 32, seed=seed)
            a.update_vector(x)
            b.update_vector(y)
            estimates.append(a.inner_product(b))
        assert abs(statistics.fmean(estimates) - truth) / truth < 0.15

    def test_update_with_offset(self):
        a1, b1 = CountSketch.paired(2, 64, seed=5)
        a1.update_vector(np.array([0, 7]), offset=100)
        a2, b2 = CountSketch.paired(2, 64, seed=5)
        a2.update_vector(np.array([7]), offset=101)
        assert (a1.counters == a2.counters).all()

    def test_zero_vector_noop(self):
        sketch = CountSketch(2, 8, seed=0)
        sketch.update_vector(np.zeros(10, dtype=np.int64))
        assert not sketch.counters.any()


class TestSketchEstimator:
    def test_requires_exactly_one_size_argument(self):
        with pytest.raises(EstimationError):
            SketchEstimator()
        with pytest.raises(EstimationError):
            SketchEstimator(num_counters=10, budget=SpaceBudget(200))

    def test_budget_conversion(self):
        estimator = SketchEstimator(budget=SpaceBudget(800), depth=5)
        assert estimator.depth * estimator.width <= 100

    def test_invalid_depth(self):
        with pytest.raises(EstimationError):
            SketchEstimator(num_counters=10, depth=0)
        with pytest.raises(EstimationError):
            SketchEstimator(num_counters=3, depth=5)  # width would be 0

    def test_empty_operands(self):
        estimator = SketchEstimator(num_counters=50, seed=0)
        assert estimator.estimate(NodeSet([]), NodeSet([])).value == 0.0

    def test_reasonable_accuracy(self, operands):
        a, d, workspace, true = operands
        errors = [
            SketchEstimator(num_counters=605, depth=5, seed=s)
            .estimate(a, d, workspace)
            .relative_error(true)
            for s in range(10)
        ]
        assert statistics.fmean(errors) < 35.0

    def test_accuracy_improves_with_width(self, operands):
        a, d, workspace, true = operands
        small = statistics.fmean(
            SketchEstimator(num_counters=25, depth=1, seed=s)
            .estimate(a, d, workspace)
            .relative_error(true)
            for s in range(15)
        )
        large = statistics.fmean(
            SketchEstimator(num_counters=2000, depth=1, seed=s)
            .estimate(a, d, workspace)
            .relative_error(true)
            for s in range(15)
        )
        assert large < small

    def test_never_negative(self, operands):
        a, d, workspace, __ = operands
        for seed in range(5):
            value = (
                SketchEstimator(num_counters=20, depth=4, seed=seed)
                .estimate(a, d, workspace)
                .value
            )
            assert value >= 0.0
