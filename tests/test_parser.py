"""Tests for repro.xmltree.parser."""

import pytest

from repro.core.errors import ParseError
from repro.xmltree.parser import parse_xml


class TestBasicParsing:
    def test_single_element(self):
        tree = parse_xml("<a/>")
        assert tree.size == 1
        assert (tree.root.start, tree.root.end) == (1, 2)

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c/></b><d/></a>")
        coded = [(e.tag, e.start, e.end) for e in tree.elements]
        assert coded == [("a", 1, 8), ("b", 2, 5), ("c", 3, 4), ("d", 6, 7)]

    def test_text_does_not_consume_positions(self):
        with_text = parse_xml("<a>hello <b>world</b> bye</a>")
        without = parse_xml("<a><b/></a>")
        assert [(e.start, e.end) for e in with_text.elements] == [
            (e.start, e.end) for e in without.elements
        ]

    def test_attributes_ignored(self):
        tree = parse_xml('<a id="1" name="x"><b class=\'y\'/></a>')
        assert [e.tag for e in tree.elements] == ["a", "b"]

    def test_comments_pis_cdata_doctype(self):
        tree = parse_xml(
            '<?xml version="1.0"?>\n'
            "<!DOCTYPE a>\n"
            "<a><!-- comment --><b><![CDATA[<fake/>]]></b></a>"
        )
        assert [e.tag for e in tree.elements] == ["a", "b"]

    def test_whitespace_between_elements(self):
        tree = parse_xml("<a>\n  <b/>\n  <c/>\n</a>\n")
        assert tree.size == 3

    def test_namespaced_and_dotted_names(self):
        tree = parse_xml("<ns:a><x.y-z/></ns:a>")
        assert [e.tag for e in tree.elements] == ["ns:a", "x.y-z"]

    def test_first_position(self):
        tree = parse_xml("<a/>", first_position=10)
        assert (tree.root.start, tree.root.end) == (10, 11)


class TestErrors:
    def test_mismatched_closing_tag(self):
        with pytest.raises(ParseError, match="mismatched"):
            parse_xml("<a><b></a></b>")

    def test_unclosed_element(self):
        with pytest.raises(ParseError, match="left open"):
            parse_xml("<a><b>")

    def test_close_without_open(self):
        with pytest.raises(ParseError, match="without an open"):
            parse_xml("<a/></a>")

    def test_multiple_roots(self):
        with pytest.raises(ParseError, match="more than one root"):
            parse_xml("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(ParseError, match="outside the root"):
            parse_xml("junk <a/>")

    def test_empty_document(self):
        with pytest.raises(ParseError, match="no elements"):
            parse_xml("   \n ")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_xml("<a><=bad></a>")

    def test_invalid_name(self):
        with pytest.raises(ParseError):
            parse_xml("<1abc/>")
