"""Tests for the bandit method router (:mod:`repro.router`).

The load-bearing property is the determinism contract: every router is
a pure function of (seed, feedback history).  The suite checks it three
ways — identical decision sequences across repeated runs, across
service worker counts, and across snapshot/merge reorderings — plus the
registry resolution surface, per-router selection behavior, the
service integration (disclosure, the inline BOUND arm), and the bench
report's schema.
"""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.core.errors import (
    FeedbackError,
    UnknownEstimatorError,
    UnknownRouterError,
)
from repro.estimators.bounds import join_size_bounds
from repro.feedback import FeedbackStore, query_class, record_feedback
from repro.join.size import containment_join_size
from repro.router import (
    BOUND_METHOD,
    DEFAULT_CANDIDATES,
    Router,
    StaticRouter,
    ThompsonRouter,
    UCB1Router,
    available_routers,
    canonical_router_name,
    resolve_router,
)
from repro.service.request import EstimateRequest


def _operands(dataset, a_tag="item", d_tag="name"):
    return dataset.node_set(a_tag), dataset.node_set(d_tag)


def _seeded_candidates(a, d):
    """Arms that pin their own seeds, so answers are reproducible."""
    samples = max(1, min(len(a), len(d)) // 2)
    return {
        "PL": {"num_buckets": 8},
        "IM": {"num_samples": samples, "seed": 11},
        "PM": {"num_samples": samples, "seed": 11},
        BOUND_METHOD: {},
    }


def _fill_store(store, qc, losses):
    """Record one truth-paired pull per (method, loss) pair."""
    for method, loss in losses:
        store.add(
            repro.FeedbackRecord(
                query_class=qc,
                method=method,
                estimate=100.0 * (1.0 + loss),
                exact=100.0,
            )
        )


# ----------------------------------------------------------------------
# Registry resolution
# ----------------------------------------------------------------------


class TestRegistry:
    def test_available_routers_sorted(self):
        names = available_routers()
        assert names == tuple(sorted(names))
        assert {"UCB1", "THOMPSON", "STATIC"} <= set(names)

    def test_aliases_resolve(self):
        assert canonical_router_name("ucb") == "UCB1"
        assert canonical_router_name("bandit") == "UCB1"
        assert canonical_router_name("thompson-sampling") == "THOMPSON"
        assert canonical_router_name("  Fixed ") == "STATIC"

    def test_unknown_name_typed_with_candidates(self):
        with pytest.raises(UnknownRouterError) as info:
            resolve_router("ucb2")
        assert info.value.name == "ucb2"
        assert "UCB1" in info.value.candidates
        assert "UCB1" in str(info.value)
        # The router error is part of the estimator-error taxonomy.
        assert issubclass(UnknownRouterError, UnknownEstimatorError)

    def test_resolve_router_passthrough_and_config(self):
        router = UCB1Router()
        assert resolve_router(router) is router
        with pytest.raises(UnknownRouterError):
            resolve_router(router, exploration=0.5)
        built = resolve_router("ucb1", exploration=0.5, seed=3)
        assert built.exploration == 0.5
        assert built.seed == 3

    def test_candidate_methods_canonicalized(self):
        router = StaticRouter(
            {"pl-histogram": {"num_buckets": 8}, "bound": {}},
            method="pl-histogram",
        )
        assert router.arms == ("PL", BOUND_METHOD)
        assert router.method == "PL"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(FeedbackError):
            UCB1Router({})
        with pytest.raises(FeedbackError):
            UCB1Router(exploration=-1.0)
        with pytest.raises(FeedbackError):
            ThompsonRouter(scale=0.0)
        with pytest.raises(FeedbackError):
            Router.__init__(UCB1Router(), latency_weight=-0.1)
        with pytest.raises(FeedbackError):
            StaticRouter(method="IM", candidates={"PL": {}})


# ----------------------------------------------------------------------
# Selection behavior
# ----------------------------------------------------------------------


class TestSelection:
    def test_static_always_pins(self):
        router = StaticRouter(method="PL")
        assert router.choose("any", {}) == "PL"
        assert router.describe()["method"] == "PL"

    def test_ucb1_explores_every_arm_first(self):
        router = UCB1Router(seed=0)
        store = FeedbackStore()
        qc = "q"
        seen = []
        for __ in range(len(router.arms)):
            arm = router.choose(qc, store.method_stats(qc))
            seen.append(arm)
            _fill_store(store, qc, [(arm, 0.5)])
        assert sorted(seen) == sorted(router.arms)

    def test_ucb1_exploits_the_best_arm(self):
        router = UCB1Router(exploration=0.0)
        store = FeedbackStore()
        qc = "q"
        losses = {"PL": 0.9, "IM": 0.05, "PM": 0.6, BOUND_METHOD: 2.0}
        for __ in range(3):
            _fill_store(store, qc, losses.items())
        assert router.choose(qc, store.method_stats(qc)) == "IM"

    def test_reward_is_order_free(self):
        """Reward reads sums/counts only — never the order-dependent EWMA."""
        router = UCB1Router()
        stats = repro.FeedbackStore()
        _fill_store(stats, "q", [("PL", 0.5), ("PL", 0.1)])
        cell = stats.method_stats("q")["PL"]
        expected = 1.0 / (1.0 + cell.abs_error_sum / cell.truth_count)
        assert router.reward(cell) == expected
        assert router.reward(None) is None

    def test_latency_weight_penalizes_slow_arms(self):
        fast = repro.FeedbackRecord(
            query_class="q", method="PL", estimate=100.0, exact=100.0,
            latency_s=0.0,
        )
        slow = repro.FeedbackRecord(
            query_class="q", method="IM", estimate=100.0, exact=100.0,
            latency_s=10.0,
        )
        store = FeedbackStore()
        store.add(fast)
        store.add(slow)
        router = UCB1Router(
            candidates={"PL": {}, "IM": {"num_samples": 8}},
            exploration=0.0,
            latency_weight=0.1,
        )
        assert router.choose("q", store.method_stats("q")) == "PL"

    def test_thompson_is_a_pure_function_of_history(self):
        store = FeedbackStore()
        _fill_store(store, "q", [("PL", 0.2), ("IM", 0.1)])
        stats = store.method_stats("q")
        first = ThompsonRouter(seed=5).choose("q", stats)
        again = ThompsonRouter(seed=5).choose("q", stats)
        assert first == again
        # And it reacts to the seed, not hidden RNG state.
        draws = {
            ThompsonRouter(seed=s).choose("q", stats) for s in range(40)
        }
        assert len(draws) > 1

    def test_route_propagates_seed_to_stochastic_arms_only(
        self, xmark_small
    ):
        a, d = _operands(xmark_small)
        request = EstimateRequest(
            ancestors=a,
            descendants=d,
            method="IM",
            config={"num_samples": 8, "seed": 77},
        )
        for pinned, expects_seed in (
            ("IM", True), ("PM", True), ("PL", False), (BOUND_METHOD, False),
        ):
            router = StaticRouter(method=pinned)
            method, config = router.route(request, None)
            assert method == pinned
            assert ("seed" in config) == expects_seed
            if expects_seed:
                assert config["seed"] == 77
            # route() copies: mutating the result must not leak back.
            config["num_samples"] = -1
            assert router.candidates[pinned].get("num_samples") != -1

    def test_route_rejects_foreign_arm(self, xmark_small):
        class Rogue(UCB1Router):
            def choose(self, query_class, stats):
                return "WAVELET"

        a, d = _operands(xmark_small)
        request = EstimateRequest(
            ancestors=a, descendants=d, method="PL", config={}
        )
        with pytest.raises(FeedbackError):
            Rogue().route(request, None)


# ----------------------------------------------------------------------
# Determinism across workers and merge order
# ----------------------------------------------------------------------


def _serve_trace(a, d, workers, rounds=10, router_seed=0):
    """One trace through the service; the routed-method sequence."""
    candidates = _seeded_candidates(a, d)
    store = FeedbackStore()
    store.observe_truth(a, d, float(containment_join_size(a, d)))
    router = UCB1Router(candidates, seed=router_seed)
    routed = []
    with repro.serve(
        workers=workers, router=router, feedback=store, memoize=False
    ) as service:
        for __ in range(rounds):
            response = service.estimate(
                a, d, "IM", **candidates["IM"]
            )
            routed.append(
                (response.routed_method, response.estimate.value)
            )
    return routed


class TestDeterminism:
    def test_identical_runs_identical_decisions(self, xmark_small):
        a, d = _operands(xmark_small)
        assert _serve_trace(a, d, 0) == _serve_trace(a, d, 0)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_count_independent(self, xmark_small, workers):
        """workers=K serves the same routes and values as workers=0."""
        a, d = _operands(xmark_small)
        assert _serve_trace(a, d, workers) == _serve_trace(a, d, 0)

    def test_snapshot_merge_reordering_invariant(self, xmark_small):
        """choose() is identical on any merge order of worker stores."""
        a, d = _operands(xmark_small)
        qc = query_class(a, d)
        exact = float(containment_join_size(a, d))

        workers = [FeedbackStore() for __ in range(3)]
        for i, store in enumerate(workers):
            store.observe_truth(a, d, exact)
            for j, method in enumerate(("PL", "IM", "PM", BOUND_METHOD)):
                record_feedback(
                    a, d, method, exact * (1.0 + 0.1 * (i + j)),
                    store=store,
                )

        merged_ab = FeedbackStore()
        for store in workers:
            merged_ab.merge(store.snapshot())
        merged_ba = FeedbackStore()
        for store in reversed(workers):
            merged_ba.merge(store.snapshot())

        for router in (
            UCB1Router(seed=1),
            ThompsonRouter(seed=1),
            StaticRouter(),
        ):
            assert router.choose(
                qc, merged_ab.method_stats(qc)
            ) == router.choose(qc, merged_ba.method_stats(qc))


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------


class TestServiceIntegration:
    def test_routed_method_disclosed(self, xmark_small):
        a, d = _operands(xmark_small)
        with repro.serve(
            workers=0, router=StaticRouter(method="PL")
        ) as service:
            response = service.estimate(a, d, "IM", num_samples=8, seed=3)
            stats = service.stats()
        assert response.routed_method == "PL"
        assert response.estimate.value == api.estimate(
            a, d, "PL", num_buckets=16
        ).value
        assert response.to_dict()["routed_method"] == "PL"
        assert stats["router"]["name"] == "STATIC"
        assert stats["counters"]["service.routed"] == 1

    def test_bound_arm_answers_inline(self, xmark_small):
        a, d = _operands(xmark_small)
        exact = containment_join_size(a, d)
        with repro.serve(
            workers=0, router=StaticRouter(method=BOUND_METHOD)
        ) as service:
            response = service.estimate(a, d, "IM", num_samples=8, seed=3)
        assert response.routed_method == BOUND_METHOD
        assert response.status == "ok"
        assert response.estimate.value == float(
            join_size_bounds(a, d).upper
        )
        details = response.estimate.details
        assert details["bound_lower"] <= exact <= details["bound_upper"]

    def test_router_implies_feedback_store(self, xmark_small):
        a, d = _operands(xmark_small)
        with repro.serve(workers=0, router="ucb1") as service:
            assert service.feedback is not None
            service.estimate(a, d, "IM", num_samples=8, seed=3)
            assert len(service.feedback) == 1

    def test_no_router_no_disclosure(self, xmark_small):
        a, d = _operands(xmark_small)
        with repro.serve(workers=0) as service:
            response = service.estimate(a, d, "PL", num_buckets=8)
        assert response.routed_method is None
        assert service.feedback is None

    def test_serve_resolves_router_names(self, xmark_small):
        with repro.serve(workers=0, router="thompson") as service:
            assert service.stats()["router"]["name"] == "THOMPSON"

    def test_facade_exports(self):
        assert "UCB1" in repro.available_routers()
        assert isinstance(repro.resolve_router("static"), StaticRouter)
        for name in ("Router", "available_routers", "resolve_router"):
            assert hasattr(repro, name) and hasattr(api, name)


# ----------------------------------------------------------------------
# Bench report
# ----------------------------------------------------------------------


class TestBench:
    def test_router_bench_schema_and_gates(self):
        from repro.qa.bench_schema import validate_bench_report
        from repro.router.bench import run_router_bench

        report = run_router_bench(
            scale=0.05,
            seed=7,
            rounds=6,
            warmup_rounds=4,
            datasets=("dblp",),
            exploration=0.1,
        )
        report["elapsed_s"] = 0.0
        validate_bench_report(report, "router")
        assert report["correction"]["worsened"] == 0
        total = report["total"]
        assert total["router_loss_gated"] <= total["router_loss"]

    def test_router_bench_deterministic(self):
        from repro.router.bench import run_router_bench

        kwargs = dict(
            scale=0.05, seed=7, rounds=5, datasets=("dblp",),
            exploration=0.1,
        )
        assert run_router_bench(**kwargs) == run_router_bench(**kwargs)
