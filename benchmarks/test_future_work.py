"""Extension experiments: the paper's future-work directions (Section 7).

Compares the sketch and wavelet estimators — built on the position model,
exactly as the paper conjectures — against PL and IM at the same space
budget on the XMARK workload, and verifies the Theorem 3/4 guarantees
empirically against their Hoeffding predictions.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import xmark_queries
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.sketch import SketchEstimator
from repro.estimators.wavelet import WaveletEstimator
from repro.experiments.harness import MethodSpec, evaluate
from repro.experiments.report import format_table
from repro.experiments.analysis import verify_sampling_theorem
from repro.join import containment_join_size


def test_future_work_sketch_wavelet(benchmark, report, bench_runs,
                                    xmark_full):
    budget = SpaceBudget(800)
    queries = xmark_queries()
    a, d = queries[0].operands(xmark_full)
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: SketchEstimator(budget=budget, seed=0).estimate(
            a, d, workspace
        ),
        rounds=3,
        iterations=1,
    )

    methods = [
        MethodSpec(
            "SKETCH",
            lambda seed, b=budget: SketchEstimator(budget=b, seed=seed),
        ),
        MethodSpec(
            "WAVELET",
            lambda seed, b=budget: WaveletEstimator(budget=b),
            stochastic=False,
        ),
        MethodSpec(
            "IM",
            lambda seed, b=budget: IMSamplingEstimator(budget=b, seed=seed),
        ),
    ]
    rows = evaluate(
        xmark_full, queries, methods, runs=bench_runs, seed=0
    )
    report(
        "future_work_sketch_wavelet",
        format_table(
            ["query", "true size", "SKETCH", "WAVELET", "IM"],
            [
                [
                    r.query.id,
                    r.true_size,
                    r.errors["SKETCH"],
                    r.errors["WAVELET"],
                    r.errors["IM"],
                ]
                for r in rows
            ],
            title=(
                "[xmark] future-work estimators vs IM at 800 bytes "
                "(relative error %)"
            ),
        ),
    )
    # The sketch must be usable (finite, bounded error) on every query;
    # IM remains the best overall, as the paper's methods are tuned to
    # the problem while the future-work techniques are generic.
    sketch_mean = statistics.fmean(r.errors["SKETCH"] for r in rows)
    im_mean = statistics.fmean(r.errors["IM"] for r in rows)
    assert sketch_mean < 200.0
    assert im_mean <= sketch_mean


def test_theorem_guarantees(benchmark, report, xmark_full):
    """Theorems 3 and 4: unbiasedness + Hoeffding concentration."""
    a = xmark_full.node_set("desp")
    d = xmark_full.node_set("text")
    workspace = xmark_full.tree.workspace()
    true = containment_join_size(a, d)
    height = xmark_full.tree.height

    def run_im_check():
        return verify_sampling_theorem(
            "IM-DA-Est (Thm 3)",
            lambda seed: IMSamplingEstimator(
                num_samples=100, seed=seed, replace=True
            ),
            a, d, workspace, true,
            scale=len(d), subjoin_bound=height, num_samples=100, runs=100,
        )

    im_check = benchmark.pedantic(run_im_check, rounds=1, iterations=1)
    pm_check = verify_sampling_theorem(
        "PM-Est (Thm 4)",
        lambda seed: PMSamplingEstimator(num_samples=100, seed=seed),
        a, d, workspace, true,
        scale=workspace.width, subjoin_bound=height, num_samples=100,
        runs=100,
    )
    rows = [
        [
            check.label,
            check.true_size,
            check.mean_estimate,
            check.bias_pct,
            check.observed_std,
            check.hoeffding_halfwidth_95,
            check.within_bound_fraction,
        ]
        for check in (im_check, pm_check)
    ]
    report(
        "theorem_guarantees",
        format_table(
            ["theorem", "true", "mean est", "bias %", "observed std",
             "Hoeffding t(95%)", "within-bound frac"],
            rows,
            title="Empirical verification of Theorems 3 and 4 "
                  "(desp // text, m=100)",
        ),
    )
    for check in (im_check, pm_check):
        assert check.unbiased_within_noise, check.label
        assert check.within_bound_fraction >= 0.95, check.label
    # PM's additive term is O(w) >= O(|A| + |D|): its bound must be wider.
    assert (
        pm_check.hoeffding_halfwidth_95 > im_check.hoeffding_halfwidth_95
    )
