"""Word-granularity coding: the fidelity knob behind Table 4.

The paper's region codes follow Zhang et al., where *every text word*
consumes a position; the package default codes element events only.  The
difference shifts interval lengths and workspace widths — exactly the
quantities cov depends on.  This benchmark regenerates Table 4 under both
codings and shows word-granularity landing measurably closer to the
paper's values on the text-heavy queries (Q1-Q3 track to two decimals;
Q6, driven by citation-string lengths, moves from 4x under to ~70% of
the paper's value).
"""

from repro.experiments.report import format_table
from repro.experiments.tables import PAPER_TABLE4, average_cov_table


def test_word_coding_table4(benchmark, report, bench_scale):
    word_cov = dict(
        benchmark.pedantic(
            average_cov_table,
            args=("dblp", 20, bench_scale, True),
            rounds=1,
            iterations=1,
        )
    )
    element_cov = dict(average_cov_table("dblp", 20, bench_scale))
    rows = [
        [
            query_id,
            element_cov[query_id],
            word_cov[query_id],
            PAPER_TABLE4[query_id],
        ]
        for query_id in element_cov
    ]
    report(
        "word_coding_table4",
        format_table(
            ["query", "element-code cov", "word-code cov", "paper cov"],
            rows,
            title="Table 4 under both region-coding granularities",
        ),
    )
    # Word coding must be at least as close to the paper for the
    # text-heavy queries.
    for query_id in ("Q1", "Q2", "Q3", "Q6"):
        paper = PAPER_TABLE4[query_id]
        assert abs(word_cov[query_id] - paper) <= abs(
            element_cov[query_id] - paper
        ) + 0.02, query_id
    # And track the paper to within ~15% relative on the regular queries.
    for query_id in ("Q1", "Q2", "Q3"):
        paper = PAPER_TABLE4[query_id]
        assert abs(word_cov[query_id] - paper) / paper < 0.15, query_id
