"""Figure 7: histogram accuracy vs space on XMARK.

(a) PH error vs bucket count, (b) PL error vs bucket count, (c) PH vs PL
at a fixed budget.  Reproduction targets (Section 6.3):

* neither method is sensitive to the number of buckets — more space does
  not rescue the queries with large errors;
* PL outperforms PH on (nearly) every query.

The benchmarks time one PH and one PL estimate at 400 bytes.
"""

import statistics
from pathlib import Path

from repro.experiments.export import export_series

from repro.datasets.workloads import xmark_queries
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.histograms import (
    BUCKET_SWEEP,
    run_bucket_sweep,
    run_histogram_comparison,
)
from repro.join import containment_join_size

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def test_fig7a_ph_bucket_sweep(benchmark, report, bench_scale, xmark_full):
    a, d = xmark_queries()[0].operands(xmark_full)
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: PHHistogramEstimator(num_cells=50).estimate(a, d, workspace),
        rounds=3,
        iterations=1,
    )
    sweep = run_bucket_sweep("xmark", "PH", BUCKET_SWEEP, scale=bench_scale)
    report("fig7a_ph_sweep", sweep.render())
    export_series(RESULTS_DIR / "csv" / "fig7a_ph_sweep.csv", sweep.series,
                  x_label="buckets", y_label="relative_error_pct")

    # Insensitivity: per query, max/min error across bucket counts stays
    # within a small factor for the badly-estimated queries.
    for query_id, points in sweep.series.items():
        errors = [e for __, e in points]
        if min(errors) > 100.0:  # the blow-up queries
            assert max(errors) < 40 * min(errors), query_id


def test_fig7b_pl_bucket_sweep(benchmark, report, bench_scale, xmark_full):
    a, d = xmark_queries()[0].operands(xmark_full)
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: PLHistogramEstimator(num_buckets=20).estimate(
            a, d, workspace
        ),
        rounds=3,
        iterations=1,
    )
    sweep = run_bucket_sweep("xmark", "PL", BUCKET_SWEEP, scale=bench_scale)
    report("fig7b_pl_sweep", sweep.render())
    export_series(RESULTS_DIR / "csv" / "fig7b_pl_sweep.csv", sweep.series,
                  x_label="buckets", y_label="relative_error_pct")

    # PL stays bounded on every query at every bucket count.
    for query_id, points in sweep.series.items():
        for __, error in points:
            assert error < 200.0, query_id


def test_fig7c_ph_vs_pl(benchmark, report, bench_scale, xmark_full):
    queries = xmark_queries()
    workspace = xmark_full.tree.workspace()

    def all_pl():
        estimator = PLHistogramEstimator(num_buckets=20)
        return [
            estimator.estimate(*q.operands(xmark_full), workspace).value
            for q in queries
        ]

    benchmark.pedantic(all_pl, rounds=1, iterations=1)
    report(
        "fig7c_ph_vs_pl",
        run_histogram_comparison("xmark", scale=bench_scale),
    )

    # PL must beat PH on average and on the majority of queries.
    ph = PHHistogramEstimator(num_cells=50)
    pl = PLHistogramEstimator(num_buckets=20)
    wins = 0
    ph_errors = []
    pl_errors = []
    for query in queries:
        a, d = query.operands(xmark_full)
        true = containment_join_size(a, d)
        ph_error = ph.estimate(a, d, workspace).relative_error(true)
        pl_error = pl.estimate(a, d, workspace).relative_error(true)
        ph_errors.append(ph_error)
        pl_errors.append(pl_error)
        wins += pl_error <= ph_error + 1e-9
    assert wins >= len(queries) - 1
    assert statistics.fmean(pl_errors) < statistics.fmean(ph_errors)
