"""XMACH overall performance (Section 6.1's prose claim).

The paper omits the XMACH figures because "the results on XMACH datasets
are very similar to those on XMARK datasets".  This benchmark regenerates
them and checks the similarity claim: same winner (IM), same histogram
blow-up on the recursive-ancestor queries (host//path, path//doc_info),
same sampling-beats-histograms ordering.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import xmach_queries
from repro.experiments.harness import evaluate, paper_methods
from repro.experiments.overall import OverallResult


def test_xmach_overall(benchmark, report, bench_runs, bench_scale,
                       xmach_full):
    queries = xmach_queries()

    def run_one_budget():
        return evaluate(
            xmach_full,
            queries,
            paper_methods(SpaceBudget(400)),
            runs=bench_runs,
            seed=0,
        )

    benchmark.pedantic(run_one_budget, rounds=1, iterations=1)

    panels = []
    for nbytes in (200, 400, 800):
        rows = evaluate(
            xmach_full,
            queries,
            paper_methods(SpaceBudget(nbytes)),
            runs=bench_runs,
            seed=0,
        )
        panels.append(OverallResult("xmach", SpaceBudget(nbytes), rows))
    report(
        "xmach_overall",
        "\n\n".join(panel.render() for panel in panels),
    )

    final = panels[-1].rows
    mean = {
        method: statistics.fmean(row.errors[method] for row in final)
        for method in ("PH", "PL", "IM", "PM")
    }
    # "Very similar to XMARK": IM best, histograms worst on average.
    assert mean["IM"] == min(mean.values())
    assert mean["IM"] < 25.0
    # Recursive ancestors (host//path) blow PH up; the magnitude scales
    # with per-cell density, so the threshold follows the document scale.
    recursive = {row.query.id: row.errors for row in final}
    assert recursive["Q1"]["PH"] > max(100.0, 300.0 * min(bench_scale, 1.0))
    assert recursive["Q1"]["PL"] < recursive["Q1"]["PH"]
