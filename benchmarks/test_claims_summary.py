"""The reproduction scoreboard: every headline claim in one verdict table.

Runs :func:`repro.experiments.claims.verify_all` over the full-scale
datasets and asserts every claim passes; the rendered table is the
one-page summary of the whole reproduction.
"""

from repro.experiments.claims import render_claims, verify_all


def test_claims_summary(benchmark, report, bench_scale, bench_runs):
    results = benchmark.pedantic(
        verify_all,
        args=(bench_scale, bench_runs, 0),
        rounds=1,
        iterations=1,
    )
    report("claims_summary", render_claims(results))
    failed = [r.claim for r in results if not r.passed]
    assert not failed, f"claims failed: {failed}"
    assert len(results) >= 10
