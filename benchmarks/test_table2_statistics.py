"""Table 2: dataset statistics (node counts + overlap properties).

Regenerates the three panels of Table 2 from the calibrated synthetic
generators and reports generated vs paper counts.  The benchmark times
the statistics computation (node-set construction + overlap detection)
on the already-built tree.
"""

import pytest

from repro.experiments.tables import render_table2


@pytest.mark.parametrize(
    "name,fixture",
    [
        ("xmark", "xmark_full"),
        ("dblp", "dblp_full"),
        ("xmach", "xmach_full"),
    ],
)
def test_table2_statistics(name, fixture, request, benchmark, report,
                           bench_scale):
    dataset = request.getfixturevalue(fixture)

    def compute():
        dataset._node_sets.clear()  # measure cold statistics computation
        return dataset.statistics()

    rows = benchmark(compute)
    report(f"table2_{name}", render_table2(name, scale=bench_scale))

    # Reproduction checks: overlap properties must match Table 2 exactly,
    # counts within 10% of the scaled targets (for large predicates).
    expected_overlap = {
        "xmark": {"parlist", "listitem"},
        "dblp": set(),
        "xmach": {"host", "path", "section"},
    }[name]
    observed_overlap = {r.predicate for r in rows if r.has_overlap}
    assert observed_overlap == expected_overlap

    for row in rows:
        target = row.paper_count * bench_scale
        if target >= 300:
            # Sampling noise of the recursive generators shrinks like
            # 1/sqrt(target); 10% is the full-scale calibration target.
            tolerance = 0.10 + 2.0 / target**0.5
            assert abs(row.count - target) / target < tolerance, (
                row.predicate
            )
