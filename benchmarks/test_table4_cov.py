"""Table 4: average cov values for the DBLP queries.

cov = l/w * n(D) per bucket, averaged (ancestor-weighted) over buckets —
the statistic that predicts where the PL histogram is risky (Section 6.3).
The paper's values: Q1 2.05, Q2 0.98, Q3 0.36, Q4 0.032, Q5 0.0003,
Q6 0.020.  The ordering and the cliff between Q3 and Q4-Q6 are the
reproduction target.
"""

from repro.experiments.tables import (
    PAPER_TABLE4,
    average_cov_table,
    render_table4,
)


def test_table4_average_cov(benchmark, report, bench_scale, dblp_full):
    table = benchmark(
        average_cov_table, "dblp", 20, bench_scale
    )
    report("table4_cov", render_table4(scale=bench_scale))

    covs = dict(table)
    # Shape checks against the paper's Table 4.
    assert covs["Q1"] > 1.0, "Q1 must be the only cov above 1"
    assert 0.5 < covs["Q2"] < 1.5
    assert 0.1 < covs["Q3"] < 0.7
    for sparse_query in ("Q4", "Q5", "Q6"):
        assert covs[sparse_query] < 0.1, sparse_query
    # Same ordering as the paper for the top of the table.
    assert covs["Q1"] > covs["Q2"] > covs["Q3"] > covs["Q4"] > covs["Q5"]
    assert PAPER_TABLE4["Q1"] > PAPER_TABLE4["Q2"]  # sanity on constants
