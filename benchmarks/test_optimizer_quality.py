"""End-to-end optimizer quality: the introduction's motivation, measured.

The paper motivates size estimation with join ordering: a wrong
intermediate-size estimate picks a plan whose true cost is larger.  This
benchmark runs the chain optimizer over XMARK 3- and 4-way chains with
each estimation method (plus the §6.5 hybrid, the pessimistic upper
bound, and the exact oracle), all through the pluggable
``CardinalityGenerator`` interface, and reports the *plan regret*: true
cost of the chosen plan divided by the true cost of the optimal plan.
A regret of 1.00 means the generator was good enough to pick the best
plan.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.report import format_table
from repro.optimizer import optimize, resolve_generator
from repro.optimizer.regret import optimal_true_cost, true_plan_cost

CHAINS = [
    ["open_auction", "annotation", "text"],
    ["item", "desp", "text"],
    ["desp", "parlist", "listitem"],
    ["desp", "parlist", "listitem", "text"],
    ["item", "desp", "parlist", "listitem"],
]


def test_optimizer_plan_regret(benchmark, report, xmark_full):
    budget = SpaceBudget(800)
    generators = {
        "EXACT": lambda: resolve_generator("EXACT"),
        "UBOUND": lambda: resolve_generator("UBOUND"),
        "PH": lambda: PHHistogramEstimator(budget=budget),
        "PL": lambda: PLHistogramEstimator(budget=budget),
        "IM": lambda: IMSamplingEstimator(budget=budget, seed=17),
        "HYBRID": lambda: HybridEstimator(budget=budget, seed=17),
    }
    workspace = xmark_full.tree.workspace()

    sets0 = [xmark_full.node_set(tag) for tag in CHAINS[0]]
    benchmark.pedantic(
        lambda: optimize(sets0, generators["PL"](), workspace=workspace),
        rounds=3,
        iterations=1,
    )

    rows = []
    regrets: dict[str, list[float]] = {name: [] for name in generators}
    for tags in CHAINS:
        sets = [xmark_full.node_set(tag) for tag in tags]
        optimal_cost = optimal_true_cost(sets)
        row = [" // ".join(tags), optimal_cost]
        for name, factory in generators.items():
            chosen = optimize(sets, factory(), workspace=workspace)
            chosen_cost = true_plan_cost(chosen, sets)
            regret = (
                chosen_cost / optimal_cost if optimal_cost else 1.0
            )
            regrets[name].append(regret)
            row.append(regret)
        rows.append(row)
    report(
        "optimizer_plan_regret",
        format_table(
            ["chain", "optimal cost", *generators],
            rows,
            title="[xmark] plan regret (chosen true cost / optimal true "
                  "cost) per cardinality generator",
        ),
    )

    # The exact oracle must always find the optimum.
    assert all(regret == 1.0 for regret in regrets["EXACT"])
    # The pessimistic bound plans from sound overestimates; its regret
    # stays modest even though its absolute estimates are loose.
    assert statistics.fmean(regrets["UBOUND"]) < 1.6
    # Good estimators keep mean regret near 1; the broken baseline (PH on
    # recursive sets) must not be better than IM.
    assert statistics.fmean(regrets["IM"]) < 1.6
    assert statistics.fmean(regrets["IM"]) <= (
        statistics.fmean(regrets["PH"]) + 1e-9
    )
