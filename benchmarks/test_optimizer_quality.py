"""End-to-end optimizer quality: the introduction's motivation, measured.

The paper motivates size estimation with join ordering: a wrong
intermediate-size estimate picks a plan whose true cost is larger.  This
benchmark runs the chain optimizer over XMARK 3- and 4-way chains with
each estimation method (plus the §6.5 hybrid and the exact oracle) and
reports the *plan regret*: true cost of the chosen plan divided by the
true cost of the optimal plan.  A regret of 1.00 means the estimator was
good enough to pick the best plan.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.estimators.base import Estimate, Estimator
from repro.estimators.hybrid import HybridEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.report import format_table
from repro.join import containment_join_size
from repro.optimizer import chain_join_size, optimize_chain
from repro.optimizer.planner import JoinPlan

CHAINS = [
    ["open_auction", "annotation", "text"],
    ["item", "desp", "text"],
    ["desp", "parlist", "listitem"],
    ["desp", "parlist", "listitem", "text"],
    ["item", "desp", "parlist", "listitem"],
]


class _ExactEstimator(Estimator):
    name = "EXACT"

    def estimate(self, ancestors, descendants, workspace=None):
        return Estimate(
            float(containment_join_size(ancestors, descendants)), self.name
        )


def _all_plans(lo: int, hi: int) -> list[JoinPlan]:
    if lo == hi:
        return [JoinPlan(lo, hi, 0.0)]
    plans = []
    for split in range(lo, hi):
        for left in _all_plans(lo, split):
            for right in _all_plans(split + 1, hi):
                plans.append(JoinPlan(lo, hi, 0.0, left, right))
    return plans


def _true_cost(plan: JoinPlan, sets, is_root=True) -> int:
    if plan.is_leaf:
        return 0
    own = 0 if is_root else chain_join_size(sets[plan.lo : plan.hi + 1])
    return (
        own
        + _true_cost(plan.left, sets, False)
        + _true_cost(plan.right, sets, False)
    )


def test_optimizer_plan_regret(benchmark, report, xmark_full):
    budget = SpaceBudget(800)
    methods = {
        "EXACT": lambda: _ExactEstimator(),
        "PH": lambda: PHHistogramEstimator(budget=budget),
        "PL": lambda: PLHistogramEstimator(budget=budget),
        "IM": lambda: IMSamplingEstimator(budget=budget, seed=17),
        "HYBRID": lambda: HybridEstimator(budget=budget, seed=17),
    }
    workspace = xmark_full.tree.workspace()

    sets0 = [xmark_full.node_set(tag) for tag in CHAINS[0]]
    benchmark.pedantic(
        lambda: optimize_chain(sets0, methods["PL"](), workspace),
        rounds=3,
        iterations=1,
    )

    rows = []
    regrets: dict[str, list[float]] = {name: [] for name in methods}
    for tags in CHAINS:
        sets = [xmark_full.node_set(tag) for tag in tags]
        candidates = _all_plans(0, len(sets) - 1)
        costs = [( _true_cost(plan, sets), plan) for plan in candidates]
        optimal_cost = min(cost for cost, __ in costs)
        row = [" // ".join(tags), optimal_cost]
        for name, factory in methods.items():
            chosen = optimize_chain(sets, factory(), workspace)
            chosen_cost = _true_cost(chosen, sets)
            regret = (
                chosen_cost / optimal_cost if optimal_cost else 1.0
            )
            regrets[name].append(regret)
            row.append(regret)
        rows.append(row)
    report(
        "optimizer_plan_regret",
        format_table(
            ["chain", "optimal cost", *methods],
            rows,
            title="[xmark] plan regret (chosen true cost / optimal true "
                  "cost) per estimation method",
        ),
    )

    # The exact oracle must always find the optimum.
    assert all(regret == 1.0 for regret in regrets["EXACT"])
    # Good estimators keep mean regret near 1; the broken baseline (PH on
    # recursive sets) must not be better than IM.
    assert statistics.fmean(regrets["IM"]) < 1.6
    assert statistics.fmean(regrets["IM"]) <= (
        statistics.fmean(regrets["PH"]) + 1e-9
    )
