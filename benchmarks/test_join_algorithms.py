"""Performance of the exact join substrate (not a paper figure).

Times the three pair-producing containment joins and the count-only
oracle on a full-scale XMARK query, and checks they agree.  This is the
ground-truth machinery every other benchmark leans on, so its own cost
matters for total harness runtime.
"""

import pytest

from repro.join import (
    containment_join_size,
    merge_join,
    stack_tree_join,
)


@pytest.fixture(scope="module")
def operands(xmark_full):
    return xmark_full.node_set("item"), xmark_full.node_set("name")


def test_bench_stack_tree_join(benchmark, operands):
    a, d = operands
    pairs = benchmark.pedantic(
        stack_tree_join, args=(a, d), rounds=3, iterations=1
    )
    assert len(pairs) == containment_join_size(a, d)


def test_bench_merge_join(benchmark, operands):
    a, d = operands
    pairs = benchmark.pedantic(
        merge_join, args=(a, d), rounds=3, iterations=1
    )
    assert len(pairs) == containment_join_size(a, d)


def test_bench_count_only_oracle(benchmark, operands):
    a, d = operands
    size = benchmark(containment_join_size, a, d)
    assert size > 0
