"""Extension: XPath-predicate (semijoin) selectivities.

The intro's query ``//paper[appendix/table]`` needs the *semijoin*
cardinality — distinct ancestors with a match — rather than the full join
size.  This benchmark reports exact semijoin selectivities for XMARK
predicates and the accuracy of the sampling estimators extending
IM-DA-Est to that problem.
"""

import statistics

from repro.estimators.semijoin_sampling import (
    SemijoinAncestorsEstimator,
    SemijoinDescendantsEstimator,
)
from repro.experiments.report import format_table
from repro.join import (
    semijoin_ancestors_size,
    semijoin_descendants_size,
)

PREDICATES = [
    ("open_auction", "reserve"),   # //open_auction[reserve]
    ("item", "keyword"),           # //item[.//keyword]
    ("desp", "parlist"),           # //desp[parlist]
    ("listitem", "text"),          # //listitem[text]
]


def test_semijoin_selectivity(benchmark, report, bench_runs, xmark_full):
    a0 = xmark_full.node_set(PREDICATES[0][0])
    d0 = xmark_full.node_set(PREDICATES[0][1])
    benchmark(semijoin_ancestors_size, a0, d0)

    rows = []
    for anc_tag, desc_tag in PREDICATES:
        ancestors = xmark_full.node_set(anc_tag)
        descendants = xmark_full.node_set(desc_tag)
        true_a = semijoin_ancestors_size(ancestors, descendants)
        true_d = semijoin_descendants_size(ancestors, descendants)
        errors_a = []
        errors_d = []
        for seed in range(max(bench_runs, 3)):
            est_a = SemijoinAncestorsEstimator(
                num_samples=100, seed=seed
            ).estimate(ancestors, descendants)
            est_d = SemijoinDescendantsEstimator(
                num_samples=100, seed=seed
            ).estimate(ancestors, descendants)
            if true_a:
                errors_a.append(
                    abs(est_a.value - true_a) / true_a * 100.0
                )
            if true_d:
                errors_d.append(
                    abs(est_d.value - true_d) / true_d * 100.0
                )
        rows.append(
            [
                f"//{anc_tag}[.//{desc_tag}]",
                len(ancestors),
                true_a,
                true_a / len(ancestors) * 100.0,
                statistics.fmean(errors_a) if errors_a else 0.0,
                true_d,
                statistics.fmean(errors_d) if errors_d else 0.0,
            ]
        )
    report(
        "semijoin_selectivity",
        format_table(
            ["predicate", "|A|", "matching A", "selectivity %",
             "SEMI-A err %", "matching D", "SEMI-D err %"],
            rows,
            title="[xmark] XPath predicate selectivities via semijoin "
                  "sampling (100 samples)",
        ),
    )
    # Sampling a 100-element subset of a proportion is a binomial
    # estimate: its error should stay well under 30% for selectivities
    # this size.
    for row in rows:
        assert row[4] < 30.0, row[0]
        assert row[6] < 30.0, row[0]
