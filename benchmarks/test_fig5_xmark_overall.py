"""Figure 5: overall performance on XMARK (PH/PL/IM/PM at 200/400/800 B).

Reproduction targets (Section 6.2):

* IM achieves the best accuracy of the four at every budget;
* sampling methods (IM, PM) beat histogram methods overall;
* PH blows up on the recursive-ancestor queries Q6-Q8 (the paper reports
  1600%-37500%) while PL stays bounded.

The benchmark times one full workload evaluation at the 400-byte budget.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import xmark_queries
from repro.experiments.harness import evaluate, paper_methods
from repro.experiments.overall import OverallResult


def test_fig5_xmark_overall(benchmark, report, bench_runs, bench_scale,
                            xmark_full):
    queries = xmark_queries()

    def run_one_budget():
        return evaluate(
            xmark_full,
            queries,
            paper_methods(SpaceBudget(400)),
            runs=bench_runs,
            seed=0,
        )

    benchmark.pedantic(run_one_budget, rounds=1, iterations=1)

    panels = []
    for nbytes in (200, 400, 800):
        rows = evaluate(
            xmark_full,
            queries,
            paper_methods(SpaceBudget(nbytes)),
            runs=bench_runs,
            seed=0,
        )
        panels.append(OverallResult("xmark", SpaceBudget(nbytes), rows))
    report(
        "fig5_xmark_overall",
        "\n\n".join(panel.render() for panel in panels),
    )

    # Shape assertions on the 800-byte panel.
    final = panels[-1].rows
    mean = {
        method: statistics.fmean(row.errors[method] for row in final)
        for method in ("PH", "PL", "IM", "PM")
    }
    assert mean["IM"] == min(mean.values()), "IM must be the most accurate"
    assert mean["IM"] < 25.0
    # The PH blow-up magnitude grows with per-cell density, i.e. with the
    # document scale: thousands of percent at scale 1.0 (paper:
    # 1600%-37500%), proportionally less on reduced-scale smoke runs.
    blow_up_threshold = max(300.0, 1000.0 * min(bench_scale, 1.0))
    nested = [row for row in final if row.query.id in ("Q6", "Q7", "Q8")]
    for row in nested:
        assert row.errors["PH"] > blow_up_threshold, (
            f"{row.query.id} should blow up"
        )
        assert row.errors["PL"] < 150.0, (
            f"PL must stay bounded on {row.query.id}"
        )
