"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper on the
full-scale (Table 2-calibrated) datasets and writes the reproduced
rows/series to ``results/<name>.txt`` (also echoed to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to watch).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — dataset scale factor (default 1.0).
* ``REPRO_BENCH_RUNS``  — repetitions for sampling methods (default 5).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.data import get_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "5"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_runs() -> int:
    return BENCH_RUNS


@pytest.fixture(scope="session")
def xmark_full():
    return get_dataset("xmark", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def dblp_full():
    return get_dataset("dblp", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def xmach_full():
    return get_dataset("xmach", scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def report():
    """Write a reproduction report to results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} (saved to {path}) =====")
        print(text)

    return write
