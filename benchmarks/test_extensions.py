"""Extension benchmarks: equi-depth bucketing, maintenance, twig queries.

* equi-depth vs equi-width PL bucketing — Section 4.1 suggests "carefully
  selected" boundaries could firm up the uniformity assumption; measured
  on the real workloads the choice barely matters, *consistent with the
  paper's own Figure 7 finding*: PL's residual error is correlation-
  dominated, so no boundary placement rescues it.
* incremental statistics maintenance — insert/delete-maintained PL
  histograms and T-trees must match batch builds exactly, at O(1)-ish
  update cost.
* twig estimation — composing the paper's pairwise estimates over
  branching patterns (the ``//paper[appendix/table]`` shape).
"""

import statistics

from repro.datasets.workloads import xmark_queries
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.report import format_table
from repro.join import containment_join_size
from repro.maintenance import DynamicTTree, IncrementalPLHistogram
from repro.models.position import turning_points
from repro.optimizer.twig import estimate_twig_size, twig, twig_match_count


def test_ablation_equi_depth_bucketing(benchmark, report, xmark_full):
    workspace = xmark_full.tree.workspace()
    queries = xmark_queries()
    a0, d0 = queries[0].operands(xmark_full)
    benchmark.pedantic(
        lambda: PLHistogramEstimator(
            num_buckets=20, bucketing="equi-depth"
        ).estimate(a0, d0, workspace),
        rounds=3,
        iterations=1,
    )
    rows = []
    for query in queries:
        a, d = query.operands(xmark_full)
        true = containment_join_size(a, d)
        width_err = (
            PLHistogramEstimator(num_buckets=20)
            .estimate(a, d, workspace)
            .relative_error(true)
        )
        depth_err = (
            PLHistogramEstimator(num_buckets=20, bucketing="equi-depth")
            .estimate(a, d, workspace)
            .relative_error(true)
        )
        rows.append([query.id, true, width_err, depth_err])
    report(
        "ablation_equi_depth",
        format_table(
            ["query", "true size", "equi-width err %", "equi-depth err %"],
            rows,
            title="[xmark] PL bucket-boundary ablation (20 buckets)",
        ),
    )
    # The negative result, asserted: boundary placement changes errors by
    # small margins only — correlation, not resolution, dominates
    # (matching the paper's bucket-count insensitivity finding).
    for __, ___, width_err, depth_err in rows:
        assert abs(width_err - depth_err) < 25.0


def test_maintenance_matches_batch(benchmark, report, xmark_full):
    workspace = xmark_full.tree.workspace()
    ancestors = xmark_full.node_set("desp")
    descendants = xmark_full.node_set("text")

    def maintain_all():
        anc = IncrementalPLHistogram(workspace, 20)
        for element in ancestors:
            anc.insert(element)
        return anc

    anc_incremental = benchmark.pedantic(
        maintain_all, rounds=1, iterations=1
    )
    desc_incremental = IncrementalPLHistogram(workspace, 20)
    for element in descendants:
        desc_incremental.insert(element)

    estimator = PLHistogramEstimator(num_buckets=20)
    live = estimator.estimate_from_histograms(
        anc_incremental.ancestor_histogram(),
        desc_incremental.descendant_histogram(),
    )
    batch = estimator.estimate(ancestors, descendants, workspace)
    dynamic = DynamicTTree.from_node_set(ancestors)
    matches_static = dynamic.turning_points() == turning_points(ancestors)
    report(
        "maintenance_consistency",
        format_table(
            ["check", "value"],
            [
                ["batch PL estimate", batch.value],
                ["incrementally maintained PL estimate", live.value],
                ["dynamic T-tree == static turning points",
                 str(matches_static)],
                ["maintained elements", len(anc_incremental)],
            ],
            title="Statistics maintenance vs batch builds (desp // text)",
        ),
    )
    assert abs(live.value - batch.value) < 1e-6 * max(1.0, batch.value)
    assert matches_static


def test_twig_estimation(benchmark, report, bench_runs, xmark_full):
    patterns = [
        twig("open_auction", twig("annotation", "text")),
        twig("open_auction", "reserve", "bidder"),
        twig("item", twig("desp", "parlist"), "mailbox"),
        twig("desp", twig("parlist", "listitem")),
    ]
    provider = xmark_full.node_set
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: twig_match_count(provider, patterns[0]),
        rounds=3,
        iterations=1,
    )
    rows = []
    for pattern in patterns:
        exact = twig_match_count(provider, pattern)
        errors = []
        for seed in range(max(bench_runs, 3)):
            estimator = IMSamplingEstimator(num_samples=100, seed=seed)
            estimate = estimate_twig_size(
                provider, pattern, estimator, workspace
            )
            if exact:
                errors.append(abs(estimate - exact) / exact * 100.0)
        rows.append(
            [str(pattern), exact,
             statistics.fmean(errors) if errors else 0.0]
        )
    report(
        "twig_estimation",
        format_table(
            ["pattern", "exact embeddings", "IM-composed est err %"],
            rows,
            title="[xmark] twig cardinality estimation "
                  "(pairwise IM estimates + independence)",
        ),
    )
    for __, exact, error in rows:
        assert exact > 0
        assert error < 120.0  # independence assumption costs accuracy,
        # but estimates stay the right order of magnitude
