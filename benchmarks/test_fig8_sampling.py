"""Figure 8: sampling accuracy vs space on XMARK.

(a) IM error vs sample count, (b) PM error vs sample count, (c) IM vs PM
at 100 samples.  Reproduction targets (Section 6.4):

* IM steadily improves with more samples; PM fluctuates;
* IM beats PM on every query (its additive error is O(|D|) vs O(w));
* both stay far below the histogram methods.

Aggregation note: the paper averages "over multiple runs under the same
setting".  We report the conventional mean of per-run relative errors
(primary) plus the error of the mean estimate (secondary) — the latter
converges to 0 for these unbiased estimators and reproduces the paper's
near-zero IM numbers.
"""

import statistics

from repro.datasets.workloads import xmark_queries
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.experiments.harness import MethodSpec, evaluate
from pathlib import Path

from repro.experiments.export import export_series

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"
from repro.experiments.report import format_table
from repro.experiments.sampling import (
    SAMPLE_SWEEP,
    run_sample_sweep,
    run_sampling_comparison,
)


def test_fig8a_im_sample_sweep(benchmark, report, bench_scale, bench_runs,
                               xmark_full):
    a, d = xmark_queries()[0].operands(xmark_full)
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: IMSamplingEstimator(num_samples=100, seed=0).estimate(
            a, d, workspace
        ),
        rounds=5,
        iterations=1,
    )
    sweep = run_sample_sweep(
        "xmark", "IM", SAMPLE_SWEEP, scale=bench_scale, runs=bench_runs
    )
    report("fig8a_im_sweep", sweep.render())
    export_series(RESULTS_DIR / "csv" / "fig8a_im_sweep.csv", sweep.series,
                  x_label="samples", y_label="relative_error_pct")

    # Steady improvement: error at 100 samples <= error at 25, per query
    # on the aggregate.
    at_25 = statistics.fmean(p[0][1] for p in sweep.series.values())
    at_100 = statistics.fmean(p[-1][1] for p in sweep.series.values())
    if bench_runs >= 3:  # the trend needs averaging to rise above noise
        assert at_100 < at_25
    assert at_100 < 25.0


def test_fig8b_pm_sample_sweep(benchmark, report, bench_scale, bench_runs,
                               xmark_full):
    a, d = xmark_queries()[0].operands(xmark_full)
    workspace = xmark_full.tree.workspace()
    benchmark.pedantic(
        lambda: PMSamplingEstimator(num_samples=100, seed=0).estimate(
            a, d, workspace
        ),
        rounds=5,
        iterations=1,
    )
    sweep = run_sample_sweep(
        "xmark", "PM", SAMPLE_SWEEP, scale=bench_scale, runs=bench_runs
    )
    report("fig8b_pm_sweep", sweep.render())
    export_series(RESULTS_DIR / "csv" / "fig8b_pm_sweep.csv", sweep.series,
                  x_label="samples", y_label="relative_error_pct")

    # PM is noisier than IM but still produces finite errors everywhere.
    for query_id, points in sweep.series.items():
        for __, error in points:
            assert error < 500.0, query_id


def test_fig8c_im_vs_pm(benchmark, report, bench_scale, bench_runs,
                        xmark_full):
    queries = xmark_queries()
    workspace = xmark_full.tree.workspace()

    def one_im_run():
        estimator = IMSamplingEstimator(num_samples=100, seed=1)
        return [
            estimator.estimate(*q.operands(xmark_full), workspace).value
            for q in queries
        ]

    benchmark.pedantic(one_im_run, rounds=1, iterations=1)
    report(
        "fig8c_im_vs_pm",
        run_sampling_comparison(
            "xmark", samples=100, scale=bench_scale, runs=bench_runs
        ),
    )

    rows = evaluate(
        xmark_full,
        queries,
        [
            MethodSpec(
                "IM",
                lambda seed: IMSamplingEstimator(num_samples=100, seed=seed),
            ),
            MethodSpec(
                "PM",
                lambda seed: PMSamplingEstimator(num_samples=100, seed=seed),
            ),
        ],
        runs=bench_runs,
        seed=0,
    )
    im_mean = statistics.fmean(row.errors["IM"] for row in rows)
    pm_mean = statistics.fmean(row.errors["PM"] for row in rows)
    assert im_mean < pm_mean, "IM must beat PM on average (Section 5.2)"

    # Secondary report: error-of-mean aggregation (paper-style averaging)
    # shows the unbiasedness of both estimators.
    rows_mean = evaluate(
        xmark_full,
        queries,
        [
            MethodSpec(
                "IM",
                lambda seed: IMSamplingEstimator(num_samples=100, seed=seed),
            ),
            MethodSpec(
                "PM",
                lambda seed: PMSamplingEstimator(num_samples=100, seed=seed),
            ),
        ],
        runs=max(bench_runs * 4, 20),
        seed=0,
        aggregation="error_of_mean",
    )
    report(
        "fig8c_error_of_mean",
        format_table(
            ["query", "true size", "IM", "PM"],
            [
                [r.query.id, r.true_size, r.errors["IM"], r.errors["PM"]]
                for r in rows_mean
            ],
            title=(
                "[xmark] IM vs PM, error of the *mean* estimate over "
                f"{max(bench_runs * 4, 20)} runs (unbiasedness view)"
            ),
        ),
    )
