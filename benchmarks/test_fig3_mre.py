"""Figure 3: MRE vs cov for cov in (1, 10].

The paper's figure plots Equation 2's sawtooth: MRE is periodic with
period 1, zero at integer cov, and the per-period maximum decreases as
cov grows (and is unbounded for cov < 1).  The benchmark times the curve
computation; the report prints the per-period maxima and sample points.
"""

from repro.estimators.mre import maximum_relative_error, mre_series
from repro.experiments.report import format_series, format_table


def test_fig3_mre_curve(benchmark, report):
    points = benchmark(mre_series, 1.0, 10.0, 0.001)

    maxima = []
    for period in range(1, 10):
        values = [
            error for cov, error in points if period <= cov < period + 1
        ]
        maxima.append((float(period), max(values) * 100.0))

    sample_points = [
        (cov, maximum_relative_error(cov) * 100.0)
        for cov in (1.0, 1.5, 2.0, 2.5, 3.5, 5.5, 9.5)
    ]
    lines = [
        "Figure 3: MRE (%) vs cov (sawtooth, unbounded below cov=1)",
        format_series("per-period maxima", maxima),
        format_series("sample points   ", sample_points),
        "",
        format_table(
            ["property", "value"],
            [
                ["MRE at integer cov", 0.0],
                ["MRE at cov=1.5 (paper: ~50%)", sample_points[1][1]],
                ["maxima monotonically decreasing",
                 str(maxima == sorted(maxima, key=lambda p: -p[1]))],
                ["MRE for 0 < cov < 1", "unbounded"],
            ],
        ),
    ]
    report("fig3_mre", "\n".join(lines))

    assert maxima[0][1] > maxima[-1][1]
    assert maximum_relative_error(2.0) == 0.0
