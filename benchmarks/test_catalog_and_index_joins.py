"""System-level benchmarks: the statistics catalog and index-assisted joins.

* Catalog: build cost and size for every XMARK tag under the paper's
  budgets, then plan-time estimation accuracy with *no base-data access*
  (histogram mode = PL synopses; sample mode = two-sample estimation).
* Index joins: XR-tree / B+-tree probing vs the stack-tree merge when one
  operand is selective — the scenario the XR-tree exists for.
"""

import statistics
import time

from repro.catalog import StatisticsCatalog
from repro.core.budget import SpaceBudget
from repro.datasets.workloads import xmark_queries
from repro.experiments.report import format_table
from repro.index.xrtree import XRTree
from repro.join import (
    containment_join_size,
    probe_ancestors_join,
    stack_tree_join,
)


def test_catalog_estimation(benchmark, report, bench_runs, xmark_full):
    budget = SpaceBudget(800)
    queries = xmark_queries()

    def build_catalog():
        return StatisticsCatalog(xmark_full.tree, budget)

    catalog = benchmark.pedantic(build_catalog, rounds=1, iterations=1)

    rows = []
    for query in queries:
        a, d = query.operands(xmark_full)
        true = containment_join_size(a, d)
        hist_err = catalog.estimate_join(
            query.ancestor, query.descendant
        ).relative_error(true)
        sample_errors = []
        for seed in range(max(bench_runs, 3)):
            sample_catalog = StatisticsCatalog(
                xmark_full.tree,
                budget,
                method="sample",
                seed=seed,
                tags=[query.ancestor, query.descendant],
            )
            sample_errors.append(
                sample_catalog.estimate_join(
                    query.ancestor, query.descendant
                ).relative_error(true)
            )
        rows.append(
            [query.id, true, hist_err, statistics.fmean(sample_errors)]
        )
    report(
        "catalog_estimation",
        format_table(
            ["query", "true size", "catalog-PL err %", "catalog-2sample err %"],
            rows,
            title=(
                f"[xmark] plan-time estimation from an {catalog.nbytes()}"
                f"-byte catalog ({len(catalog)} tags, 800 B each)"
            ),
        ),
    )
    # The catalog must answer every workload query without base access,
    # with histogram accuracy comparable to direct PL runs.
    hist_mean = statistics.fmean(r[2] for r in rows)
    assert hist_mean < 60.0
    assert catalog.nbytes() < len(catalog) * (budget.nbytes + 16)


def test_index_join_selectivity(benchmark, report, xmark_full):
    """XR-tree probing wins when the driving side is small."""
    ancestors = xmark_full.node_set("open_auction")
    sparse_d = xmark_full.node_set("reserve")     # selective driver
    dense_d = xmark_full.node_set("text")         # non-selective

    xrtree = XRTree(ancestors)
    benchmark.pedantic(
        lambda: probe_ancestors_join(xrtree, sparse_d),
        rounds=3,
        iterations=1,
    )

    def timed(callable_):
        start = time.perf_counter()
        result = callable_()
        return (time.perf_counter() - start) * 1000.0, len(result)

    probe_ms, probe_pairs = timed(
        lambda: probe_ancestors_join(xrtree, sparse_d)
    )
    merge_ms, merge_pairs = timed(
        lambda: stack_tree_join(ancestors, sparse_d)
    )
    dense_probe_ms, __ = timed(
        lambda: probe_ancestors_join(xrtree, dense_d)
    )
    dense_merge_ms, __ = timed(
        lambda: stack_tree_join(ancestors, dense_d)
    )
    report(
        "index_join_selectivity",
        format_table(
            ["scenario", "probe (XR-tree) ms", "stack-tree ms", "pairs"],
            [
                ["selective driver (reserve)", probe_ms, merge_ms,
                 probe_pairs],
                ["non-selective driver (text)", dense_probe_ms,
                 dense_merge_ms, "-"],
            ],
            title="Index-assisted vs merge containment join "
                  "(prebuilt XR-tree on open_auction)",
        ),
    )
    assert probe_pairs == merge_pairs
