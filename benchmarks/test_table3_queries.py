"""Table 3: the query workloads, with exact result sizes.

The paper's table lists the ancestor/descendant predicate of each query;
we additionally report the exact join size on the generated documents
(the ground truth every figure's relative errors are computed against).
The benchmark times the exact-size oracle over a whole workload.
"""

import pytest

from repro.datasets.workloads import ALL_WORKLOADS
from repro.experiments.report import format_table
from repro.join import containment_join_size


@pytest.mark.parametrize(
    "name,fixture",
    [
        ("xmark", "xmark_full"),
        ("dblp", "dblp_full"),
        ("xmach", "xmach_full"),
    ],
)
def test_table3_queries(name, fixture, request, benchmark, report):
    dataset = request.getfixturevalue(fixture)
    queries = ALL_WORKLOADS[name]

    def exact_sizes():
        return [
            containment_join_size(*query.operands(dataset))
            for query in queries
        ]

    sizes = benchmark(exact_sizes)
    rows = [
        [q.id, q.ancestor, q.descendant, size]
        for q, size in zip(queries, sizes)
    ]
    report(
        f"table3_{name}",
        format_table(
            ["query", "ancestor", "descendant", "exact join size"],
            rows,
            title=f"Table 3 ({name}): queries and ground-truth sizes",
        ),
    )
    assert all(size > 0 for size in sizes)
