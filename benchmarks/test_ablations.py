"""Ablation benchmarks for the design choices called out in DESIGN.md §6.

1. PL bucket length statistic: clipped vs full interval length.
2. Stabbing-count backend for IM-DA-Est: rank oracle vs T-tree vs XR-tree.
3. Boosting: raw PM estimate vs median-of-means.
4. Coverage mode: global (the criticized assumption) vs local.
5. IM sampling with vs without replacement near m = |D|.
"""

import statistics

from repro.estimators.boosting import BoostedEstimator
from repro.estimators.coverage_histogram import CoverageHistogramEstimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.experiments.report import format_table
from repro.join import containment_join_size


def test_ablation_pl_length_mode(benchmark, report, xmark_full):
    """Clipped in-bucket lengths vs raw lengths for boundary crossers."""
    workspace = xmark_full.tree.workspace()
    a = xmark_full.node_set("open_auction")
    d = xmark_full.node_set("text")
    true = containment_join_size(a, d)
    benchmark.pedantic(
        lambda: PLHistogramEstimator(num_buckets=20).estimate(
            a, d, workspace
        ),
        rounds=3,
        iterations=1,
    )
    rows = []
    for buckets in (100, 500, 1000, 2000, 5000, 10000):
        clipped = PLHistogramEstimator(
            num_buckets=buckets, length_mode="clipped"
        ).estimate(a, d, workspace)
        full = PLHistogramEstimator(
            num_buckets=buckets, length_mode="full"
        ).estimate(a, d, workspace)
        rows.append(
            [
                buckets,
                clipped.relative_error(true),
                full.relative_error(true),
            ]
        )
    report(
        "ablation_pl_length_mode",
        format_table(
            ["buckets", "clipped err %", "full err %"],
            rows,
            title="PL length statistic ablation (open_auction // text)",
        ),
    )
    # Once bucket width approaches the interval length most intervals
    # cross boundaries; raw lengths then over-count massively while
    # clipped lengths stay stable (at full scale: ~2% vs >100% at 10k
    # buckets).
    finest = rows[-1]
    assert finest[1] < finest[2], "clipped must win at fine bucketing"
    clipped_errors = [r[1] for r in rows]
    assert max(clipped_errors) < 10 * (min(clipped_errors) + 1.0)


def test_ablation_im_backend_rank(benchmark, xmark_full):
    a, d = _probe_operands(xmark_full)
    estimator = IMSamplingEstimator(num_samples=100, seed=0, backend="rank")
    benchmark(estimator.estimate, a, d, xmark_full.tree.workspace())


def test_ablation_im_backend_ttree(benchmark, xmark_full):
    a, d = _probe_operands(xmark_full)
    estimator = IMSamplingEstimator(num_samples=100, seed=0, backend="ttree")
    benchmark.pedantic(
        estimator.estimate,
        args=(a, d, xmark_full.tree.workspace()),
        rounds=3,
        iterations=1,
    )


def test_ablation_im_backend_xrtree(benchmark, xmark_full):
    a, d = _probe_operands(xmark_full)
    estimator = IMSamplingEstimator(
        num_samples=100, seed=0, backend="xrtree"
    )
    benchmark.pedantic(
        estimator.estimate,
        args=(a, d, xmark_full.tree.workspace()),
        rounds=3,
        iterations=1,
    )


def _probe_operands(dataset):
    return dataset.node_set("desp"), dataset.node_set("text")


def test_ablation_boosting(benchmark, report, xmark_full):
    """Median-of-means vs raw PM on a high-variance query."""
    workspace = xmark_full.tree.workspace()
    a = xmark_full.node_set("open_auction")
    d = xmark_full.node_set("reserve")  # sparse: PM is noisy here
    true = containment_join_size(a, d)
    benchmark.pedantic(
        lambda: BoostedEstimator(
            PMSamplingEstimator(num_samples=100, seed=0), s1=3, s2=5
        ).estimate(a, d, workspace),
        rounds=1,
        iterations=1,
    )
    raw = [
        PMSamplingEstimator(num_samples=100, seed=s)
        .estimate(a, d, workspace)
        .value
        for s in range(20)
    ]
    boosted = [
        BoostedEstimator(
            PMSamplingEstimator(num_samples=100, seed=500 + s), s1=3, s2=5
        )
        .estimate(a, d, workspace)
        .value
        for s in range(20)
    ]
    report(
        "ablation_boosting",
        format_table(
            ["variant", "mean estimate", "stdev", "true"],
            [
                ["raw PM", statistics.fmean(raw), statistics.pstdev(raw),
                 true],
                ["boosted (3x5)", statistics.fmean(boosted),
                 statistics.pstdev(boosted), true],
            ],
            title="Boosting ablation (open_auction // reserve)",
        ),
    )
    assert statistics.pstdev(boosted) <= statistics.pstdev(raw)


def test_ablation_coverage_mode(benchmark, report, dblp_full):
    """Global vs local coverage statistics (the Section 2.1 criticism)."""
    workspace = dblp_full.tree.workspace()
    a = dblp_full.node_set("inproceeding")
    d = dblp_full.node_set("author")
    true = containment_join_size(a, d)
    benchmark.pedantic(
        lambda: CoverageHistogramEstimator(
            num_buckets=20, mode="local"
        ).estimate(a, d, workspace),
        rounds=3,
        iterations=1,
    )
    global_err = (
        CoverageHistogramEstimator(num_buckets=20, mode="global")
        .estimate(a, d, workspace)
        .relative_error(true)
    )
    local_err = (
        CoverageHistogramEstimator(num_buckets=20, mode="local")
        .estimate(a, d, workspace)
        .relative_error(true)
    )
    report(
        "ablation_coverage_mode",
        format_table(
            ["mode", "relative error %"],
            [["global (criticized)", global_err], ["local", local_err]],
            title="Coverage statistics ablation (inproceeding // author)",
        ),
    )
    assert local_err < global_err


def test_ablation_im_replacement(benchmark, report, xmark_full):
    """Without replacement dominates as m approaches |D|.

    Uses parlist // listitem: its per-descendant ancestor counts vary
    (1..nesting depth), so the estimator has real variance — on a
    constant-count query like open_auction // reserve both variants are
    trivially exact.
    """
    workspace = xmark_full.tree.workspace()
    a = xmark_full.node_set("parlist")
    d = xmark_full.node_set("listitem")
    true = containment_join_size(a, d)
    m = max(10, int(len(d) * 0.8))
    benchmark.pedantic(
        lambda: IMSamplingEstimator(num_samples=m, seed=0).estimate(
            a, d, workspace
        ),
        rounds=3,
        iterations=1,
    )
    without = [
        IMSamplingEstimator(num_samples=m, seed=s)
        .estimate(a, d, workspace)
        .relative_error(true)
        for s in range(15)
    ]
    with_repl = [
        IMSamplingEstimator(num_samples=m, seed=s, replace=True)
        .estimate(a, d, workspace)
        .relative_error(true)
        for s in range(15)
    ]
    report(
        "ablation_im_replacement",
        format_table(
            ["variant", "mean error %"],
            [
                ["without replacement", statistics.fmean(without)],
                ["with replacement", statistics.fmean(with_repl)],
            ],
            title=f"IM sampling replacement ablation (m={m}, |D|={len(d)})",
        ),
    )
    assert statistics.fmean(without) <= statistics.fmean(with_repl) + 1e-9
