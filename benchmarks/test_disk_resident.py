"""Disk-resident probing cost (the Section 5.3.1 discussion).

The paper argues IM-DA-Est is cheap in a DBMS because each probe costs
"only several page accesses in the worst case" and probing warms the
buffer for the subsequent containment join.  This benchmark serializes
the full-scale XMARK operands to page files, runs IM-DA-Est purely
against the paged representation, and reports page accesses and misses
per probe for cold and warm buffers.
"""

from repro.experiments.report import format_table
from repro.join import containment_join_size
from repro.storage import (
    DiskNodeSet,
    im_da_est_disk,
    stack_tree_join_disk,
    write_node_set,
)


def test_disk_resident_probe_cost(benchmark, report, tmp_path_factory,
                                  xmark_full):
    base = tmp_path_factory.mktemp("disk_bench")
    ancestors = xmark_full.node_set("desp")
    descendants = xmark_full.node_set("text")
    true = containment_join_size(ancestors, descendants)
    write_node_set(base / "a.db", ancestors)
    write_node_set(base / "d.db", descendants)

    rows = []
    with DiskNodeSet(base / "a.db", buffer_capacity=32) as a:
        with DiskNodeSet(base / "d.db", buffer_capacity=32) as d:
            cold = im_da_est_disk(a, d, num_samples=100, seed=1)
            warm = im_da_est_disk(a, d, num_samples=100, seed=2)

            def probe_run():
                return im_da_est_disk(a, d, num_samples=100, seed=3)

            timed = benchmark.pedantic(probe_run, rounds=3, iterations=1)
            full_join = stack_tree_join_disk(a, d)

    for label, result in (("cold buffer", cold), ("warm buffer", warm)):
        rows.append(
            [
                label,
                result.estimate,
                abs(result.estimate - true) / true * 100.0,
                result.page_accesses,
                result.accesses_per_probe,
                result.misses_per_probe,
            ]
        )
    rows.append(
        [
            "full merge join (for scale)",
            full_join.pair_count,
            0.0,
            full_join.total_page_misses,
            "-",
            "-",
        ]
    )
    report(
        "disk_resident_probes",
        format_table(
            ["state", "estimate", "error %", "page accesses",
             "accesses/probe", "misses/probe"],
            rows,
            title=(
                f"IM-DA-Est over page files (|A|={len(ancestors)}, "
                f"|D|={len(descendants)}, true={true}, m=100, "
                "32-page buffer)"
            ),
        ),
    )

    # "Several page accesses in the worst case": two binary searches over
    # ~2 * ceil(log2(pages)) pages each; far below a scan.
    assert cold.accesses_per_probe < 64
    # Warm runs hit the buffer more often than cold ones.
    assert warm.misses_per_probe <= cold.misses_per_probe
    assert timed.samples == 100
