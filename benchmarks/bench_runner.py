#!/usr/bin/env python
"""Performance benchmark runner: kernels, caching, parallel harness.

Times the three layers of the performance architecture against the
retained reference implementations and writes ``BENCH_kernels.json``:

* **kernels** — per-kernel build timings (covering table, turning
  points, PL ancestor histogram, PH cell histogram, interval merge) for
  the loop ``*_reference`` path versus the numpy path;
* **fig7_sweep** — the Figure 7 histogram sweep (build + estimate over
  every XMARK query and bucket count) under reference kernels, under
  vectorized kernels, and under vectorized kernels plus the summary
  cache.  The headline ``speedup`` compares reference to
  vectorized+cache.  Both paths are also checked for *identical* sweep
  output, so a kernel regression fails the run outright;
* **parallel** — the same sweep fanned out over worker processes.

Usage::

    python benchmarks/bench_runner.py            # full (scale 1.0)
    python benchmarks/bench_runner.py --quick    # CI smoke (scale 0.1)
    python benchmarks/bench_runner.py --min-speedup 5

Exits non-zero when the reference/vectorized outputs disagree or when
the sweep speedup falls below ``--min-speedup``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro import perf  # noqa: E402
from repro.estimators.ph_histogram import cell_histogram  # noqa: E402
from repro.estimators.pl_histogram import PLHistogram  # noqa: E402
from repro.estimators.coverage_histogram import merged_intervals  # noqa: E402
from repro.experiments.data import get_dataset  # noqa: E402
from repro.experiments.histograms import (  # noqa: E402
    BUCKET_SWEEP,
    run_bucket_sweep,
)
from repro.models.position import (  # noqa: E402
    covering_table,
    turning_points,
)
from repro.perf.cache import SummaryCache  # noqa: E402

QUICK_SCALE = 0.1
QUICK_BUCKETS = (5, 15, 25)
FULL_SCALE = 1.0


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pair(callable_, repeats: int) -> dict[str, float]:
    """Time ``callable_`` under reference kernels and vectorized kernels."""
    with perf.reference_kernels():
        reference = _best_of(callable_, repeats)
    vectorized = _best_of(callable_, repeats)
    return {
        "reference_s": reference,
        "vectorized_s": vectorized,
        "speedup": reference / vectorized if vectorized > 0 else float("inf"),
    }


def bench_kernels(dataset, repeats: int) -> dict[str, dict[str, float]]:
    """Microbenchmark each vectorized kernel on real XMARK node sets."""
    workspace = dataset.tree.workspace()
    intervals = dataset.node_set("text")  # large, self-nesting set
    results: dict[str, dict[str, float]] = {}
    results["covering_table"] = _timed_pair(
        lambda: covering_table(intervals, workspace), repeats
    )
    results["turning_points"] = _timed_pair(
        lambda: turning_points(intervals), repeats
    )
    results["pl_build_ancestor"] = _timed_pair(
        lambda: PLHistogram.build_ancestor(intervals, workspace, 20),
        repeats,
    )
    results["ph_cell_histogram"] = _timed_pair(
        lambda: cell_histogram(intervals, workspace, 7), repeats
    )
    results["merged_intervals"] = _timed_pair(
        lambda: merged_intervals(intervals), repeats
    )
    return results


def _sweep(scale: float, buckets, workers=None, cache=None):
    results = []
    for method in ("PL", "PH"):
        sweep = run_bucket_sweep(
            "xmark",
            method,
            bucket_counts=buckets,
            scale=scale,
            workers=workers,
            cache=cache if cache is not None else SummaryCache(),
        )
        results.append(sweep.series)
    return results


def bench_fig7_sweep(scale: float, buckets) -> dict:
    """Build + estimate over the Figure 7 sweep, reference vs vectorized."""
    with perf.reference_kernels():
        start = time.perf_counter()
        reference_series = _sweep(scale, buckets)
        reference_s = time.perf_counter() - start

    start = time.perf_counter()
    vector_series = _sweep(scale, buckets, cache=SummaryCache(maxsize=1))
    vectorized_s = time.perf_counter() - start
    # A maxsize-1 cache is effectively uncached; now with a real cache.
    cache = SummaryCache()
    start = time.perf_counter()
    cached_series = _sweep(scale, buckets, cache=cache)
    cached_s = time.perf_counter() - start

    identical = (
        reference_series == vector_series == cached_series
    )
    return {
        "scale": scale,
        "bucket_counts": list(buckets),
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "vectorized_cached_s": cached_s,
        "speedup": reference_s / cached_s if cached_s > 0 else float("inf"),
        "identical_output": identical,
        "cache": cache.stats(),
    }


def bench_parallel(scale: float, runs: int) -> dict:
    """Fan a stochastic-heavy evaluation out over worker processes.

    The worker count adapts to the machine; on a single-core host both
    runs take the serial path and the reported speedup is ~1.0.
    """
    from repro.core.budget import SpaceBudget
    from repro.datasets.workloads import ALL_WORKLOADS
    from repro.experiments.harness import evaluate, paper_methods

    dataset = get_dataset("xmark", scale=scale)
    queries = ALL_WORKLOADS["xmark"]
    methods = paper_methods(SpaceBudget(800))
    workers = min(4, multiprocessing.cpu_count())
    start = time.perf_counter()
    serial_rows = evaluate(dataset, queries, methods, runs=runs, seed=3)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = evaluate(
        dataset, queries, methods, runs=runs, seed=3, workers=workers
    )
    workers_s = time.perf_counter() - start
    return {
        "runs": runs,
        "cpu_count": multiprocessing.cpu_count(),
        "workers": workers,
        "serial_s": serial_s,
        "workers_s": workers_s,
        "speedup": serial_s / workers_s if workers_s > 0 else float("inf"),
        "identical_rows": serial_rows == parallel_rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: scale {QUICK_SCALE}, bucket counts "
        f"{QUICK_BUCKETS}",
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale override"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the Fig. 7 sweep speedup reaches this factor",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_kernels.json",
        help="where to write the timing report",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the multiprocessing phase (slow on small machines)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else FULL_SCALE
    )
    buckets = QUICK_BUCKETS if args.quick else BUCKET_SWEEP
    repeats = 2 if args.quick else 3

    print(f"generating xmark at scale {scale} ...", flush=True)
    dataset = get_dataset("xmark", scale=scale)

    print("phase 1/3: kernel microbenchmarks", flush=True)
    kernels = bench_kernels(dataset, repeats)
    for name, timing in kernels.items():
        print(
            f"  {name:>20}: {timing['reference_s'] * 1e3:8.2f} ms -> "
            f"{timing['vectorized_s'] * 1e3:8.2f} ms "
            f"({timing['speedup']:.1f}x)"
        )

    print("phase 2/3: Fig. 7 histogram sweep (build + estimate)", flush=True)
    sweep = bench_fig7_sweep(scale, buckets)
    print(
        f"  reference {sweep['reference_s']:.2f} s, vectorized "
        f"{sweep['vectorized_s']:.2f} s, vectorized+cache "
        f"{sweep['vectorized_cached_s']:.2f} s "
        f"({sweep['speedup']:.1f}x), identical output: "
        f"{sweep['identical_output']}"
    )

    parallel = None
    if not args.skip_parallel:
        print("phase 3/3: parallel harness", flush=True)
        parallel = bench_parallel(scale, runs=5 if args.quick else 31)
        print(
            f"  serial {parallel['serial_s']:.2f} s, "
            f"{parallel['workers']} worker(s) "
            f"{parallel['workers_s']:.2f} s "
            f"({parallel['speedup']:.1f}x on {parallel['cpu_count']} "
            f"cpu(s)), identical rows: {parallel['identical_rows']}"
        )

    report = {
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "kernels": kernels,
        "fig7_sweep": sweep,
        "parallel": parallel,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not sweep["identical_output"]:
        print(
            "FAIL: reference and vectorized sweeps disagree",
            file=sys.stderr,
        )
        return 1
    if parallel is not None and not parallel["identical_rows"]:
        print(
            "FAIL: parallel evaluation rows differ from serial",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup is not None and sweep["speedup"] < args.min_speedup:
        print(
            f"FAIL: sweep speedup {sweep['speedup']:.2f}x below "
            f"required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
