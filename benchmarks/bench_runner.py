#!/usr/bin/env python
"""Performance benchmark runner: kernels, caching, parallel harness.

Times the three layers of the performance architecture against the
retained reference implementations and writes ``BENCH_kernels.json``:

* **kernels** — per-kernel build timings (covering table, turning
  points, PL ancestor histogram, PH cell histogram, interval merge) for
  the loop ``*_reference`` path versus the numpy path;
* **fig7_sweep** — the Figure 7 histogram sweep (build + estimate over
  every XMARK query and bucket count) under reference kernels, under
  vectorized kernels, and under vectorized kernels plus the summary
  cache.  The headline ``speedup`` compares reference to
  vectorized+cache.  Both paths are also checked for *identical* sweep
  output, so a kernel regression fails the run outright;
* **fused** — the fused single-pass probe kernels
  (:mod:`repro.kernels.fused`, under the active kernel backend) versus
  the batched probe path with a pre-built index: per-probe-backend
  micro timings with outputs checked bit-identical, gated by
  ``--min-fused-speedup``.  ``--only-fused`` runs just this phase (the
  CI numba-leg smoke job);
* **sampling** — the batched probe layer: per-backend micro timings
  (``estimate_trials`` + index cache versus sequential reference-mode
  ``estimate`` calls) and the Figure 8 sample-count sweeps for IM-DA-Est
  and PM-Est, reference versus batched, with bit-identical output
  asserted in both cases.  Also written standalone as
  ``BENCH_sampling.json``;
* **obs_overhead** — the same sweep with :mod:`repro.obs`
  instrumentation enabled (registry only, no sink) versus disabled;
  the enabled-but-unsinked overhead is the number the instrumentation
  layer promises to keep small;
* **parallel** — the same sweep fanned out over worker processes;
* **service** — the estimation service layer against the optimizer
  trace (:mod:`repro.service.bench`): micro-batched + memoized
  throughput versus sequential ``repro.api.estimate`` (identity-gated),
  plus the deadline and stress phases exercising the degradation
  ladder, and the sharding phase (``processes=K`` scatter/gather over
  the shared-memory worker pool versus one process, identity- and
  leak-gated; ``--min-shard-speedup`` gates the speedup on multi-core
  hosts).  Written standalone as ``BENCH_service.json``; the
  ``--min-service-speedup`` / ``--max-p99-ms`` /
  ``--max-deadline-miss-rate`` gates fail the run when the service
  regresses.  ``--only-service`` runs just this phase (the CI
  service-smoke job).  The phase always runs the service bench's own
  tuned workload (xmark at scale 0.4), independent of ``--quick`` — it
  is seconds-fast either way and the gated numbers stay comparable;
* **optimizer** — the plan-regret sweep
  (:mod:`repro.optimizer.regret`): every cardinality generator (the
  estimator lineup, the pessimistic UBOUND generator, the exact
  oracle) through the chain planner over the XMark/DBLP/XMach chain
  workloads, each plan scored by its *true* cost against the
  true-cost-optimal plan.  Written standalone as
  ``BENCH_optimizer.json``; the gates require the EXACT generator's
  regret to be 0 on every chain, the UBOUND generator to report zero
  underestimated plan segments, and (``--min-generators``) a minimum
  sweep width.  ``--only-optimizer`` runs just this phase (the CI
  optimizer-smoke job).  Like the service phase it runs its own tuned
  workload (scale 0.05), independent of ``--quick``;
* **router** — the closed-loop bench (:mod:`repro.router.bench`): a
  bandit router serving the Table 3 traces with a feedback store
  attached, scored as cumulative relative-error loss against every
  fixed method over the identical trace (same configs, same seeds),
  plus the correction model fitted on the trace's truth-paired
  records.  Written standalone as ``BENCH_router.json``; the gates
  require the router's gated regret within ``--max-router-regret`` of
  the best fixed method, the correction model to never worsen a
  held-out cell, and (``--min-correction-reduction``) a minimum best
  per-cell MRE reduction.  ``--only-router`` runs just this phase
  (the CI router-smoke job); fixed seed, independent of ``--quick``;
* **stream** — the streaming churn bench
  (:mod:`repro.stream.bench`): a seeded mutation feed applied through
  :class:`~repro.stream.LiveWorkspace` incremental maintenance versus
  a per-batch rebuild baseline (identity-checked, gated by
  ``--min-stream-speedup``), mixed read/write serving through
  ``EstimationService(live=...)`` under a per-request staleness bound
  (``--max-staleness-violation-rate`` gates the violation rate), and
  two-tenant cache isolation under churn (gated at zero cross-tenant
  invalidations).  Written standalone as ``BENCH_stream.json``;
  ``--only-stream`` runs just this phase (the CI stream-smoke job);
  fixed seed (``--stream-seed``), independent of ``--quick``.

Every measurement is recorded through a :class:`repro.obs`
``MetricsRegistry`` (as ``bench.*`` histograms) and the report's
``metrics`` section is that registry's snapshot, so ``BENCH_*.json``
and any telemetry stream agree by construction.  ``--telemetry FILE``
additionally streams each measurement (and the instrumented sweep's
per-call events) to ``FILE`` as JSONL for ``python -m repro
obs-report``.

Usage::

    python benchmarks/bench_runner.py            # full (scale 1.0)
    python benchmarks/bench_runner.py --quick    # CI smoke (scale 0.1)
    python benchmarks/bench_runner.py --min-speedup 5
    python benchmarks/bench_runner.py --min-sampling-speedup 5
    python benchmarks/bench_runner.py --min-fused-speedup 2
    python benchmarks/bench_runner.py --baseline BENCH_kernels.json
    python benchmarks/bench_runner.py --quick --telemetry telemetry.jsonl

Exits non-zero when the reference/vectorized (or reference/batched,
or batched/fused) outputs disagree, when a sweep speedup falls below
``--min-speedup`` / ``--min-sampling-speedup`` /
``--min-fused-speedup``, or — with ``--baseline`` — when any kernel's
speedup regressed more than 20% against a previous report.
"""

from __future__ import annotations

import argparse
import gc
import json
import multiprocessing
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro import obs  # noqa: E402
from repro import perf  # noqa: E402
from repro.estimators.ph_histogram import cell_histogram  # noqa: E402
from repro.estimators.pl_histogram import PLHistogram  # noqa: E402
from repro.estimators.coverage_histogram import (  # noqa: E402
    merged_interval_bounds,
)
from repro.experiments.data import get_dataset  # noqa: E402
from repro.experiments.histograms import (  # noqa: E402
    BUCKET_SWEEP,
    run_bucket_sweep,
)
from repro.models.position import (  # noqa: E402
    covering_table,
    turning_point_arrays,
)
from repro.perf.cache import SummaryCache  # noqa: E402
from repro.qa.bench_schema import validate_bench_report  # noqa: E402

QUICK_SCALE = 0.1
QUICK_BUCKETS = (5, 15, 25)
FULL_SCALE = 1.0

#: Every timing below lands in this registry as a ``bench.*`` histogram;
#: the JSON report's ``metrics`` section is its snapshot, so telemetry
#: and BENCH_*.json agree by construction.
REGISTRY = obs.MetricsRegistry()

#: Telemetry sink installed by ``--telemetry`` (module-level rather than
#: ambient: the timed sweeps must run *uninstrumented* except where the
#: obs-overhead phase enables observation deliberately).
_SINK: obs.TelemetrySink | None = None


def _record(name: str, seconds: float) -> None:
    """One benchmark measurement: registry histogram + telemetry event."""
    REGISTRY.histogram(f"bench.{name}").observe(seconds)
    if _SINK is not None:
        _SINK.emit({"event": "bench", "name": name, "seconds": seconds})


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pair(name: str, callable_, repeats: int) -> dict[str, float]:
    """Time ``callable_`` under reference kernels and vectorized kernels."""
    with perf.reference_kernels():
        reference = _best_of(callable_, repeats)
    vectorized = _best_of(callable_, repeats)
    _record(f"kernels.{name}.reference_s", reference)
    _record(f"kernels.{name}.vectorized_s", vectorized)
    return {
        "reference_s": reference,
        "vectorized_s": vectorized,
        "speedup": reference / vectorized if vectorized > 0 else float("inf"),
    }


def bench_kernels(dataset, repeats: int) -> dict[str, dict[str, float]]:
    """Microbenchmark each vectorized kernel on real XMARK node sets."""
    workspace = dataset.tree.workspace()
    intervals = dataset.node_set("text")  # large, self-nesting set
    results: dict[str, dict[str, float]] = {}
    results["covering_table"] = _timed_pair(
        "covering_table", lambda: covering_table(intervals, workspace),
        repeats,
    )
    # The turning-point and interval-merge kernels are timed in the
    # array form the hot paths consume (T-tree probe arrays, the cached
    # COV summary); the reference side of each pair runs the loop of
    # record plus the tuple-to-array conversion the old consumers paid.
    results["turning_points"] = _timed_pair(
        "turning_points", lambda: turning_point_arrays(intervals), repeats
    )
    results["pl_build_ancestor"] = _timed_pair(
        "pl_build_ancestor",
        lambda: PLHistogram.build_ancestor(intervals, workspace, 20),
        repeats,
    )
    results["ph_cell_histogram"] = _timed_pair(
        "ph_cell_histogram",
        lambda: cell_histogram(intervals, workspace, 7), repeats
    )
    results["merged_intervals"] = _timed_pair(
        "merged_intervals",
        lambda: merged_interval_bounds(intervals),
        repeats,
    )
    return results


def _sweep(scale: float, buckets, workers=None, cache=None):
    results = []
    for method in ("PL", "PH"):
        sweep = run_bucket_sweep(
            "xmark",
            method,
            bucket_counts=buckets,
            scale=scale,
            workers=workers,
            cache=cache if cache is not None else SummaryCache(),
        )
        results.append(sweep.series)
    return results


def bench_fig7_sweep(scale: float, buckets) -> dict:
    """Build + estimate over the Figure 7 sweep, reference vs vectorized."""
    with perf.reference_kernels():
        start = time.perf_counter()
        reference_series = _sweep(scale, buckets)
        reference_s = time.perf_counter() - start

    start = time.perf_counter()
    vector_series = _sweep(scale, buckets, cache=SummaryCache(maxsize=1))
    vectorized_s = time.perf_counter() - start
    # A maxsize-1 cache is effectively uncached; now with a real cache.
    cache = SummaryCache()
    start = time.perf_counter()
    cached_series = _sweep(scale, buckets, cache=cache)
    cached_s = time.perf_counter() - start

    identical = (
        reference_series == vector_series == cached_series
    )
    _record("fig7.reference_s", reference_s)
    _record("fig7.vectorized_s", vectorized_s)
    _record("fig7.vectorized_cached_s", cached_s)
    return {
        "scale": scale,
        "bucket_counts": list(buckets),
        "reference_s": reference_s,
        "vectorized_s": vectorized_s,
        "vectorized_cached_s": cached_s,
        "speedup": reference_s / cached_s if cached_s > 0 else float("inf"),
        "identical_output": identical,
        "cache": cache.stats(),
    }


def bench_fused(scale: float, repeats: int = 9) -> dict:
    """Fused single-pass probe kernels versus the batched probe path.

    The batched side is the pre-fusion steady state: a probe index
    (StabbingCounter / T-tree / XR-tree) already built and cached, a
    bulk ``count_many`` over the trial-batch points, then the reshape +
    reduce the estimators used to do themselves.  The fused side is one
    :func:`repro.kernels.fused.stab_sum_max` call against a warm
    :class:`IndexCache` — the stab-count table tier, where a probe
    batch is a table gather.  Giving the batched side its index for
    free makes the comparison conservative: per-call index builds
    (the cold path) only widen the gap.  Outputs are checked
    bit-identical before any speedup is reported; the smallest
    per-backend speedup is the ``--min-fused-speedup`` gate.
    """
    import numpy as np

    from repro.datasets.workloads import ALL_WORKLOADS
    from repro.index.stab import StabbingCounter
    from repro.index.ttree import TTree
    from repro.index.xrtree import XRTree
    from repro.kernels import available_backends, fused, kernel_backend
    from repro.perf import IndexCache

    dataset = get_dataset("xmark", scale=scale)
    ancestors, descendants = ALL_WORKLOADS["xmark"][0].operands(dataset)
    rows, m = 16, 200
    rng = np.random.default_rng(11)
    indices = rng.integers(0, len(descendants), size=rows * m).astype(
        np.int64
    )
    points = descendants.starts[indices]

    cache = IndexCache()
    # Warm the arena and stab-count table: steady-state serving is the
    # fused path's deployment position, matching the warm index opposite.
    fused.stab_sum_max(
        ancestors, descendants, indices, rows, m,
        probe_backend="rank", cache=cache, name="bench",
    )

    kernels: dict[str, dict] = {}
    for label, index, probe in (
        ("rank", StabbingCounter(ancestors), "count_many"),
        ("ttree", TTree(ancestors), "count_many"),
        ("xrtree", XRTree(ancestors), "stab_count_many"),
    ):
        probe_many = getattr(index, probe)

        def batched():
            counts = probe_many(points).reshape(rows, m)
            return counts.sum(axis=1), counts.max(axis=1)

        def fused_call(backend=label):
            return fused.stab_sum_max(
                ancestors, descendants, indices, rows, m,
                probe_backend=backend, cache=cache, name="bench",
            )

        batched_s = _best_of(batched, repeats)
        fused_s = _best_of(fused_call, repeats)
        batched_sums, batched_maxes = batched()
        fused_sums, fused_maxes = fused_call()
        identical = np.array_equal(batched_sums, fused_sums) and (
            np.array_equal(batched_maxes, fused_maxes)
        )
        _record(f"fused.{label}.batched_s", batched_s)
        _record(f"fused.{label}.fused_s", fused_s)
        kernels[label] = {
            "trials": rows,
            "batched_s": batched_s,
            "fused_s": fused_s,
            "speedup": (
                batched_s / fused_s if fused_s > 0 else float("inf")
            ),
            "identical": identical,
        }
    return {
        "kernel_backend": kernel_backend(),
        "available_backends": list(available_backends()),
        "kernels": kernels,
        "identical": all(k["identical"] for k in kernels.values()),
        "speedup": min(k["speedup"] for k in kernels.values()),
    }


def _print_fused(fused_report: dict) -> None:
    print(
        f"  kernel backend {fused_report['kernel_backend']} "
        f"(available: {', '.join(fused_report['available_backends'])})"
    )
    for label, timing in fused_report["kernels"].items():
        print(
            f"  {label:>20}: {timing['batched_s'] * 1e6:8.1f} us -> "
            f"{timing['fused_s'] * 1e6:8.1f} us "
            f"({timing['speedup']:.1f}x), identical: "
            f"{timing['identical']}"
        )


def bench_sampling(scale: float, runs: int) -> dict:
    """Batched sampling trials + index cache versus the reference path.

    The reference side runs each repetition as its own ``estimate`` call
    under :func:`repro.perf.reference_kernels` — per-element probe
    loops, probe indexes rebuilt on every call, index caches disabled —
    which reproduces the sampling estimators' pre-batching behavior
    through the same public entry points.  The batched side makes one
    ``estimate_trials`` call against a warm :class:`IndexCache`.  Both
    sides consume the same seed stream, so the batched values are
    checked bit-identical before any speedup is trusted.  The headline
    number is the Figure 8 IM sweep (reference versus batched), the
    ``--min-sampling-speedup`` gate.
    """
    from repro.datasets.workloads import ALL_WORKLOADS
    from repro.estimators.im_sampling import IMSamplingEstimator
    from repro.estimators.pm_sampling import PMSamplingEstimator
    from repro.experiments.sampling import run_sample_sweep
    from repro.perf import IndexCache, use_index_cache

    dataset = get_dataset("xmark", scale=scale)
    ancestors, descendants = ALL_WORKLOADS["xmark"][0].operands(dataset)
    workspace = dataset.tree.workspace()

    configs = [
        ("IM.rank", lambda s: IMSamplingEstimator(num_samples=100, seed=s)),
        (
            "IM.ttree",
            lambda s: IMSamplingEstimator(
                num_samples=100, seed=s, backend="ttree"
            ),
        ),
        (
            "IM.xrtree",
            lambda s: IMSamplingEstimator(
                num_samples=100, seed=s, backend="xrtree"
            ),
        ),
        ("PM.rank", lambda s: PMSamplingEstimator(num_samples=100, seed=s)),
        (
            "PM.ttree",
            lambda s: PMSamplingEstimator(
                num_samples=100, seed=s, backend="ttree"
            ),
        ),
    ]
    backends: dict[str, dict] = {}
    for label, factory in configs:
        with perf.reference_kernels():
            estimator = factory(11)
            start = time.perf_counter()
            reference_values = [
                estimator.estimate(ancestors, descendants, workspace).value
                for __ in range(runs)
            ]
            reference_s = time.perf_counter() - start
        estimator = factory(11)
        with use_index_cache(IndexCache()):
            start = time.perf_counter()
            results = estimator.estimate_trials(
                ancestors, descendants, runs, workspace
            )
            batched_s = time.perf_counter() - start
        _record(f"sampling.{label}.reference_s", reference_s)
        _record(f"sampling.{label}.batched_s", batched_s)
        backends[label] = {
            "trials": runs,
            "reference_s": reference_s,
            "batched_s": batched_s,
            "speedup": (
                reference_s / batched_s if batched_s > 0 else float("inf")
            ),
            "identical": reference_values == [r.value for r in results],
        }

    fig8: dict[str, dict] = {}
    for method in ("IM", "PM"):
        # Each side gets an untimed first pass (it also yields the series
        # for the identity check) and is then timed best-of-2.  The
        # batched side keeps its IndexCache across passes — steady-state
        # reuse across repetitions is exactly what the cache is for and
        # how the Figure 8 experiment itself runs — while reference mode
        # has nothing to keep warm: it rebuilds per call by construction.
        def sweep():
            return run_sample_sweep("xmark", method, scale=scale, runs=runs)

        with perf.reference_kernels():
            reference_sweep = sweep()
            reference_s = _best_of(sweep, 2)
        cache = IndexCache()
        with use_index_cache(cache):
            batched_sweep = sweep()
            batched_s = _best_of(sweep, 2)
        _record(f"sampling.fig8.{method}.reference_s", reference_s)
        _record(f"sampling.fig8.{method}.batched_s", batched_s)
        fig8[method] = {
            "runs": runs,
            "reference_s": reference_s,
            "batched_s": batched_s,
            "speedup": (
                reference_s / batched_s if batched_s > 0 else float("inf")
            ),
            "identical_series": (
                reference_sweep.series == batched_sweep.series
            ),
            "index_cache": cache.stats(),
        }

    return {
        "scale": scale,
        "backends": backends,
        "fig8_sweep": fig8,
        "identical": all(b["identical"] for b in backends.values())
        and all(s["identical_series"] for s in fig8.values()),
        "speedup": fig8["IM"]["speedup"],
    }


def bench_obs_overhead(scale: float, buckets, repeats: int = 15) -> dict:
    """The instrumented-but-unsinked sweep versus the uninstrumented one.

    Each variant runs with a warm dataset cache and its own summary
    cache.  Measuring a single-digit-percent effect on a
    tens-of-milliseconds sweep needs two noise controls: each timed
    window repeats the sweep enough times (``inner``) to last ~0.15 s,
    so scheduler jitter is small relative to the window, and the
    variants are timed in adjacent (baseline, observed) pairs with the
    *median of the per-pair ratios* as the headline — machine load
    drifts severalfold between bench runs here, so the pairing cancels
    drift inside each ratio and the median rejects pairs a descheduling
    hit lands in.  ``overhead_pct`` is the number the observability
    layer promises to keep below a few percent; the disabled path is a
    single-branch guard by construction.
    """
    def one_sweep():
        _sweep(scale, buckets, cache=SummaryCache())

    start = time.perf_counter()
    one_sweep()  # warm the dataset/query caches; sizes the timing window
    warm_s = time.perf_counter() - start
    inner = max(1, min(10, round(0.15 / max(warm_s, 1e-9))))

    def baseline_sweep():
        for _ in range(inner):
            one_sweep()

    def observed_sweep():
        with obs.observe(registry=obs.MetricsRegistry()):
            for _ in range(inner):
                one_sweep()

    # Collector debt accrued by earlier phases would otherwise be paid
    # inside whichever timed window happens to cross the threshold, so
    # GC is frozen across the measurement and drained between windows.
    gc.collect()
    gc.disable()
    try:
        baselines, ratios = [], []
        for _ in range(repeats):
            gc.collect()
            baseline = _best_of(baseline_sweep, 1) / inner
            gc.collect()
            observed = _best_of(observed_sweep, 1) / inner
            baselines.append(baseline)
            ratios.append(observed / baseline if baseline > 0 else 1.0)
    finally:
        gc.enable()
    ratio = statistics.median(ratios)
    baseline_s = statistics.median(baselines)
    observed_s = baseline_s * ratio
    with obs.observe(registry=obs.MetricsRegistry()) as registry:
        _sweep(scale, buckets, cache=SummaryCache())
    counters = registry.counters()
    _record("obs_overhead.baseline_s", baseline_s)
    _record("obs_overhead.observed_s", observed_s)
    return {
        "baseline_s": baseline_s,
        "observed_s": observed_s,
        "overhead_pct": (
            (observed_s - baseline_s) / baseline_s * 100.0
            if baseline_s > 0
            else 0.0
        ),
        "estimator_calls": sum(
            v for k, v in counters.items()
            if k.startswith("estimator.") and k.endswith(".calls")
        ),
        "cache_lookups": counters.get("cache.hits", 0)
        + counters.get("cache.misses", 0),
    }


def bench_parallel(scale: float, runs: int) -> dict:
    """Fan a stochastic-heavy evaluation out over worker processes.

    The worker count adapts to the machine; on a single-core host both
    runs take the serial path and the reported speedup is ~1.0.
    """
    from repro.core.budget import SpaceBudget
    from repro.datasets.workloads import ALL_WORKLOADS
    from repro.experiments.harness import evaluate, paper_methods

    dataset = get_dataset("xmark", scale=scale)
    queries = ALL_WORKLOADS["xmark"]
    methods = paper_methods(SpaceBudget(800))
    workers = min(4, multiprocessing.cpu_count())
    start = time.perf_counter()
    serial_rows = evaluate(dataset, queries, methods, runs=runs, seed=3)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = evaluate(
        dataset, queries, methods, runs=runs, seed=3, workers=workers
    )
    workers_s = time.perf_counter() - start
    _record("parallel.serial_s", serial_s)
    _record("parallel.workers_s", workers_s)
    return {
        "runs": runs,
        "cpu_count": multiprocessing.cpu_count(),
        "workers": workers,
        "serial_s": serial_s,
        "workers_s": workers_s,
        "speedup": serial_s / workers_s if workers_s > 0 else float("inf"),
        "identical_rows": serial_rows == parallel_rows,
    }


def bench_service() -> dict:
    """The estimation service layer against the optimizer trace.

    Delegates to :func:`repro.service.bench.run_service_bench` (which
    carries its own tuned workload — scale, repeat count, timing
    trials) and mirrors the headline timings into the bench registry.
    """
    from repro.service.bench import run_service_bench

    report = run_service_bench()
    throughput = report["throughput"]
    _record("service.sequential_s", throughput["sequential_seconds"])
    _record("service.service_s", throughput["service_seconds"])
    _record(
        "service.deadline_p99_s", report["deadline"]["latency_p99_s"]
    )
    sharding = report["sharding"]
    _record("service.sharding_baseline_s", sharding["baseline_seconds"])
    _record("service.sharding_sharded_s", sharding["sharded_seconds"])
    return report


def bench_optimizer() -> dict:
    """The plan-regret sweep over every cardinality generator.

    Delegates to :func:`repro.optimizer.regret.regret_report` (which
    carries its own tuned workload — datasets at scale 0.05, the
    default chain lineup) and stamps the elapsed wall time; the report
    body itself is deterministic for the fixed scale/seed.
    """
    from repro.optimizer.regret import regret_report

    start = time.perf_counter()
    report = regret_report()
    elapsed = time.perf_counter() - start
    report["elapsed_s"] = elapsed
    _record("optimizer.regret_s", elapsed)
    for name, summary in report["generators"].items():
        REGISTRY.histogram(f"bench.optimizer.{name}.mean_regret").observe(
            summary["mean_regret"]
        )
    return report


def _print_optimizer(report: dict) -> None:
    print(
        f"  {len(report['chains'])} chains over "
        f"{'/'.join(report['datasets'])} at scale {report['scale']}, "
        f"{len(report['generators'])} generators, "
        f"{report['elapsed_s']:.2f} s"
    )
    for name, summary in sorted(report["generators"].items()):
        print(
            f"  {name:>10}: mean regret {summary['mean_regret']:7.3f}, "
            f"max {summary['max_regret']:7.3f}, optimal "
            f"{summary['optimal_plans']}/{summary['chains']}, "
            f"underestimated segments "
            f"{summary['underestimated_segments']}"
        )


def _check_optimizer(report: dict, args) -> int:
    """Apply the optimizer gates; returns 0 (pass) or 1 (fail)."""
    exact = report["generators"].get("EXACT")
    if exact is None or exact["max_regret"] != 0.0:
        print(
            "FAIL: the exact-oracle generator must have regret 0 on "
            f"every chain, got {exact}",
            file=sys.stderr,
        )
        return 1
    ubound = report["generators"].get("UBOUND")
    if ubound is None or ubound["underestimated_segments"] != 0:
        print(
            "FAIL: the pessimistic bound generator underestimated "
            f"{ubound and ubound['underestimated_segments']} true "
            "intermediate sizes (it must never underestimate)",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_generators is not None
        and len(report["generators"]) < args.min_generators
    ):
        print(
            f"FAIL: regret sweep covered {len(report['generators'])} "
            f"generators, below required {args.min_generators}",
            file=sys.stderr,
        )
        return 1
    return 0


def bench_router(args) -> dict:
    """The closed-loop routing + correction benchmark.

    Delegates to :func:`repro.router.bench.run_router_bench` (Table 3
    traces at scale 0.05, fixed seed) and stamps the elapsed wall
    time; the report body itself is deterministic for the fixed
    arguments because every router is a pure function of (seed,
    feedback history).
    """
    from repro.router.bench import run_router_bench
    from repro.router.registry import canonical_router_name

    router_config = {}
    if canonical_router_name(args.router) == "UCB1":
        router_config["exploration"] = args.router_exploration
    start = time.perf_counter()
    report = run_router_bench(
        router=args.router,
        rounds=args.router_rounds,
        **router_config,
    )
    elapsed = time.perf_counter() - start
    report["elapsed_s"] = elapsed
    _record("router.bench_s", elapsed)
    REGISTRY.histogram("bench.router.regret_ratio").observe(
        report["total"]["regret_ratio"]
    )
    REGISTRY.histogram("bench.router.max_reduction_pct").observe(
        report["correction"]["max_reduction_pct"]
    )
    return report


def _print_router(report: dict) -> None:
    router = report["router"]
    print(
        f"  router {router.get('name')} over "
        f"{'/'.join(report['datasets'])} at scale {report['scale']}, "
        f"{report['rounds']} rounds, {report['elapsed_s']:.2f} s"
    )
    for row in report["per_dataset"]:
        pulls = ", ".join(
            f"{arm}={count}" for arm, count in row["arm_pulls"].items()
        )
        print(
            f"  {row['dataset']:>8}: gated loss "
            f"{row['router_loss_gated']:8.3f} vs best fixed "
            f"{row['best_fixed']} "
            f"{row['fixed_loss_gated'][row['best_fixed']]:8.3f} "
            f"(ratio {row['regret_ratio']:.3f}); pulls {pulls}"
        )
    total = report["total"]
    print(
        f"  total: regret ratio {total['regret_ratio']:.3f} gated "
        f"({total['regret_ratio_total']:.3f} with warmup)"
    )
    correction = report["correction"]
    print(
        f"  correction: {correction['fitted']}/{correction['cells']} "
        f"cells fitted ({correction['mode']}, holdout "
        f"{correction['holdout']}), max MRE reduction "
        f"{correction['max_reduction_pct']:.1f}%, "
        f"{correction['worsened']} worsened"
    )


def _check_router(report: dict, args) -> int:
    """Apply the router gates; returns 0 (pass) or 1 (fail)."""
    correction = report["correction"]
    if correction["worsened"] != 0:
        print(
            f"FAIL: the correction model worsened held-out MRE on "
            f"{correction['worsened']} cell(s) (it must never make a "
            "cell worse)",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_router_regret is not None
        and report["total"]["regret_ratio"] > args.max_router_regret
    ):
        print(
            f"FAIL: router regret ratio "
            f"{report['total']['regret_ratio']:.3f} above allowed "
            f"{args.max_router_regret} x the best fixed method",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_correction_reduction is not None
        and correction["max_reduction_pct"]
        < args.min_correction_reduction
    ):
        print(
            f"FAIL: best correction-model MRE reduction "
            f"{correction['max_reduction_pct']:.1f}% below required "
            f"{args.min_correction_reduction}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_service(report: dict) -> None:
    from repro.service.bench import render_report

    for line in render_report(report).splitlines():
        print(f"  {line}")


def _check_service(report: dict, args) -> int:
    """Apply the service gates; returns 0 (pass) or 1 (fail)."""
    throughput = report["throughput"]
    deadline = report["deadline"]
    stress = report["stress"]
    if not throughput["identical"]:
        print(
            "FAIL: non-degraded service responses differ from "
            f"sequential estimates: {throughput['mismatches']}",
            file=sys.stderr,
        )
        return 1
    if not (deadline["all_answered"] and stress["all_answered"]):
        print(
            "FAIL: a deadline-constrained request went unanswered",
            file=sys.stderr,
        )
        return 1
    if not (deadline["degraded_flagged"] and stress["degraded_flagged"]):
        print(
            "FAIL: a degraded response was not flagged as degraded",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_service_speedup is not None
        and report["workload_speedup"] < args.min_service_speedup
    ):
        print(
            f"FAIL: service workload speedup "
            f"{report['workload_speedup']:.2f}x below required "
            f"{args.min_service_speedup}x",
            file=sys.stderr,
        )
        return 1
    p99_ms = deadline["latency_p99_s"] * 1000.0
    if args.max_p99_ms is not None and p99_ms > args.max_p99_ms:
        print(
            f"FAIL: deadline-phase p99 latency {p99_ms:.2f} ms above "
            f"allowed {args.max_p99_ms} ms",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_deadline_miss_rate is not None
        and deadline["deadline_miss_rate"] > args.max_deadline_miss_rate
    ):
        print(
            f"FAIL: deadline miss rate "
            f"{deadline['deadline_miss_rate']:.4f} above allowed "
            f"{args.max_deadline_miss_rate}",
            file=sys.stderr,
        )
        return 1
    sharding = report["sharding"]
    if not sharding["identical"]:
        print(
            "FAIL: sharded service responses differ from the "
            f"single-process run: {sharding['mismatches']}",
            file=sys.stderr,
        )
        return 1
    if sharding["leaked_segments"]:
        print(
            "FAIL: shared-memory segments leaked after service "
            f"shutdown: {sharding['leaked_segments']}",
            file=sys.stderr,
        )
        return 1
    if args.min_shard_speedup is not None:
        # Genuine process parallelism needs a second core; a single-CPU
        # host reports its honest ~1x and waives the gate (the identity
        # and leak gates above still apply there).
        if sharding["cpu_count"] < 2:
            print(
                "  (shard speedup gate waived: "
                f"{sharding['cpu_count']} cpu)"
            )
        elif sharding["speedup"] < args.min_shard_speedup:
            print(
                f"FAIL: sharded service speedup "
                f"{sharding['speedup']:.2f}x below required "
                f"{args.min_shard_speedup}x",
                file=sys.stderr,
            )
            return 1
    return 0


def bench_stream(args) -> dict:
    """The streaming churn benchmark.

    Delegates to :func:`repro.stream.bench.run_stream_bench` (XMark
    churn at a fixed small scale and seed): incremental maintenance
    versus per-batch rebuilds, mixed read/write serving under a
    staleness bound, and cross-tenant cache isolation.
    """
    from repro.stream.bench import run_stream_bench

    report = run_stream_bench(seed=args.stream_seed)
    _record("stream.bench_s", report["elapsed_s"])
    REGISTRY.histogram("bench.stream.speedup").observe(
        report["update"]["speedup"]
    )
    REGISTRY.histogram("bench.stream.violation_rate").observe(
        report["serving"]["violation_rate"]
    )
    return report


def _print_stream(report: dict) -> None:
    update = report["update"]
    serving = report["serving"]
    isolation = report["isolation"]
    print(
        f"  churn over {report['dataset']} scale {report['scale']} "
        f"({report['pool_size']} elements, {report['tags']} tags), "
        f"seed {report['seed']}, {report['elapsed_s']:.2f} s"
    )
    print(
        f"  update: {update['mutations']} mutations, incremental "
        f"{update['incremental_mutations_per_s']:,.0f}/s vs rebuild "
        f"{update['rebuild_mutations_per_s']:,.0f}/s "
        f"({update['speedup']:.1f}x), identical: {update['identical']}"
    )
    print(
        f"  serving: {serving['requests']} reads "
        f"({serving['writes_per_read']} writes before each), "
        f"p99 {serving['latency_p99_s'] * 1e3:.2f} ms, staleness p99 "
        f"{serving['staleness_p99_s'] * 1e3:.2f} ms, "
        f"{serving['violations']} violation(s) "
        f"({serving['violation_rate']:.2%}), "
        f"{serving['stale_degraded']} stale-degraded"
    )
    print(
        f"  isolation: {isolation['churn_batches']} churn batches "
        f"against tenant alpha; victim entries "
        f"{isolation['victim_entries_before']} -> "
        f"{isolation['victim_entries_after']}, cross-tenant "
        f"invalidations {isolation['cross_tenant_invalidations']}, "
        f"victim cached: {isolation['victim_served_from_cache']}"
    )


def _check_stream(report: dict, args) -> int:
    """Apply the stream gates; returns 0 (pass) or 1 (fail)."""
    update = report["update"]
    serving = report["serving"]
    isolation = report["isolation"]
    if not update["identical"]:
        print(
            "FAIL: incrementally maintained synopses diverged from "
            "the per-batch rebuilds",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_stream_speedup is not None
        and update["speedup"] < args.min_stream_speedup
    ):
        print(
            f"FAIL: incremental update speedup "
            f"{update['speedup']:.2f}x below required "
            f"{args.min_stream_speedup}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_staleness_violation_rate is not None
        and serving["violation_rate"] > args.max_staleness_violation_rate
    ):
        print(
            f"FAIL: staleness-violation rate "
            f"{serving['violation_rate']:.4f} above allowed "
            f"{args.max_staleness_violation_rate}",
            file=sys.stderr,
        )
        return 1
    if isolation["cross_tenant_invalidations"] != 0:
        print(
            f"FAIL: churn in one tenant invalidated "
            f"{isolation['cross_tenant_invalidations']} cache "
            "entr(y/ies) of another tenant",
            file=sys.stderr,
        )
        return 1
    if not isolation["victim_value_stable"]:
        print(
            "FAIL: an untouched tenant's estimate changed while "
            "another tenant churned",
            file=sys.stderr,
        )
        return 1
    return 0


#: A kernel speedup may fall this far below the baseline's before the
#: comparison flags it as a regression (machine noise on shared runners
#: swings micro-benchmarks tens of percent; CI runs the comparison as a
#: warning step).
BASELINE_TOLERANCE = 0.20


def _compare_baseline(report: dict, baseline_path: Path) -> int:
    """Per-kernel speedup deltas against a previous BENCH_kernels.json.

    Prints one line per kernel shared by both reports; returns 1 when
    any kernel's speedup fell more than :data:`BASELINE_TOLERANCE`
    below the baseline's, 0 otherwise.  Kernels present on only one
    side are noted but never fail the comparison (reports grow).
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as error:
        print(
            f"FAIL: cannot read baseline {baseline_path}: {error}",
            file=sys.stderr,
        )
        return 1

    def section(source: dict, *keys: str) -> dict:
        node = source
        for key in keys:
            node = node.get(key) or {}
        return node

    pairs: list[tuple[str, dict, dict]] = [
        ("kernels", section(baseline, "kernels"), section(report, "kernels")),
        (
            "fused",
            section(baseline, "fused", "kernels"),
            section(report, "fused", "kernels"),
        ),
        (
            "sampling",
            section(baseline, "sampling", "backends"),
            section(report, "sampling", "backends"),
        ),
    ]
    regressions: list[str] = []
    print(f"baseline comparison against {baseline_path}:")
    for prefix, old_section, new_section in pairs:
        for name, new_timing in new_section.items():
            label = f"{prefix}.{name}"
            old_timing = old_section.get(name)
            if old_timing is None:
                print(f"  {label:>28}: new kernel (no baseline)")
                continue
            old = float(old_timing["speedup"])
            new = float(new_timing["speedup"])
            delta_pct = (new - old) / old * 100.0 if old > 0 else 0.0
            regressed = old > 0 and new < old * (1.0 - BASELINE_TOLERANCE)
            if regressed:
                regressions.append(label)
            print(
                f"  {label:>28}: {old:8.2f}x -> {new:8.2f}x "
                f"({delta_pct:+6.1f}%)"
                f"{'  REGRESSION' if regressed else ''}"
            )
        for name in old_section:
            if name not in new_section:
                print(f"  {prefix + '.' + name:>28}: dropped from report")
    if regressions:
        print(
            f"FAIL: {len(regressions)} kernel speedup(s) regressed more "
            f"than {BASELINE_TOLERANCE:.0%} vs baseline: "
            f"{', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print("  no kernel regressed beyond tolerance")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: scale {QUICK_SCALE}, bucket counts "
        f"{QUICK_BUCKETS}",
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="dataset scale override"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the Fig. 7 sweep speedup reaches this factor",
    )
    parser.add_argument(
        "--min-sampling-speedup",
        type=float,
        default=None,
        help="fail unless the Fig. 8 IM sweep (reference vs batched) "
        "speedup reaches this factor",
    )
    parser.add_argument(
        "--min-fused-speedup",
        type=float,
        default=None,
        help="fail unless every fused probe kernel beats the batched "
        "probe path by this factor",
    )
    parser.add_argument(
        "--only-fused",
        action="store_true",
        help="run only the fused-kernel phase and its gate (the CI "
        "numba-leg smoke job); writes no report file",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="compare per-kernel speedups against a previous "
        "BENCH_kernels.json; exit non-zero when any kernel regressed "
        "more than 20%%",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_kernels.json",
        help="where to write the timing report",
    )
    parser.add_argument(
        "--sampling-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_sampling.json",
        help="where to write the standalone sampling-phase report",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the multiprocessing phase (slow on small machines)",
    )
    parser.add_argument(
        "--only-service",
        action="store_true",
        help="run only the estimation-service phase and its gates "
        "(the CI service-smoke job)",
    )
    parser.add_argument(
        "--only-optimizer",
        action="store_true",
        help="run only the plan-regret phase and its gates "
        "(the CI optimizer-smoke job)",
    )
    parser.add_argument(
        "--min-generators",
        type=int,
        default=None,
        help="fail unless the regret sweep covers at least this many "
        "cardinality generators",
    )
    parser.add_argument(
        "--optimizer-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_optimizer.json",
        help="where to write the standalone plan-regret report",
    )
    parser.add_argument(
        "--only-router",
        action="store_true",
        help="run only the closed-loop routing phase and its gates "
        "(the CI router-smoke job)",
    )
    parser.add_argument(
        "--router",
        default="UCB1",
        help="which router drives the routing trace (a "
        "repro.available_routers() name; default UCB1)",
    )
    parser.add_argument(
        "--router-rounds",
        type=int,
        default=12,
        help="how many times the routing trace replays each Table 3 "
        "query (default 12)",
    )
    parser.add_argument(
        "--router-exploration",
        type=float,
        default=0.1,
        help="UCB1 exploration constant for the routing trace "
        "(default 0.1; ignored for other routers)",
    )
    parser.add_argument(
        "--max-router-regret",
        type=float,
        default=None,
        help="fail unless the router's gated cumulative loss stays "
        "within this factor of the best fixed method (e.g. 1.15)",
    )
    parser.add_argument(
        "--min-correction-reduction",
        type=float,
        default=None,
        help="fail unless the correction model reduces held-out MRE "
        "by at least this percentage on its best cell (e.g. 10)",
    )
    parser.add_argument(
        "--router-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_router.json",
        help="where to write the standalone routing-phase report",
    )
    parser.add_argument(
        "--only-stream",
        action="store_true",
        help="run only the streaming churn phase and its gates "
        "(the CI stream-smoke job)",
    )
    parser.add_argument(
        "--stream-seed",
        type=int,
        default=7,
        help="seed for the streaming churn phase's document and "
        "mutation feeds (default 7)",
    )
    parser.add_argument(
        "--min-stream-speedup",
        type=float,
        default=None,
        help="fail unless incremental maintenance beats the per-batch "
        "rebuild baseline by this factor (e.g. 5)",
    )
    parser.add_argument(
        "--max-staleness-violation-rate",
        type=float,
        default=None,
        help="fail if the serving phase's staleness-violation rate "
        "exceeds this fraction (e.g. 0.01)",
    )
    parser.add_argument(
        "--stream-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_stream.json",
        help="where to write the standalone streaming-churn report",
    )
    parser.add_argument(
        "--min-service-speedup",
        type=float,
        default=None,
        help="fail unless the service-vs-sequential workload speedup "
        "reaches this factor",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        help="fail if the deadline phase's p99 latency exceeds this "
        "many milliseconds",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        help="fail unless the processes=K sharded service beats the "
        "single-process service by this factor (auto-waived on "
        "single-CPU hosts; the identity and leak gates still apply)",
    )
    parser.add_argument(
        "--max-deadline-miss-rate",
        type=float,
        default=None,
        help="fail if the deadline phase misses more than this "
        "fraction of deadlines (e.g. 0.01)",
    )
    parser.add_argument(
        "--service-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_service.json",
        help="where to write the standalone service-phase report",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        help="stream measurements and an instrumented sweep's events "
        "to this JSONL file (for python -m repro obs-report)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        help="fail if the enabled-but-unsinked observation overhead "
        "exceeds this percentage",
    )
    args = parser.parse_args(argv)

    global _SINK
    if args.telemetry is not None:
        _SINK = obs.TelemetrySink(args.telemetry)

    if args.only_fused:
        scale = args.scale if args.scale is not None else (
            QUICK_SCALE if args.quick else 0.4
        )
        print(
            f"fused phase: fused probe kernels vs batched probes "
            f"(xmark scale {scale})",
            flush=True,
        )
        fused_report = bench_fused(scale)
        _print_fused(fused_report)
        if _SINK is not None:
            _SINK.close()
        if not fused_report["identical"]:
            print(
                "FAIL: fused probe kernels disagree with the batched "
                "probe path",
                file=sys.stderr,
            )
            return 1
        if (
            args.min_fused_speedup is not None
            and fused_report["speedup"] < args.min_fused_speedup
        ):
            print(
                f"FAIL: fused kernel speedup {fused_report['speedup']:.2f}x "
                f"below required {args.min_fused_speedup}x",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.only_optimizer:
        print(
            "optimizer phase: plan regret per cardinality generator",
            flush=True,
        )
        optimizer = bench_optimizer()
        _print_optimizer(optimizer)
        validate_bench_report(optimizer, "optimizer")
        args.optimizer_output.write_text(
            json.dumps(optimizer, indent=2) + "\n"
        )
        print(f"wrote {args.optimizer_output}")
        if _SINK is not None:
            _SINK.close()
            print(
                f"wrote {_SINK.emitted} telemetry records to "
                f"{args.telemetry}"
            )
        return _check_optimizer(optimizer, args)

    if args.only_router:
        print(
            "router phase: bandit routing vs fixed methods, "
            "correction model fit",
            flush=True,
        )
        router_report = bench_router(args)
        _print_router(router_report)
        validate_bench_report(router_report, "router")
        args.router_output.write_text(
            json.dumps(router_report, indent=2) + "\n"
        )
        print(f"wrote {args.router_output}")
        if _SINK is not None:
            _SINK.close()
            print(
                f"wrote {_SINK.emitted} telemetry records to "
                f"{args.telemetry}"
            )
        return _check_router(router_report, args)

    if args.only_stream:
        print(
            "stream phase: incremental maintenance under churn, "
            "bounded staleness, tenant isolation",
            flush=True,
        )
        stream_report = bench_stream(args)
        _print_stream(stream_report)
        validate_bench_report(stream_report, "stream")
        args.stream_output.write_text(
            json.dumps(stream_report, indent=2) + "\n"
        )
        print(f"wrote {args.stream_output}")
        if _SINK is not None:
            _SINK.close()
            print(
                f"wrote {_SINK.emitted} telemetry records to "
                f"{args.telemetry}"
            )
        return _check_stream(stream_report, args)

    if args.only_service:
        print(
            "service phase: estimation service vs sequential estimate()",
            flush=True,
        )
        service = bench_service()
        _print_service(service)
        validate_bench_report(service, "service")
        args.service_output.write_text(
            json.dumps(service, indent=2) + "\n"
        )
        print(f"wrote {args.service_output}")
        if _SINK is not None:
            _SINK.close()
            print(
                f"wrote {_SINK.emitted} telemetry records to "
                f"{args.telemetry}"
            )
        return _check_service(service, args)

    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else FULL_SCALE
    )
    buckets = QUICK_BUCKETS if args.quick else BUCKET_SWEEP
    repeats = 2 if args.quick else 3

    print(f"generating xmark at scale {scale} ...", flush=True)
    dataset = get_dataset("xmark", scale=scale)

    print("phase 1/10: kernel microbenchmarks", flush=True)
    kernels = bench_kernels(dataset, repeats)
    for name, timing in kernels.items():
        print(
            f"  {name:>20}: {timing['reference_s'] * 1e3:8.2f} ms -> "
            f"{timing['vectorized_s'] * 1e3:8.2f} ms "
            f"({timing['speedup']:.1f}x)"
        )

    print("phase 2/10: Fig. 7 histogram sweep (build + estimate)", flush=True)
    sweep = bench_fig7_sweep(scale, buckets)
    print(
        f"  reference {sweep['reference_s']:.2f} s, vectorized "
        f"{sweep['vectorized_s']:.2f} s, vectorized+cache "
        f"{sweep['vectorized_cached_s']:.2f} s "
        f"({sweep['speedup']:.1f}x), identical output: "
        f"{sweep['identical_output']}"
    )

    print(
        "phase 3/10: fused probe kernels vs batched probes",
        flush=True,
    )
    fused_report = bench_fused(scale)
    _print_fused(fused_report)

    print(
        "phase 4/10: batched sampling trials (reference vs batched)",
        flush=True,
    )
    sampling = bench_sampling(scale, runs=5 if args.quick else 11)
    for label, timing in sampling["backends"].items():
        print(
            f"  {label:>20}: {timing['reference_s'] * 1e3:8.2f} ms -> "
            f"{timing['batched_s'] * 1e3:8.2f} ms "
            f"({timing['speedup']:.1f}x), identical: "
            f"{timing['identical']}"
        )
    for method, timing in sampling["fig8_sweep"].items():
        print(
            f"  {'fig8.' + method:>20}: {timing['reference_s']:8.2f} s  -> "
            f"{timing['batched_s']:8.2f} s  "
            f"({timing['speedup']:.1f}x), identical series: "
            f"{timing['identical_series']}"
        )

    print("phase 5/10: observation overhead (enabled, no sink)", flush=True)
    overhead = bench_obs_overhead(scale, buckets)
    print(
        f"  baseline {overhead['baseline_s']:.2f} s, observed "
        f"{overhead['observed_s']:.2f} s "
        f"({overhead['overhead_pct']:+.2f}%, "
        f"{overhead['estimator_calls']} estimator calls, "
        f"{overhead['cache_lookups']} cache lookups)"
    )

    parallel = None
    if not args.skip_parallel:
        print("phase 6/10: parallel harness", flush=True)
        parallel = bench_parallel(scale, runs=5 if args.quick else 31)
        print(
            f"  serial {parallel['serial_s']:.2f} s, "
            f"{parallel['workers']} worker(s) "
            f"{parallel['workers_s']:.2f} s "
            f"({parallel['speedup']:.1f}x on {parallel['cpu_count']} "
            f"cpu(s)), identical rows: {parallel['identical_rows']}"
        )

    print(
        "phase 7/10: estimation service vs sequential estimate()",
        flush=True,
    )
    service = bench_service()
    _print_service(service)

    print(
        "phase 8/10: plan regret per cardinality generator",
        flush=True,
    )
    optimizer = bench_optimizer()
    _print_optimizer(optimizer)

    print(
        "phase 9/10: bandit routing vs fixed methods, correction model",
        flush=True,
    )
    router_report = bench_router(args)
    _print_router(router_report)

    print(
        "phase 10/10: streaming churn (incremental maintenance, "
        "staleness, isolation)",
        flush=True,
    )
    stream_report = bench_stream(args)
    _print_stream(stream_report)

    if _SINK is not None:
        # One more instrumented sweep, this time streaming per-call
        # estimate events and cache counters into the telemetry file so
        # obs-report has per-estimator latency distributions to show.
        print("telemetry: instrumented sweep", flush=True)
        with obs.observe(registry=REGISTRY, sink=_SINK):
            _sweep(scale, buckets, cache=SummaryCache())
            obs.emit_summary()

    report = {
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "kernels": kernels,
        "fig7_sweep": sweep,
        "fused": fused_report,
        "sampling": sampling,
        "obs_overhead": overhead,
        "parallel": parallel,
        "service": service,
        "metrics": REGISTRY.snapshot(),
    }
    sampling_report = {
        "mode": report["mode"],
        **sampling,
    }
    # Fail fast on report-shape drift before anything hits disk.
    validate_bench_report(report, "kernels")
    validate_bench_report(sampling_report, "sampling")
    validate_bench_report(service, "service")
    validate_bench_report(optimizer, "optimizer")
    validate_bench_report(router_report, "router")
    validate_bench_report(stream_report, "stream")
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    args.sampling_output.write_text(
        json.dumps(sampling_report, indent=2) + "\n"
    )
    print(f"wrote {args.sampling_output}")
    args.service_output.write_text(json.dumps(service, indent=2) + "\n")
    print(f"wrote {args.service_output}")
    args.optimizer_output.write_text(
        json.dumps(optimizer, indent=2) + "\n"
    )
    print(f"wrote {args.optimizer_output}")
    args.router_output.write_text(
        json.dumps(router_report, indent=2) + "\n"
    )
    print(f"wrote {args.router_output}")
    args.stream_output.write_text(
        json.dumps(stream_report, indent=2) + "\n"
    )
    print(f"wrote {args.stream_output}")
    if _SINK is not None:
        _SINK.close()
        print(
            f"wrote {_SINK.emitted} telemetry records to {args.telemetry}"
        )

    if not sweep["identical_output"]:
        print(
            "FAIL: reference and vectorized sweeps disagree",
            file=sys.stderr,
        )
        return 1
    if parallel is not None and not parallel["identical_rows"]:
        print(
            "FAIL: parallel evaluation rows differ from serial",
            file=sys.stderr,
        )
        return 1
    if not sampling["identical"]:
        print(
            "FAIL: batched sampling trials disagree with sequential "
            "reference trials",
            file=sys.stderr,
        )
        return 1
    if not fused_report["identical"]:
        print(
            "FAIL: fused probe kernels disagree with the batched "
            "probe path",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_fused_speedup is not None
        and fused_report["speedup"] < args.min_fused_speedup
    ):
        print(
            f"FAIL: fused kernel speedup {fused_report['speedup']:.2f}x "
            f"below required {args.min_fused_speedup}x",
            file=sys.stderr,
        )
        return 1
    if args.baseline is not None:
        if _compare_baseline(report, args.baseline):
            return 1
    if args.min_speedup is not None and sweep["speedup"] < args.min_speedup:
        print(
            f"FAIL: sweep speedup {sweep['speedup']:.2f}x below "
            f"required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_sampling_speedup is not None
        and sampling["speedup"] < args.min_sampling_speedup
    ):
        print(
            f"FAIL: Fig. 8 sampling speedup {sampling['speedup']:.2f}x "
            f"below required {args.min_sampling_speedup}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_obs_overhead is not None
        and overhead["overhead_pct"] > args.max_obs_overhead
    ):
        print(
            f"FAIL: observation overhead {overhead['overhead_pct']:.2f}% "
            f"above allowed {args.max_obs_overhead}%",
            file=sys.stderr,
        )
        return 1
    return (
        _check_service(service, args)
        or _check_optimizer(optimizer, args)
        or _check_router(router_report, args)
        or _check_stream(stream_report, args)
    )


if __name__ == "__main__":
    raise SystemExit(main())
