"""Figure 6: overall performance on DBLP (PH/PL/IM/PM at 200/400/800 B).

Reproduction targets (Sections 6.2-6.3):

* IM is again near-exact on every query;
* PL beats PH on (nearly) every query, without needing the no-overlap
  information PH depends on;
* PL degrades on the small-cov queries Q4-Q6 (Table 4) relative to Q1-Q3
  yet mostly stays ahead of PH.
"""

import statistics

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import dblp_queries
from repro.experiments.harness import evaluate, paper_methods
from repro.experiments.overall import OverallResult


def test_fig6_dblp_overall(benchmark, report, bench_runs, dblp_full):
    queries = dblp_queries()

    def run_one_budget():
        return evaluate(
            dblp_full,
            queries,
            paper_methods(SpaceBudget(400)),
            runs=bench_runs,
            seed=0,
        )

    benchmark.pedantic(run_one_budget, rounds=1, iterations=1)

    panels = []
    for nbytes in (200, 400, 800):
        rows = evaluate(
            dblp_full,
            queries,
            paper_methods(SpaceBudget(nbytes)),
            runs=bench_runs,
            seed=0,
        )
        panels.append(OverallResult("dblp", SpaceBudget(nbytes), rows))
    report(
        "fig6_dblp_overall",
        "\n\n".join(panel.render() for panel in panels),
    )

    final = panels[-1].rows
    errors = {row.query.id: row.errors for row in final}

    # IM near-exact everywhere.
    assert statistics.fmean(e["IM"] for e in errors.values()) < 10.0

    # PL beats PH on most queries (the paper: all but one).
    pl_wins = sum(
        1 for e in errors.values() if e["PL"] <= e["PH"] + 1e-9
    )
    assert pl_wins >= len(errors) - 1

    # The small-cov queries hurt PL more than the regular ones.
    regular = statistics.fmean(errors[q]["PL"] for q in ("Q1", "Q2", "Q3"))
    sparse = statistics.fmean(errors[q]["PL"] for q in ("Q5", "Q6"))
    assert sparse > regular
