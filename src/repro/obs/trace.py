"""Span-based tracing with a context-manager API.

A :class:`Span` is one named, timed region with free-form attributes; a
:class:`Tracer` maintains a per-thread stack of open spans (so nesting
gives parent links for free) and a bounded buffer of finished spans.
The process-global default tracer lives in :mod:`repro.obs.runtime` and
can be swapped for tests via :func:`repro.obs.observe`.

Usage::

    with tracer.span("evaluate", dataset="xmark") as span:
        ...
        span.attributes["queries"] = len(rows)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

#: Finished spans retained by a tracer before the oldest are dropped.
DEFAULT_MAX_SPANS = 10_000


@dataclass(slots=True)
class Span:
    """One named, timed region."""

    name: str
    start: float
    end: float | None = None
    parent: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_record(self) -> dict[str, Any]:
        """A JSON-able representation (telemetry event shape)."""
        return {
            "event": "span",
            "name": self.name,
            "seconds": self.duration,
            "parent": self.parent,
            **self.attributes,
        }


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)


class Tracer:
    """Collects spans; thread-safe, bounded.

    Args:
        max_spans: finished spans retained (oldest dropped first).
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._stacks = threading.local()
        self._lock = threading.Lock()

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span as a context manager; yields the :class:`Span`."""
        stack = self._stack()
        parent = stack[-1].name if stack else None
        return _SpanContext(
            self,
            Span(
                name=name,
                start=time.perf_counter(),
                parent=parent,
                attributes=dict(attributes),
            ),
        )

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    @property
    def finished(self) -> list[Span]:
        """Finished spans, oldest first (a copy)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def __repr__(self) -> str:
        with self._lock:
            return f"Tracer(finished={len(self._finished)})"
