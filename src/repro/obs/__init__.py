"""Observability: metrics, tracing and telemetry for the estimation paths.

The paper's pitch is *cheap, predictable* estimation for a cost-based
optimizer; this subsystem makes both halves of that claim observable
per call instead of per sweep:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Histogram` /
  :class:`Timer` primitives in a thread-safe :class:`MetricsRegistry`
  with a snapshot/merge protocol (used to aggregate forked workers);
* :mod:`repro.obs.trace` — a span-based :class:`Tracer` with a
  context-manager API;
* :mod:`repro.obs.telemetry` — a JSONL :class:`TelemetrySink` plus
  :func:`read_telemetry`;
* :mod:`repro.obs.runtime` — the ambient state: :func:`observe`
  enables instrumentation for a block and installs the registry /
  tracer / sink; :func:`enabled` is the one-branch hot-path guard;
* :mod:`repro.obs.report` — :func:`render_report` turns a telemetry
  file into per-estimator latency and error tables (the
  ``python -m repro obs-report`` command).

Instrumented call sites (all no-ops while :func:`enabled` is False):
every :meth:`Estimator.estimate` call (wall time, ``mre``, sample and
bucket counts — via the base-class hook), the PL/PH summary-build vs
estimate-phase split, :class:`repro.perf.SummaryCache` hits / misses /
evictions / bytes, and the experiment harness's per-query rows.

Quickstart::

    from repro import obs

    with obs.observe(sink=obs.TelemetrySink("telemetry.jsonl")) as reg:
        rows = evaluate(dataset, queries, methods)
        obs.emit_summary()
    print(reg.counters()["estimator.PL.calls"])
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    merge_snapshots,
)
from repro.obs.report import render_report, summarize_telemetry
from repro.obs.runtime import (
    emit,
    emit_summary,
    enabled,
    get_registry,
    get_sink,
    get_tracer,
    observe,
    phase_timer,
    record_cache,
    record_estimate,
    record_query,
)
from repro.obs.telemetry import (
    TelemetrySink,
    iter_telemetry,
    memory_sink,
    read_telemetry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetrySink",
    "Timer",
    "Tracer",
    "emit",
    "emit_summary",
    "enabled",
    "get_registry",
    "get_sink",
    "get_tracer",
    "iter_telemetry",
    "memory_sink",
    "merge_snapshots",
    "observe",
    "phase_timer",
    "record_cache",
    "record_estimate",
    "record_query",
    "read_telemetry",
    "render_report",
    "summarize_telemetry",
]
