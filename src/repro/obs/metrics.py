"""Metric primitives: counters, histograms, timers, and their registry.

Everything here is dependency-free and cheap enough to live on hot
paths.  Thread safety comes from per-thread *sharding* rather than
locks: an :meth:`Counter.inc` or :meth:`Histogram.observe` touches only
the calling thread's shard (plain dict/attribute operations, atomic
under the GIL), so the write path acquires no locks at all.  Aggregate
reads (``value``, ``count``, :meth:`~MetricsRegistry.snapshot`) fold
the shards; under concurrent writers they are eventually consistent —
exact whenever the writers have quiesced, which is when anyone reads
them.  The :class:`MetricsRegistry` owns named instances, produces
JSON-able :meth:`~MetricsRegistry.snapshot` dictionaries, and merges
snapshots back — the protocol the experiment harness uses to aggregate
per-worker metrics into the parent process after a fork fan-out.

Merging is associative and commutative over counter values and histogram
totals, so parent totals are independent of how queries were sharded
over workers.
"""

from __future__ import annotations

import math
import threading
import time
from threading import get_ident
from typing import Any, Iterable, Mapping

#: Observations retained per histogram for percentile queries; totals
#: (count/sum/min/max) keep accumulating past the cap.
DEFAULT_KEEP = 4096


class Counter:
    """A monotonically increasing integer metric.

    Sharded per thread: each thread increments its own slot, so
    :meth:`inc` is lock-free (dict item assignment is atomic under the
    GIL and no two threads share a key).
    """

    __slots__ = ("name", "_shards")

    def __init__(self, name: str) -> None:
        self.name = name
        self._shards: dict[int, int] = {}

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        shards = self._shards
        ident = get_ident()
        shards[ident] = shards.get(ident, 0) + amount

    @property
    def value(self) -> int:
        # list() snapshots the values in one C-level call, so a
        # concurrent first-increment from a new thread cannot raise
        # "dict changed size during iteration".
        return sum(list(self._shards.values()))

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class _HistogramShard:
    """One thread's private slice of a :class:`Histogram`."""

    __slots__ = ("count", "sum", "min", "max", "values")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.values: list[float] = []


class Histogram:
    """A distribution metric: totals plus a bounded sample of values.

    The first :data:`DEFAULT_KEEP` observations (per writer thread) are
    retained verbatim — deterministic, unlike reservoir sampling — for
    percentile queries; ``count``/``sum``/``min``/``max`` stay exact
    regardless.  Like :class:`Counter`, writes go to a per-thread shard
    and never lock; aggregate properties fold the shards on read.
    """

    __slots__ = ("name", "keep", "_shards")

    def __init__(self, name: str, keep: int = DEFAULT_KEEP) -> None:
        self.name = name
        self.keep = keep
        self._shards: dict[int, _HistogramShard] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        shards = self._shards
        ident = get_ident()
        shard = shards.get(ident)
        if shard is None:
            shard = shards[ident] = _HistogramShard()
        shard.count += 1
        shard.sum += value
        if value < shard.min:
            shard.min = value
        if value > shard.max:
            shard.max = value
        values = shard.values
        if len(values) < self.keep:
            values.append(value)

    def _shard_list(self) -> list[_HistogramShard]:
        return list(self._shards.values())

    @property
    def count(self) -> int:
        return sum(s.count for s in self._shard_list())

    @property
    def sum(self) -> float:
        return sum(s.sum for s in self._shard_list())

    @property
    def min(self) -> float:
        return min((s.min for s in self._shard_list()), default=math.inf)

    @property
    def max(self) -> float:
        return max((s.max for s in self._shard_list()), default=-math.inf)

    @property
    def mean(self) -> float:
        count = self.count
        return self.sum / count if count else 0.0

    @property
    def values(self) -> list[float]:
        """The retained observations (a copy, capped at ``keep``)."""
        out: list[float] = []
        for shard in self._shard_list():
            out.extend(shard.values)
            if len(out) >= self.keep:
                break
        return out[: self.keep]

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained values (0 if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.values)
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[rank]

    def _merge_snapshot(self, data: Mapping[str, Any]) -> None:
        """Fold a snapshot dict into the calling thread's shard."""
        shards = self._shards
        ident = get_ident()
        shard = shards.get(ident)
        if shard is None:
            shard = shards[ident] = _HistogramShard()
        shard.count += int(data["count"])
        shard.sum += float(data["sum"])
        if data.get("min") is not None:
            shard.min = min(shard.min, float(data["min"]))
        if data.get("max") is not None:
            shard.max = max(shard.max, float(data["max"]))
        room = self.keep - sum(len(s.values) for s in self._shard_list())
        if room > 0:
            shard.values.extend(
                float(v) for v in data.get("values", [])[:room]
            )

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"sum={self.sum:.6g})"
        )


class Timer:
    """Context manager that times a block into a :class:`Histogram`.

    >>> registry = MetricsRegistry()
    >>> with registry.timer("phase.example.seconds"):
    ...     pass
    >>> registry.histogram("phase.example.seconds").count
    1
    """

    __slots__ = ("histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self.elapsed: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.elapsed = time.perf_counter() - self._start
        self.histogram.observe(self.elapsed)


class MetricsRegistry:
    """Thread-safe registry of named counters and histograms.

    Names are free-form dotted strings (``estimator.PL.calls``,
    ``cache.hits``, ``phase.PL.summary_build.seconds``); lookups create
    the metric on first use.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lookup / creation
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        # Lock-free fast path: dict reads are atomic under the GIL, and
        # metrics are never removed while in use; the lock only guards
        # first-use creation.
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.get(name)
                if metric is None:
                    metric = self._counters[name] = Counter(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.get(name)
                if metric is None:
                    metric = self._histograms[name] = Histogram(name)
        return metric

    def timer(self, name: str) -> Timer:
        return Timer(self.histogram(name))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """``name -> value`` for every counter (sorted by name)."""
        with self._lock:
            items = list(self._counters.items())
        return {name: c.value for name, c in sorted(items)}

    def histograms(self) -> dict[str, Histogram]:
        """``name -> Histogram`` (sorted by name; live objects)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._histograms)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Snapshot / merge — the worker aggregation protocol
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A picklable, JSON-able copy of every metric.

        The format is the merge protocol's wire format::

            {"counters": {name: int},
             "histograms": {name: {"count", "sum", "min", "max",
                                   "values"}}}
        """
        with self._lock:
            counters = {n: c.value for n, c in sorted(self._counters.items())}
            histograms = {}
            for name, h in sorted(self._histograms.items()):
                count = h.count
                histograms[name] = {
                    "count": count,
                    "sum": h.sum,
                    "min": h.min if count else None,
                    "max": h.max if count else None,
                    "values": h.values,
                }
        return {"counters": counters, "histograms": histograms}

    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold another registry (or a snapshot of one) into this one.

        Counter values add; histogram totals add and retained values
        concatenate up to the keep cap.  Merging worker snapshots in any
        grouping yields the same totals.
        """
        snapshot = other.snapshot() if isinstance(other, MetricsRegistry) \
            else other
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name)._merge_snapshot(data)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})"
            )


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge snapshot dictionaries into one (convenience for reports)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()
