"""Summarize a telemetry JSONL file into human-readable tables.

Backs ``python -m repro obs-report``.  The input is whatever a
telemetry session produced (see :mod:`repro.obs.telemetry` for the
record shapes); the output is three plain-text sections:

* **estimator calls** — per-estimator call count and p50/p95/mean wall
  time from ``estimate`` events;
* **accuracy** — per-method relative-error distribution from ``query``
  events;
* **counters / caches / phase timings** — the merged ``summary``
  registry snapshots: raw counters, a per-cache effectiveness table
  (the ``cache.*`` summary cache and ``index_cache.*`` probe-index
  cache: hits, misses, hit rate, evictions, built bytes), and the
  summary-build vs estimate-phase time split.

Deliberately dependency-free (stdlib only) so the reporting path works
anywhere the telemetry file does.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import merge_snapshots


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
    return ordered[rank]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value and abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def _format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str
) -> str:
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize_telemetry(
    records: Iterable[Mapping[str, Any]],
) -> dict[str, Any]:
    """Aggregate raw telemetry records into report-ready structures."""
    latencies: dict[str, list[float]] = {}
    errors: dict[str, list[float]] = {}
    queries = 0
    bench: dict[str, float] = {}
    snapshots: list[Mapping[str, Any]] = []
    for record in records:
        event = record.get("event")
        if event == "estimate":
            latencies.setdefault(record["estimator"], []).append(
                float(record["seconds"])
            )
        elif event == "query":
            queries += 1
            for method, error in (record.get("errors") or {}).items():
                errors.setdefault(method, []).append(float(error))
        elif event == "bench":
            bench[record["name"]] = float(record["seconds"])
        elif event == "summary":
            snapshots.append(record.get("metrics", {}))
    return {
        "latencies": {k: sorted(v) for k, v in sorted(latencies.items())},
        "errors": {k: sorted(v) for k, v in sorted(errors.items())},
        "queries": queries,
        "bench": bench,
        "metrics": merge_snapshots(snapshots),
    }


def render_report(records: Iterable[Mapping[str, Any]]) -> str:
    """The full obs-report text for a telemetry record stream."""
    summary = summarize_telemetry(records)
    sections: list[str] = []

    latencies = summary["latencies"]
    if latencies:
        sections.append(
            _format_table(
                ["estimator", "calls", "p50 ms", "p95 ms", "mean ms",
                 "total s"],
                [
                    [
                        name,
                        len(values),
                        _percentile(values, 50) * 1e3,
                        _percentile(values, 95) * 1e3,
                        (sum(values) / len(values)) * 1e3,
                        sum(values),
                    ]
                    for name, values in latencies.items()
                ],
                title="Estimator calls (from per-call telemetry)",
            )
        )

    errors = summary["errors"]
    if errors:
        sections.append(
            _format_table(
                ["method", "queries", "mean err %", "p50 err %",
                 "p95 err %", "max err %"],
                [
                    [
                        method,
                        len(values),
                        sum(values) / len(values),
                        _percentile(values, 50),
                        _percentile(values, 95),
                        values[-1],
                    ]
                    for method, values in errors.items()
                ],
                title=(
                    f"Relative error over {summary['queries']} "
                    "query rows"
                ),
            )
        )

    if summary["bench"]:
        sections.append(
            _format_table(
                ["benchmark", "seconds"],
                sorted(summary["bench"].items()),
                title="Benchmark measurements",
            )
        )

    metrics = summary["metrics"]
    counters = metrics.get("counters", {})
    if counters:
        sections.append(
            _format_table(
                ["counter", "value"],
                sorted(counters.items()),
                title="Counters (merged registry snapshots)",
            )
        )

    cache_rows = []
    kinds = sorted(
        {
            name.rsplit(".", 1)[0]
            for name in counters
            if name.endswith((".hits", ".misses"))
        }
    )
    for kind in kinds:
        hits = int(counters.get(f"{kind}.hits", 0))
        misses = int(counters.get(f"{kind}.misses", 0))
        lookups = hits + misses
        if not lookups:
            continue
        cache_rows.append(
            [
                kind,
                hits,
                misses,
                hits / lookups,
                int(counters.get(f"{kind}.evictions", 0)),
                int(counters.get(f"{kind}.built_nbytes", 0)),
            ]
        )
    if cache_rows:
        sections.append(
            _format_table(
                ["cache", "hits", "misses", "hit rate", "evictions",
                 "built bytes"],
                cache_rows,
                title="Cache effectiveness",
            )
        )

    phase_rows = []
    for name, data in sorted(metrics.get("histograms", {}).items()):
        if not name.startswith("phase."):
            continue
        count = int(data["count"])
        total = float(data["sum"])
        phase_rows.append(
            [name, count, total, (total / count * 1e3) if count else 0.0]
        )
    if phase_rows:
        sections.append(
            _format_table(
                ["phase", "count", "total s", "mean ms"],
                phase_rows,
                title="Phase timings",
            )
        )

    if not sections:
        return "no telemetry records found"
    return "\n\n".join(sections)
