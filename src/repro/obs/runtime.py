"""The ambient observation state: one flag, one registry, one tracer.

Instrumentation call sites throughout the package are guarded by
:func:`enabled`, which reads a single module-level boolean — the
disabled path costs one attribute load and one branch, nothing else.
:func:`observe` enables observation for a ``with`` block, installing the
metrics registry, tracer and (optionally) telemetry sink that the
instrumented code should use; the process-global defaults are restored
on exit, so tests can swap everything without touching each other.

The recording helpers here (:func:`record_estimate`,
:func:`record_cache`, :func:`record_query`) centralize the metric names,
so the estimator base class, the summary cache and the experiment
harness stay one-liner call sites.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator, Mapping, TYPE_CHECKING
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry, Timer
from repro.obs.telemetry import TelemetrySink
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.estimators.base import Estimate

_enabled = False
_registry = MetricsRegistry()
_tracer = Tracer()
_sink: TelemetrySink | None = None
_swap_lock = threading.Lock()

#: ``Estimate.details`` keys mirrored into per-estimator counters —
#: sample sizes and summary granularities, the knobs the paper trades
#: against accuracy.
_DETAIL_COUNTERS = ("samples", "num_buckets", "grid_side", "num_coefficients")

# Metric names are dotted f-strings derived from estimator/stage/event
# names; building them on every hot-path call measurably widens the
# instrumentation overhead, so they are memoized here.  The caches only
# ever grow (one entry per estimator name / stage / cache event) and
# dict reads are GIL-atomic, so no locking is needed.
_phase_name_cache: dict[tuple[str, str], str] = {}
_cache_name_cache: dict[tuple[str, str], str] = {}
_estimator_name_cache: dict[str, dict[str, str]] = {}


def _estimator_names(name: str) -> dict[str, str]:
    names = _estimator_name_cache.get(name)
    if names is None:
        names = {
            "calls": f"estimator.{name}.calls",
            "seconds": f"estimator.{name}.seconds",
            "mre": f"estimator.{name}.mre",
        }
        for key in _DETAIL_COUNTERS:
            names[key] = f"estimator.{name}.{key}"
        _estimator_name_cache[name] = names
    return names


def enabled() -> bool:
    """True while instrumentation is active (cheap hot-path guard)."""
    return _enabled


def get_registry() -> MetricsRegistry:
    """The ambient metrics registry (process-global default)."""
    return _registry


def get_tracer() -> Tracer:
    """The ambient tracer (process-global default)."""
    return _tracer


def get_sink() -> TelemetrySink | None:
    """The ambient telemetry sink, if one is installed."""
    return _sink


@contextmanager
def observe(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    sink: TelemetrySink | None = None,
    enabled: bool = True,
) -> Iterator[MetricsRegistry]:
    """Enable observation for the block, swapping the ambient objects.

    Args:
        registry: registry to record into (default: a fresh one, so the
            block's metrics are isolated).
        tracer: tracer for spans (default: a fresh one).
        sink: telemetry sink for streamed events; None leaves the block
            unsinked (metrics and spans only) — the cheap mode.
        enabled: pass False to force observation *off* for the block,
            even inside an outer ``observe``.

    Yields the installed registry.
    """
    global _enabled, _registry, _tracer, _sink
    new_registry = registry if registry is not None else MetricsRegistry()
    new_tracer = tracer if tracer is not None else Tracer()
    with _swap_lock:
        previous = (_enabled, _registry, _tracer, _sink)
        _enabled = enabled
        _registry = new_registry
        _tracer = new_tracer
        _sink = sink
    try:
        yield new_registry
    finally:
        with _swap_lock:
            _enabled, _registry, _tracer, _sink = previous


# ----------------------------------------------------------------------
# Phase timers
# ----------------------------------------------------------------------


class _NullTimer:
    """Do-nothing context manager returned while observation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_TIMER = _NullTimer()


def phase_timer(estimator: str, stage: str) -> Timer | _NullTimer:
    """Time one phase of an estimator call.

    ``stage`` is conventionally ``"summary_build"`` (histogram/sample
    construction, amortized away by the summary cache) or
    ``"estimate"`` (the arithmetic over built summaries).  Records into
    ``phase.<estimator>.<stage>.seconds``.
    """
    if not _enabled:
        return _NULL_TIMER
    key = (estimator, stage)
    name = _phase_name_cache.get(key)
    if name is None:
        name = _phase_name_cache[key] = f"phase.{estimator}.{stage}.seconds"
    return Timer(_registry.histogram(name))


# ----------------------------------------------------------------------
# Recording helpers (call sites assume the enabled() guard already ran)
# ----------------------------------------------------------------------


def record_estimate(
    name: str,
    result: "Estimate",
    seconds: float,
    n_ancestors: int,
    n_descendants: int,
) -> None:
    """Record one finished ``Estimator.estimate`` call."""
    registry = _registry
    names = _estimator_names(name)
    registry.counter(names["calls"]).inc()
    registry.histogram(names["seconds"]).observe(seconds)
    details = result.details
    for key in _DETAIL_COUNTERS:
        value = details.get(key)
        if value is not None:
            registry.counter(names[key]).inc(int(value))
    if result.mre is not None and math.isfinite(result.mre):
        registry.histogram(names["mre"]).observe(result.mre)
    sink = _sink
    if sink is not None:
        # The estimate payload is the shared wire schema
        # (Estimate.to_dict) so telemetry, BENCH_*.json and service
        # responses all serialize results identically.
        sink.emit(
            {
                "event": "estimate",
                "seconds": seconds,
                "ancestors": n_ancestors,
                "descendants": n_descendants,
                **result.to_dict(),
            }
        )


def record_cache(event: str, amount: int = 1, kind: str = "cache") -> None:
    """Record a cache event (``hits``/``misses``/``evictions``/...).

    ``kind`` prefixes the counter name: the summary cache records under
    ``cache.*``, the probe-index cache under ``index_cache.*``.
    """
    key = (kind, event)
    name = _cache_name_cache.get(key)
    if name is None:
        name = _cache_name_cache[key] = f"{kind}.{event}"
    _registry.counter(name).inc(amount)


def record_query(
    query_id: str,
    true_size: int,
    errors: dict[str, float],
    estimates: dict[str, float],
) -> None:
    """Record one harness query row; streams it when a sink is active."""
    _registry.counter("harness.queries").inc()
    sink = _sink
    if sink is not None:
        sink.emit(
            {
                "event": "query",
                "query": query_id,
                "true_size": true_size,
                "errors": errors,
                "estimates": estimates,
            }
        )


def record_service(
    counters: Mapping[str, int] | None = None,
    histograms: Mapping[str, float] | None = None,
) -> None:
    """Mirror estimation-service metrics into the ambient registry.

    The service keeps its own always-on registry (its ``stats()``
    endpoint); while observation is enabled the same ``service.*`` names
    are recorded ambiently so obs-report and telemetry summaries include
    the serving layer.  Call sites guard with :func:`enabled`.
    """
    registry = _registry
    if counters:
        for name, amount in counters.items():
            registry.counter(name).inc(amount)
    if histograms:
        for name, value in histograms.items():
            registry.histogram(name).observe(value)


def emit(record: dict[str, Any]) -> None:
    """Stream a free-form record to the ambient sink (if any)."""
    sink = _sink
    if sink is not None:
        sink.emit(record)


def emit_summary() -> None:
    """Stream the ambient registry's snapshot as a ``summary`` record."""
    sink = _sink
    if sink is not None:
        sink.emit({"event": "summary", "metrics": _registry.snapshot()})
