"""JSONL telemetry sink and reader.

A :class:`TelemetrySink` serializes one JSON object per line to a file
(or any writable text stream), under a lock so concurrent threads never
interleave partial lines.  Records are free-form dictionaries with an
``"event"`` discriminator; the ones this package emits:

* ``{"event": "estimate", "estimator", "seconds", "value", "mre", ...}``
  — one per instrumented :meth:`Estimator.estimate` call;
* ``{"event": "query", "query", "true_size", "errors", "estimates"}``
  — one per harness query row;
* ``{"event": "span", "name", "seconds", ...}`` — a finished trace span;
* ``{"event": "bench", "name", "seconds"}`` — one benchmark measurement;
* ``{"event": "summary", "metrics": <registry snapshot>}`` — the final
  aggregated registry, written when a telemetry session closes.

Serialization uses Python's JSON flavor (``Infinity``/``NaN`` literals
allowed) because relative errors are legitimately infinite on zero-truth
queries; :func:`read_telemetry` parses them back.
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path
from typing import Any, IO, Iterator, Mapping


class TelemetrySink:
    """Append JSON records, one per line, to a path or text stream.

    Args:
        target: a filesystem path (opened for writing, parents created)
            or an already-open writable text stream (not closed by
            :meth:`close` unless owned).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = path.open("w", encoding="utf-8")
            self._owns_stream = True
            self.path: Path | None = path
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._lock = threading.Lock()
        self.emitted = 0
        self._closed = False

    def emit(self, record: Mapping[str, Any]) -> None:
        """Write one record as a JSON line (no-op after close)."""
        line = json.dumps(record, default=str)
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self.emitted += 1

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "<stream>"
        return f"TelemetrySink({where}, emitted={self.emitted})"


def iter_telemetry(source: str | Path | IO[str]) -> Iterator[dict[str, Any]]:
    """Yield records from a JSONL telemetry file, skipping blank lines."""
    if isinstance(source, (str, Path)):
        stream: IO[str] = Path(source).open("r", encoding="utf-8")
        owns = True
    else:
        stream = source
        owns = False
    try:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)
    finally:
        if owns:
            stream.close()


def read_telemetry(source: str | Path | IO[str]) -> list[dict[str, Any]]:
    """All records of a JSONL telemetry file as a list."""
    return list(iter_telemetry(source))


def memory_sink() -> tuple[TelemetrySink, io.StringIO]:
    """A sink writing to an in-memory buffer (handy for tests)."""
    buffer = io.StringIO()
    return TelemetrySink(buffer), buffer
