"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table2 --dataset xmark
    python -m repro table4
    python -m repro fig3
    python -m repro fig5 --runs 5
    python -m repro fig6 --budget 400
    python -m repro fig7 --scale 0.2
    python -m repro fig8
    python -m repro xmach
    python -m repro service-bench --workers 4
    python -m repro all --scale 0.1 --runs 2

Reports print to stdout; ``--out DIR`` additionally writes each report to
``DIR/<name>.txt``.

Observability: ``--telemetry FILE`` runs any experiment command with
instrumentation enabled (see :mod:`repro.obs`), streaming per-call and
per-query events to ``FILE`` as JSONL and closing with an aggregated
``summary`` record; ``python -m repro obs-report --input FILE`` renders
such a file into per-estimator latency and error tables.

Correctness tooling: ``python -m repro qa --budget-s N --seed S`` runs
the generative-testing campaign (:mod:`repro.qa`) and exits non-zero on
any confirmed finding; ``--report FILE`` writes the JSON report with
minimized reproducers, ``--replay FILE`` re-executes a saved report or
reproducer block (see docs/TESTING.md).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import Callable

from repro import obs

from repro.core.budget import SpaceBudget
from repro.estimators.mre import maximum_relative_error
from repro.experiments.claims import render_claims, verify_all
from repro.experiments.histograms import (
    BUCKET_SWEEP,
    run_bucket_sweep,
    run_histogram_comparison,
)
from repro.experiments.overall import run_overall
from repro.experiments.report import format_series
from repro.experiments.sampling import (
    SAMPLE_SWEEP,
    run_sample_sweep,
    run_sampling_comparison,
)
from repro.experiments.tables import render_table2, render_table3, render_table4


def _emit(name: str, text: str, out_dir: Path | None) -> None:
    print(f"===== {name} =====")
    print(text)
    print()
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.txt").write_text(text + "\n")


def _cmd_table2(args, emit) -> None:
    datasets = [args.dataset] if args.dataset else ["xmark", "dblp", "xmach"]
    for name in datasets:
        emit(f"table2_{name}", render_table2(name, scale=args.scale))


def _cmd_table3(args, emit) -> None:
    datasets = [args.dataset] if args.dataset else ["xmark", "dblp", "xmach"]
    for name in datasets:
        emit(f"table3_{name}", render_table3(name))


def _cmd_table4(args, emit) -> None:
    emit("table4_cov", render_table4(scale=args.scale))


def _cmd_fig3(args, emit) -> None:
    maxima = []
    for period in range(1, 10):
        best = max(
            maximum_relative_error(period + i / 1000.0)
            for i in range(1, 1000)
        )
        maxima.append((float(period), best * 100.0))
    emit(
        "fig3_mre",
        "Figure 3: MRE (%) vs cov\n"
        + format_series("per-period maxima", maxima),
    )


def _overall(args, emit, dataset: str, label: str) -> None:
    budgets = (
        (SpaceBudget(args.budget),) if args.budget else ()
    )
    results = run_overall(
        dataset,
        budgets=budgets,
        scale=args.scale,
        runs=args.runs,
        seed=args.seed,
    )
    emit(label, "\n\n".join(panel.render() for panel in results))


def _cmd_claims(args, emit) -> None:
    results = verify_all(scale=args.scale, runs=args.runs, seed=args.seed)
    emit("claims_summary", render_claims(results))


def _cmd_fig5(args, emit) -> None:
    _overall(args, emit, "xmark", "fig5_xmark_overall")


def _cmd_fig6(args, emit) -> None:
    _overall(args, emit, "dblp", "fig6_dblp_overall")


def _cmd_xmach(args, emit) -> None:
    _overall(args, emit, "xmach", "xmach_overall")


def _cmd_fig7(args, emit) -> None:
    for method, name in (("PH", "fig7a_ph_sweep"), ("PL", "fig7b_pl_sweep")):
        sweep = run_bucket_sweep(
            "xmark", method, BUCKET_SWEEP, scale=args.scale
        )
        emit(name, sweep.render())
    emit("fig7c_ph_vs_pl", run_histogram_comparison("xmark", scale=args.scale))


def _cmd_fig8(args, emit) -> None:
    for method, name in (("IM", "fig8a_im_sweep"), ("PM", "fig8b_pm_sweep")):
        sweep = run_sample_sweep(
            "xmark",
            method,
            SAMPLE_SWEEP,
            scale=args.scale,
            runs=args.runs,
            seed=args.seed,
        )
        emit(name, sweep.render())
    emit(
        "fig8c_im_vs_pm",
        run_sampling_comparison(
            "xmark", samples=100, scale=args.scale, runs=args.runs,
            seed=args.seed,
        ),
    )


def _cmd_service_bench(args, emit) -> None:
    from repro.service.bench import render_report, run_service_bench

    report = run_service_bench(
        scale=args.scale,
        workers=args.workers,
        seed=args.seed,
    )
    emit("service_bench", render_report(report))


_COMMANDS: dict[str, Callable] = {
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig3": _cmd_fig3,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "xmach": _cmd_xmach,
    "claims": _cmd_claims,
    "service-bench": _cmd_service_bench,
}


def _cmd_qa(args) -> int:
    import json

    from repro.qa import replay_file, run_qa

    if args.replay is not None:
        try:
            message = replay_file(str(args.replay))
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot replay {args.replay}: {error}", file=sys.stderr)
            return 2
        if message is None:
            print(f"replay clean: {args.replay}")
            return 0
        print(f"replay reproduces failure: {message}", file=sys.stderr)
        return 1
    report = run_qa(budget_s=args.budget_s, seed=args.seed)
    text = json.dumps(report, indent=2)
    if args.report is not None:
        args.report.write_text(text + "\n")
        print(f"wrote {args.report}")
    else:
        print(text)
    confirmed = report["confirmed_findings"]
    gates_failed = sum(1 for g in report["gates"] if not g["passed"])
    print(
        f"qa: {report['cases_run']} cases in {report['elapsed_s']:.1f}s, "
        f"{confirmed} confirmed finding(s), "
        f"{len(report['gates'])} gate(s) ({gates_failed} failed)",
        file=sys.stderr,
    )
    return 1 if confirmed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_COMMANDS, "obs-report", "qa", "all"],
        help="which table/figure to regenerate, obs-report to "
        "summarize a telemetry file, or qa to run the "
        "generative-testing campaign",
    )
    parser.add_argument("--dataset", choices=["xmark", "dblp", "xmach"],
                        help="restrict table2/table3 to one dataset")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default 1.0)")
    parser.add_argument("--runs", type=int, default=5,
                        help="repetitions for sampling methods")
    parser.add_argument("--budget", type=int, default=None,
                        help="single byte budget for fig5/fig6/xmach")
    parser.add_argument("--workers", type=int, default=0,
                        help="service-bench worker threads "
                        "(0 = caller-runs, the embedded-optimizer mode)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write reports into")
    parser.add_argument("--telemetry", type=Path, default=None,
                        help="run instrumented, streaming JSONL "
                        "telemetry to this file")
    parser.add_argument("--input", type=Path, default=None,
                        help="telemetry JSONL file for obs-report")
    parser.add_argument("--budget-s", type=float, default=60.0,
                        help="qa wall-clock budget in seconds")
    parser.add_argument("--report", type=Path, default=None,
                        help="qa: write the JSON report here instead "
                        "of stdout")
    parser.add_argument("--replay", type=Path, default=None,
                        help="qa: replay a saved report/reproducer "
                        "instead of fuzzing")
    args = parser.parse_args(argv)

    if args.experiment == "qa":
        return _cmd_qa(args)

    if args.experiment == "obs-report":
        if args.input is None:
            parser.error("obs-report requires --input FILE")
        print(obs.render_report(obs.iter_telemetry(args.input)))
        return 0

    emit = lambda name, text: _emit(name, text, args.out)  # noqa: E731
    sink = (
        obs.TelemetrySink(args.telemetry)
        if args.telemetry is not None
        else None
    )
    scope = obs.observe(sink=sink) if sink is not None else nullcontext()
    try:
        with scope:
            if args.experiment == "all":
                for command in _COMMANDS.values():
                    command(args, emit)
            else:
                _COMMANDS[args.experiment](args, emit)
            if sink is not None:
                obs.emit_summary()
    finally:
        if sink is not None:
            sink.close()
            print(
                f"wrote {sink.emitted} telemetry records to "
                f"{args.telemetry}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
