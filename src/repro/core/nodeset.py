"""Node sets: the operands of a containment join.

A *node set* is the result of evaluating a predicate (typically a tag name,
e.g. the XPath query ``//appendix``) against a region-coded XML data tree.
The containment join operates on two node sets, an ancestor set ``A`` and a
descendant set ``D``.

Node sets keep their elements sorted by start position and cache numpy views
of the start/end codes so that joins, model construction and estimators all
run in vectorized or binary-search time.
"""

from __future__ import annotations

import hashlib
from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.element import Element
from repro.core.errors import (
    EmptyNodeSetError,
    InvalidRegionCodeError,
)
from repro.core.workspace import Workspace


class NodeSet:
    """An immutable, start-ordered collection of region-coded elements.

    Args:
        elements: the elements of the set, in any order.
        name: optional human-readable name (usually the tag predicate).
        validate: when True (default) verify the region-code invariants:
            distinct codes, ``start < end`` and strict nesting (no partial
            overlap between any two regions).

    Strict-nesting validation runs in O(n log n) via a scan with a stack of
    open regions, not O(n^2).
    """

    __slots__ = ("_elements", "_name", "__dict__")

    def __init__(
        self,
        elements: Iterable[Element],
        name: str | None = None,
        validate: bool = True,
    ) -> None:
        items = sorted(elements, key=lambda e: e.start)
        self._elements: tuple[Element, ...] | None = tuple(items)
        self._name = name
        if validate:
            self._validate()

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        ends: np.ndarray,
        name: str | None = None,
        fingerprint: str | None = None,
    ) -> "NodeSet":
        """Construct directly from aligned start/end code arrays.

        The arrays must already be start-sorted and satisfy the region
        invariants (the intended callers — shard partitioning, shared-
        memory attach — slice them out of an already validated set).
        Elements are materialized lazily, only if something iterates the
        set; the numpy views every kernel uses are the arrays themselves
        (shared, not copied — read-only views stay read-only).  Passing
        the precomputed ``fingerprint`` keeps cache keys content-stable
        without re-hashing in every worker process.
        """
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise InvalidRegionCodeError(
                f"start/end arrays must be aligned 1-D, got "
                f"{starts.shape} and {ends.shape}"
            )
        self = cls.__new__(cls)
        self._elements = None
        self._name = name
        self.__dict__["starts"] = starts
        self.__dict__["ends"] = ends
        if fingerprint is not None:
            self.__dict__["fingerprint"] = fingerprint
        return self

    def _materialize(self) -> tuple[Element, ...]:
        """Build the element tuple of an array-backed set on demand."""
        tag = self._name if self._name is not None else "node"
        elements = tuple(
            Element(tag=tag, start=int(start), end=int(end))
            for start, end in zip(
                self.__dict__["starts"].tolist(),
                self.__dict__["ends"].tolist(),
            )
        )
        self._elements = elements
        return elements

    def _validate(self) -> None:
        seen: set[int] = set()
        for element in self._elements:
            for code in (element.start, element.end):
                if code in seen:
                    raise InvalidRegionCodeError(
                        f"duplicate region code {code} in node set "
                        f"{self._name!r}"
                    )
                seen.add(code)
        # Strict nesting: sweep in start order keeping a stack of open ends.
        open_ends: list[int] = []
        for element in self._elements:
            while open_ends and open_ends[-1] < element.start:
                open_ends.pop()
            if open_ends and element.end > open_ends[-1]:
                raise InvalidRegionCodeError(
                    f"element <{element.tag}> ({element.start}, "
                    f"{element.end}) partially overlaps an enclosing region "
                    f"ending at {open_ends[-1]}"
                )
            open_ends.append(element.end)

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Name of the predicate that produced the set (or ``<anonymous>``)."""
        return self._name if self._name is not None else "<anonymous>"

    @property
    def elements(self) -> tuple[Element, ...]:
        """The elements, sorted by start position."""
        elements = self._elements
        return elements if elements is not None else self._materialize()

    def __len__(self) -> int:
        elements = self._elements
        if elements is not None:
            return len(elements)
        return int(self.__dict__["starts"].shape[0])

    def __iter__(self) -> Iterator[Element]:
        return iter(self.elements)

    def __getitem__(self, index: int) -> Element:
        return self.elements[index]

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeSet):
            return NotImplemented
        return self.elements == other.elements

    def __hash__(self) -> int:
        return hash(self.elements)

    def __repr__(self) -> str:
        return f"NodeSet(name={self.name!r}, size={len(self)})"

    # ------------------------------------------------------------------
    # Cached vector views
    # ------------------------------------------------------------------

    @cached_property
    def starts(self) -> np.ndarray:
        """Start codes in ascending order (int64)."""
        return np.fromiter(
            (e.start for e in self._elements), dtype=np.int64, count=len(self)
        )

    @cached_property
    def ends(self) -> np.ndarray:
        """End codes, aligned with :attr:`starts` (int64)."""
        return np.fromiter(
            (e.end for e in self._elements), dtype=np.int64, count=len(self)
        )

    @cached_property
    def sorted_ends(self) -> np.ndarray:
        """End codes in ascending order (for rank computations)."""
        return np.sort(self.ends)

    @cached_property
    def lengths(self) -> np.ndarray:
        """Region lengths ``end - start``, aligned with :attr:`starts`."""
        return self.ends - self.starts

    @property
    def turning_points_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Turning points of the covering table, cached on the object.

        Columnar ``(positions, values)`` — the arrays the T-tree probes
        and bifocal's dense-run scan consume.  Every consumer that used
        to call :func:`repro.models.position.turning_point_arrays` per
        index build now shares one computation per node set; the result
        is immutable, like every other cached view.

        Under :func:`repro.perf.reference_kernels` the cache is
        *bypassed* in both directions — the loop implementation of
        record runs uncached on every call, so reference timings and
        semantics stay exactly those of the original per-call code.
        """
        from repro import perf
        from repro.models.position import turning_point_arrays

        if perf.reference_kernels_enabled():
            return turning_point_arrays(self)
        cached = self.__dict__.get("_turning_points")
        if cached is None:
            cached = turning_point_arrays(self)
            cached[0].setflags(write=False)
            cached[1].setflags(write=False)
            self.__dict__["_turning_points"] = cached
        return cached

    @cached_property
    def fingerprint(self) -> str:
        """Content digest of the set's region codes (order-insensitive).

        Two node sets with identical elements get the same fingerprint
        regardless of construction path; the summary cache
        (:mod:`repro.perf.cache`) keys built histograms on it.  Tags are
        excluded deliberately — summaries depend only on region codes.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(self).to_bytes(8, "little"))
        digest.update(self.starts.tobytes())
        digest.update(self.ends.tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------

    def workspace(self) -> Workspace:
        """The workspace spanned by this set alone, ``[min start, max end]``."""
        if len(self) == 0:
            raise EmptyNodeSetError(
                f"node set {self.name!r} is empty; it has no workspace"
            )
        return Workspace(int(self.starts[0]), int(self.sorted_ends[-1]))

    @cached_property
    def has_overlap(self) -> bool:
        """True if some element of the set contains another element of the set.

        The paper calls a set without this property a *no-overlap* set
        (Table 2); the PH baseline needs that flag, while PL does not.
        Because codes are strictly nested, containment between set members
        shows up between start-adjacent members: member ``i`` contains member
        ``i+1`` iff ``ends[i] > starts[i+1]``.
        """
        if len(self) < 2:
            return False
        return bool(np.any(self.ends[:-1] > self.starts[1:]))

    @cached_property
    def max_nesting_depth(self) -> int:
        """Maximum number of set members stacked above any one member.

        1 for a non-empty no-overlap set, 0 for an empty set.  This is the
        per-set analogue of the tree height ``H`` bounding subjoin sizes in
        Theorems 3 and 4.
        """
        depth = 0
        best = 0
        open_ends: list[int] = []
        for element in self.elements:
            while open_ends and open_ends[-1] < element.start:
                open_ends.pop()
            open_ends.append(element.end)
            depth = len(open_ends)
            best = max(best, depth)
        return best

    @cached_property
    def total_length(self) -> int:
        """Sum of region lengths over the set."""
        return int(self.lengths.sum())

    @cached_property
    def average_length(self) -> float:
        """Mean region length, 0.0 for an empty set."""
        if len(self) == 0:
            return 0.0
        return float(self.lengths.mean())

    def covered_length(self) -> int:
        """Length of the union of all regions (merged-interval length).

        Unlike :attr:`total_length` this does not double-count nested
        regions; it is the statistic the coverage histogram stores.
        """
        covered = 0
        current_end: int | None = None
        current_start = 0
        for element in self.elements:
            if current_end is None or element.start > current_end:
                if current_end is not None:
                    covered += current_end - current_start
                current_start, current_end = element.start, element.end
            else:
                current_end = max(current_end, element.end)
        if current_end is not None:
            covered += current_end - current_start
        return covered

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def stab_count(self, position: int | float) -> int:
        """Number of member regions containing ``position``.

        Computed as ``|{starts <= position}| - |{ends < position}|`` with two
        binary searches; this is the exact value ``PMA(S)[position]`` of the
        position model.
        """
        started = int(np.searchsorted(self.starts, position, side="right"))
        ended = int(np.searchsorted(self.sorted_ends, position, side="left"))
        return started - ended

    def stab_counts(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`stab_count` over an array of positions."""
        started = np.searchsorted(self.starts, positions, side="right")
        ended = np.searchsorted(self.sorted_ends, positions, side="left")
        return started - ended

    def count_starts_in(self, lo: float, hi: float) -> int:
        """Number of members whose start position lies in ``[lo, hi)``."""
        left = int(np.searchsorted(self.starts, lo, side="left"))
        right = int(np.searchsorted(self.starts, hi, side="left"))
        return right - left

    def has_start_at(self, position: int) -> bool:
        """True if some member starts exactly at ``position``.

        Equivalent to ``PMD(S)[position] == 1`` in the position model.
        """
        index = int(np.searchsorted(self.starts, position, side="left"))
        return index < len(self) and int(self.starts[index]) == position

    def restrict(self, workspace: Workspace) -> "NodeSet":
        """Members entirely contained in ``workspace`` (new node set)."""
        kept = [
            e
            for e in self.elements
            if workspace.contains(e.start) and workspace.contains(e.end)
        ]
        return NodeSet(kept, name=self._name, validate=False)

    def sample(self, count: int, rng: np.random.Generator) -> list[Element]:
        """Draw ``count`` members uniformly without replacement."""
        if count > len(self):
            raise EmptyNodeSetError(
                f"cannot sample {count} elements from node set of size "
                f"{len(self)}"
            )
        indices = rng.choice(len(self), size=count, replace=False)
        elements = self.elements
        return [elements[int(i)] for i in indices]

    @classmethod
    def merge(cls, sets: Sequence["NodeSet"], name: str | None = None) -> "NodeSet":
        """Union of several node sets (elements assumed distinct)."""
        elements: list[Element] = []
        for node_set in sets:
            elements.extend(node_set.elements)
        return cls(elements, name=name)
