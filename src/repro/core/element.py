"""Region codes and region-coded elements.

The paper encodes every element of an XML data tree with a *region code*
``(start, end)`` assigned by a depth-first traversal (Zhang et al., SIGMOD
2001).  Containment is then a pure arithmetic test: ``a`` is an ancestor of
``d`` iff ``a.start < d.start < a.end`` (the second condition
``d.end < a.end`` is implied by strict nesting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.core.errors import InvalidRegionCodeError


class Region(NamedTuple):
    """A ``(start, end)`` region code with ``start < end``.

    Region codes of a well-formed XML tree are *strictly nested*: two regions
    are either disjoint or one properly contains the other.
    """

    start: int
    end: int

    @property
    def length(self) -> int:
        """Length of the interval ``[start, end]``."""
        return self.end - self.start

    def contains(self, other: "Region") -> bool:
        """Return True if this region properly contains ``other``."""
        return self.start < other.start and other.end < self.end

    def contains_point(self, position: int | float) -> bool:
        """Return True if ``position`` lies inside ``[start, end]``."""
        return self.start <= position <= self.end

    def disjoint(self, other: "Region") -> bool:
        """Return True if the two regions do not intersect at all."""
        return self.end < other.start or other.end < self.start

    def partially_overlaps(self, other: "Region") -> bool:
        """Return True if the regions intersect without containment.

        Strictly nested region codes never partially overlap; this predicate
        exists to *validate* that invariant.
        """
        if self.disjoint(other):
            return False
        return not (
            self.contains(other) or other.contains(self) or self == other
        )

    def validate(self) -> "Region":
        """Raise :class:`InvalidRegionCodeError` unless ``start < end``."""
        if self.start >= self.end:
            raise InvalidRegionCodeError(
                f"region ({self.start}, {self.end}) must satisfy start < end"
            )
        return self


@dataclass(frozen=True, slots=True)
class Element:
    """A region-coded XML element.

    Attributes:
        tag: element tag name (the predicate used to form node sets).
        start: start position of the region code.
        end: end position of the region code.
        level: depth in the data tree (root has level 0).
    """

    tag: str
    start: int
    end: int
    level: int = 0

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise InvalidRegionCodeError(
                f"element <{self.tag}> has invalid region "
                f"({self.start}, {self.end}): start must be < end"
            )

    @property
    def region(self) -> Region:
        """The element's region code as a :class:`Region`."""
        return Region(self.start, self.end)

    @property
    def length(self) -> int:
        """Length of the element's region, ``end - start``."""
        return self.end - self.start

    def is_ancestor_of(self, other: "Element") -> bool:
        """Containment test: ``self.start < other.start < self.end``.

        Relies on the strictly nested property, so the symmetric condition
        on ``end`` need not be checked (Section 3.1 of the paper).
        """
        return self.start < other.start < self.end

    def contains_point(self, position: int | float) -> bool:
        """Return True if ``position`` is inside ``[start, end]``."""
        return self.start <= position <= self.end

    def as_interval(self) -> tuple[int, int]:
        """Interval-model view of the element: ``[start, end]``."""
        return (self.start, self.end)

    def as_point(self) -> int:
        """Point (descendant) view of the element: its start position."""
        return self.start
