"""Random-number-generator helpers.

Everything stochastic in the package (dataset generation, sampling
estimators, experiment repetition) accepts either a seed or a ready
:class:`numpy.random.Generator`; this module centralizes the coercion so
results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can
    thread one generator through a pipeline of stochastic steps.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by the boosting wrapper and the experiment harness to give each
    repetition its own stream without correlation.
    """
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
