"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidRegionCodeError(ReproError):
    """A region code violates the XML region coding invariants.

    Raised when ``end <= start``, when two elements share a start or end
    code, or when two regions partially overlap (which the strictly nested
    property of XML forbids).
    """


class EmptyNodeSetError(ReproError):
    """An operation that requires a non-empty node set received an empty one."""


class EstimationError(ReproError):
    """An estimator was configured or invoked incorrectly."""


class ParseError(ReproError):
    """Malformed XML text passed to :mod:`repro.xmltree.parser`."""


class QueryError(ReproError):
    """Malformed or unsupported path expression."""
