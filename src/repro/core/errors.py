"""Exception hierarchy for the repro package.

Everything this package raises on its public paths derives from
:class:`ReproError`, so callers can catch one root type.  The taxonomy
is layered for compatibility: each newer, more specific error subclasses
the older, broader one it used to be raised as (for example
:class:`UnknownEstimatorError` is an :class:`EstimationError`, and
:class:`EmptyNodeSetError` is an :class:`InvalidNodeSetError`), so
``except`` clauses written against earlier versions keep working.  The
mapping is documented in ``docs/API.md``.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class InvalidNodeSetError(ReproError):
    """An operand is not a usable node set.

    Raised when a public entry point receives something that is not a
    :class:`~repro.core.nodeset.NodeSet` (or whose region codes violate
    the XML nesting invariants — see the subclasses).
    """


class InvalidRegionCodeError(InvalidNodeSetError):
    """A region code violates the XML region coding invariants.

    Raised when ``end <= start``, when two elements share a start or end
    code, or when two regions partially overlap (which the strictly nested
    property of XML forbids).
    """


class EmptyNodeSetError(InvalidNodeSetError):
    """An operation that requires a non-empty node set received an empty one."""


class ParseError(ReproError):
    """Malformed XML text passed to :mod:`repro.xmltree.parser`."""


class QueryError(ReproError):
    """Malformed or unsupported path expression."""


class EstimationError(ReproError):
    """An estimator was configured or invoked incorrectly."""


class UnknownEstimatorError(EstimationError):
    """A method name did not resolve to any registered estimator.

    Attributes:
        name: the unresolved name as given.
        candidates: canonical registry names closest to ``name`` (possibly
            empty), ordered by similarity.  When a name is an ambiguous
            fragment ("SEMI", "PLH") *every* near match is listed instead
            of silently picking one.
    """

    def __init__(self, name: str, candidates: tuple[str, ...], message: str):
        super().__init__(message)
        self.name = name
        self.candidates = candidates


class PlanError(EstimationError):
    """The join-order planner was misused or received an invalid plan.

    Raised for chains too short to plan, malformed
    :meth:`~repro.optimizer.planner.JoinPlan.from_dict` payloads, and
    generator contract violations surfaced by ``pre_check``.  Subclasses
    :class:`EstimationError` because planner misuse was historically
    raised as one — ``except EstimationError`` handlers keep working.
    """


class UnknownGeneratorError(UnknownEstimatorError):
    """A name resolved to neither a cardinality generator nor an estimator.

    Carries the same ``name``/``candidates`` attributes as
    :class:`UnknownEstimatorError` (which it subclasses, so existing
    handlers catch it); candidates mix generator names (``EXACT``,
    ``UBOUND``) with estimator registry names.
    """


class UnknownRouterError(UnknownEstimatorError):
    """A name did not resolve to any registered method router.

    Carries the same ``name``/``candidates`` attributes as
    :class:`UnknownEstimatorError` (which it subclasses, so existing
    handlers catch it); candidates are canonical router names
    (``UCB1``, ``THOMPSON``, ``STATIC``).
    """


class FeedbackError(ReproError):
    """The feedback subsystem was configured or invoked incorrectly.

    Raised for malformed :class:`~repro.feedback.FeedbackRecord` /
    ``CorrectionModel`` wire payloads (wrong ``schema_version``, missing
    fields), invalid store merges, and correction-model misuse.
    """


class BudgetExceededError(EstimationError):
    """A space or work budget cannot accommodate the request.

    Raised when a :class:`~repro.core.budget.SpaceBudget` is too small to
    hold a single bucket or sample, and by the estimation service when a
    request's budget is exhausted before any estimator could run.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A deadline expired before a result could be produced.

    Also a :class:`TimeoutError`, so generic timeout handling catches it.
    The estimation service raises it from
    :meth:`~repro.service.ServiceFuture.result` when the caller-side wait
    times out; requests that miss their deadline *inside* the service do
    not raise — they degrade down the fallback ladder and return a
    flagged estimate instead.
    """


class ServiceError(ReproError):
    """The estimation service was used incorrectly (e.g. submit after stop)."""


class StreamError(ReproError):
    """A live workspace mutation or snapshot request was invalid.

    Raised by :mod:`repro.stream` for malformed mutations (inserting an
    element that is already live, deleting one that is not), mutations
    outside the live workspace's position domain, and lookups of tags or
    tenants that do not exist.
    """


class UnknownModuleError(ReproError):
    """A public subsystem name did not resolve.

    Raised by :func:`repro.api.resolve_module` with the same
    nearest-match affordance as :class:`UnknownEstimatorError`: the
    offending ``name``, the ``candidates`` guessed from aliases and
    close spellings, and a human-readable ``message`` that includes a
    "did you mean" hint when there is one.
    """

    def __init__(
        self, name: str, candidates: tuple[str, ...], message: str
    ) -> None:
        super().__init__(message)
        self.name = name
        self.candidates = candidates
