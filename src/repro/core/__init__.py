"""Core data structures: region codes, element sets, workspaces, budgets."""

from repro.core.budget import SpaceBudget
from repro.core.element import Element, Region
from repro.core.errors import (
    EmptyNodeSetError,
    EstimationError,
    InvalidRegionCodeError,
    ReproError,
)
from repro.core.nodeset import NodeSet
from repro.core.rng import make_rng
from repro.core.workspace import Bucket, Workspace

__all__ = [
    "Bucket",
    "Element",
    "EmptyNodeSetError",
    "EstimationError",
    "InvalidRegionCodeError",
    "NodeSet",
    "Region",
    "ReproError",
    "SpaceBudget",
    "Workspace",
    "make_rng",
]
