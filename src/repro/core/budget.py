"""Space-budget accounting used throughout the evaluation (Section 6).

The paper compares estimators under equal *byte* budgets (200, 400, 800
bytes) and states the conversion explicitly: those budgets "roughly
correspond to using 25, 50, 100 buckets for PH histogram method, 10, 20, 40
buckets for PL histogram method and 25, 50, 100 samples for the sampling
methods".  That implies 8 bytes per PH bucket, 20 bytes per PL bucket (one
bucket stores ``n``, ``wss``, ``wse`` and ``l``) and 8 bytes per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import BudgetExceededError

#: Bytes consumed by one PH histogram bucket (a grid-cell counter).
PH_BYTES_PER_BUCKET = 8

#: Bytes consumed by one PL histogram bucket (n, wss, wse, l).
PL_BYTES_PER_BUCKET = 20

#: Bytes consumed by one retained sample in the sampling estimators.
BYTES_PER_SAMPLE = 8

#: The three budgets used for the overall-performance figures (5 and 6).
PAPER_BUDGETS = (200, 400, 800)


@dataclass(frozen=True, slots=True)
class SpaceBudget:
    """A byte budget and its conversions to estimator parameters.

    >>> SpaceBudget(200).pl_buckets
    10
    >>> SpaceBudget(800).samples
    100
    """

    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < max(
            PH_BYTES_PER_BUCKET, PL_BYTES_PER_BUCKET, BYTES_PER_SAMPLE
        ):
            raise BudgetExceededError(
                f"budget of {self.nbytes} bytes cannot hold even one bucket "
                "or sample"
            )

    @property
    def ph_buckets(self) -> int:
        """Grid cells per dimension group affordable for the PH histogram."""
        return self.nbytes // PH_BYTES_PER_BUCKET

    @property
    def pl_buckets(self) -> int:
        """Workspace buckets affordable for the PL histogram."""
        return self.nbytes // PL_BYTES_PER_BUCKET

    @property
    def samples(self) -> int:
        """Sample points affordable for IM-DA-Est / PM-Est."""
        return self.nbytes // BYTES_PER_SAMPLE

    def __str__(self) -> str:
        return f"{self.nbytes}B"


def paper_budgets() -> tuple[SpaceBudget, ...]:
    """The 200/400/800-byte budgets of Figures 5 and 6."""
    return tuple(SpaceBudget(b) for b in PAPER_BUDGETS)
