"""Workspace: the position domain ``[cmin, cmax]`` of a region-coded tree.

The paper defines the workspace as ``[cmin, cmax]`` where ``cmin`` is the
minimum start code and ``cmax`` the maximum end code over all elements of the
data tree.  Histogram estimators partition the workspace into equal-width
buckets; the PM-Est sampler draws positions uniformly from it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.core.errors import EmptyNodeSetError, ReproError


class Bucket(NamedTuple):
    """One histogram bucket ``[wss, wse)`` over the workspace.

    ``wss``/``wse`` follow the paper's notation (workspace bucket start and
    end positions).  Buckets are half-open on the right except for the last
    bucket, which closes the workspace.
    """

    index: int
    wss: float
    wse: float

    @property
    def width(self) -> float:
        return self.wse - self.wss


class Workspace(NamedTuple):
    """The inclusive position range ``[lo, hi]`` of a data tree or join."""

    lo: int
    hi: int

    @property
    def width(self) -> int:
        """Number of integer positions in the workspace, ``hi - lo + 1``.

        This is the ``w`` used to scale PM-Est estimates (Algorithm 3).
        """
        return self.hi - self.lo + 1

    @property
    def span(self) -> int:
        """Continuous extent of the workspace, ``hi - lo``."""
        return self.hi - self.lo

    def validate(self) -> "Workspace":
        if self.lo > self.hi:
            raise ReproError(f"workspace [{self.lo}, {self.hi}] is empty")
        return self

    def contains(self, position: int | float) -> bool:
        """Return True if ``position`` lies inside ``[lo, hi]``."""
        return self.lo <= position <= self.hi

    def buckets(self, count: int) -> list[Bucket]:
        """Partition the workspace into ``count`` equal-width buckets.

        Bucket boundaries are real-valued so that integer positions are
        distributed as evenly as possible; position ``p`` belongs to bucket
        ``i`` iff ``wss <= p < wse`` (the last bucket also includes ``hi``).
        """
        self.validate()
        if count < 1:
            raise ReproError(f"bucket count must be >= 1, got {count}")
        width = self.width / count
        return [
            Bucket(i, self.lo + i * width, self.lo + (i + 1) * width)
            for i in range(count)
        ]

    def bucket_of(self, position: int | float, count: int) -> int:
        """Index of the bucket containing ``position`` among ``count`` buckets."""
        self.validate()
        if not self.contains(position):
            raise ReproError(
                f"position {position} outside workspace [{self.lo}, {self.hi}]"
            )
        width = self.width / count
        index = int((position - self.lo) / width)
        return min(index, count - 1)

    def positions(self) -> Iterator[int]:
        """Iterate over every integer position of the workspace."""
        return iter(range(self.lo, self.hi + 1))

    @classmethod
    def spanning(cls, workspaces: Iterable["Workspace"]) -> "Workspace":
        """Smallest workspace containing every workspace in ``workspaces``."""
        items = list(workspaces)
        if not items:
            raise EmptyNodeSetError("cannot span zero workspaces")
        return cls(
            min(w.lo for w in items), max(w.hi for w in items)
        ).validate()
