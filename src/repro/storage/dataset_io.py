"""Persist generated datasets to disk and load them back.

A dataset directory holds the document as XML text plus a JSON manifest
(name, scale, seed, paper counts, coding granularity), so experiments can
be re-run across processes on byte-identical documents without re-running
the generators.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.errors import ReproError
from repro.datasets.base import Dataset
from repro.xmltree.parser import parse_xml
from repro.xmltree.serializer import to_xml

_MANIFEST = "dataset.json"
_DOCUMENT = "document.xml"
_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, directory: str | Path) -> Path:
    """Write ``dataset`` to ``directory`` (created if missing).

    The document is serialized with explicit region codes so the reload
    is coding-exact even for word-granularity datasets (whose codes are
    not reconstructible from structure alone).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _DOCUMENT).write_text(
        to_xml(dataset.tree, include_regions=True)
    )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "scale": dataset.scale,
        "seed": dataset.seed,
        "elements": dataset.tree.size,
        "paper_counts": dataset.paper_counts,
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return directory


def load_dataset(directory: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    document_path = directory / _DOCUMENT
    if not manifest_path.exists() or not document_path.exists():
        raise ReproError(
            f"{directory} is not a dataset directory (needs "
            f"{_MANIFEST} and {_DOCUMENT})"
        )
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported dataset format version "
            f"{manifest.get('format_version')!r}"
        )
    tree = _parse_with_recorded_codes(document_path.read_text())
    if tree.size != manifest["elements"]:
        raise ReproError(
            f"document has {tree.size} elements but the manifest "
            f"records {manifest['elements']}"
        )
    return Dataset(
        name=manifest["name"],
        tree=tree,
        paper_counts=manifest["paper_counts"],
        scale=manifest["scale"],
        seed=manifest["seed"],
    )


def _parse_with_recorded_codes(text: str):
    """Parse XML whose elements carry start=/end= attributes.

    The plain parser ignores attributes and re-assigns event-based codes;
    datasets with word-granularity coding need the *recorded* codes.  The
    recorded attributes are extracted in document order and re-applied.
    """
    import re

    from repro.core.element import Element
    from repro.xmltree.tree import DataTree

    structural = parse_xml(text)
    recorded = re.findall(r'start="(\d+)" end="(\d+)"', text)
    if len(recorded) != structural.size:
        # No (or partial) recorded codes: keep the event-based ones.
        return structural
    elements = [
        Element(e.tag, int(start), int(end), e.level)
        for e, (start, end) in zip(structural.elements, recorded)
    ]
    parents = [
        structural.parent_index(i) for i in range(structural.size)
    ]
    return DataTree(elements, parents)
