"""Disk-resident element sets: the paper's DBMS setting.

The paper assumes element sets live in a database ("probing in the
XR-Tree will cost only several page accesses ... helps to load part of
the index into the buffer", Section 5.3.1).  This package provides that
substrate:

* :mod:`repro.storage.pager` — a fixed-size page file plus an LRU buffer
  pool with hit/miss accounting;
* :mod:`repro.storage.element_file` — node sets serialized to pages
  (start-sorted records + an end-sorted rank section), opened as
  :class:`DiskNodeSet` with binary-searchable, page-accounted probes;
* :mod:`repro.storage.disk_sampling` — IM-DA-Est executed purely against
  the paged representation, reporting the page-access cost per probe.
"""

from repro.storage.dataset_io import load_dataset, save_dataset
from repro.storage.disk_join import DiskJoinResult, stack_tree_join_disk
from repro.storage.disk_sampling import DiskProbeResult, im_da_est_disk
from repro.storage.element_file import DiskNodeSet, write_node_set
from repro.storage.pager import PAGE_SIZE, BufferPool, PageFile

__all__ = [
    "PAGE_SIZE",
    "BufferPool",
    "DiskJoinResult",
    "DiskNodeSet",
    "DiskProbeResult",
    "PageFile",
    "im_da_est_disk",
    "load_dataset",
    "save_dataset",
    "stack_tree_join_disk",
    "write_node_set",
]
