"""Fixed-size page file and LRU buffer pool.

The minimal storage-manager substrate: a :class:`PageFile` reads and
writes aligned 4 KiB pages; a :class:`BufferPool` caches them with LRU
replacement and counts hits/misses — the statistic the disk-resident
benchmarks report ("page accesses per probe").
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import ReproError

#: Page size in bytes (a conventional DBMS default).
PAGE_SIZE = 4096


class PageFile:
    """Aligned page I/O over a regular file."""

    def __init__(self, path: str | Path, create: bool = False) -> None:
        self.path = Path(path)
        mode = "w+b" if create else "r+b"
        if not create and not self.path.exists():
            raise ReproError(f"page file {self.path} does not exist")
        self._handle = open(self.path, mode)

    @property
    def page_count(self) -> int:
        self._handle.seek(0, 2)
        return self._handle.tell() // PAGE_SIZE

    def read_page(self, page_no: int) -> bytes:
        if page_no < 0:
            raise ReproError(f"negative page number {page_no}")
        self._handle.seek(page_no * PAGE_SIZE)
        data = self._handle.read(PAGE_SIZE)
        if len(data) < PAGE_SIZE:
            raise ReproError(
                f"page {page_no} beyond end of file {self.path}"
            )
        return data

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) > PAGE_SIZE:
            raise ReproError(
                f"page payload of {len(data)} bytes exceeds {PAGE_SIZE}"
            )
        self._handle.seek(page_no * PAGE_SIZE)
        self._handle.write(data.ljust(PAGE_SIZE, b"\x00"))

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class BufferStats:
    """Hit/miss accounting for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0


@dataclass
class BufferPool:
    """LRU page cache over a :class:`PageFile`."""

    file: PageFile
    capacity: int = 64
    stats: BufferStats = field(default_factory=BufferStats)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ReproError(
                f"buffer capacity must be >= 1, got {self.capacity}"
            )
        self._pages: OrderedDict[int, bytes] = OrderedDict()

    def get_page(self, page_no: int) -> bytes:
        cached = self._pages.get(page_no)
        if cached is not None:
            self._pages.move_to_end(page_no)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        data = self.file.read_page(page_no)
        self._pages[page_no] = data
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return data

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def clear(self) -> None:
        """Drop all cached pages (keeps the stats)."""
        self._pages.clear()
