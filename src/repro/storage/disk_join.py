"""Streaming containment join over disk-resident element sets.

The stack-tree join consumes both inputs in start order — exactly the
order element files store records in — so the join runs as two sequential
page scans through the buffer pools: the I/O-optimal pattern
(``O(pages(A) + pages(D))`` reads, each page touched once).  The result
reports the pair count plus the observed page traffic, complementing the
probe-based :mod:`repro.storage.disk_sampling` cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.element_file import DiskNodeSet


@dataclass(frozen=True, slots=True)
class DiskJoinResult:
    """Outcome of a disk-resident containment join."""

    pair_count: int
    ancestor_page_misses: int
    descendant_page_misses: int

    @property
    def total_page_misses(self) -> int:
        return self.ancestor_page_misses + self.descendant_page_misses


def stack_tree_join_disk(
    ancestors: DiskNodeSet, descendants: DiskNodeSet
) -> DiskJoinResult:
    """Count join pairs with one sequential pass over each element file.

    Runs Stack-Tree-Desc keeping only the ancestor stack in memory; both
    buffer pools' miss counters are reset first so the result reflects
    this join alone.
    """
    ancestors.pool.stats.reset()
    descendants.pool.stats.reset()

    pair_count = 0
    stack: list[int] = []  # open ancestor end positions (nested)
    ai = 0
    a_count = len(ancestors)
    next_a: tuple[int, int] | None = None
    if a_count:
        next_a = ancestors.region_at(0)

    for di in range(len(descendants)):
        d_start = descendants.start_at(di)
        while next_a is not None and next_a[0] < d_start:
            while stack and stack[-1] < next_a[0]:
                stack.pop()
            stack.append(next_a[1])
            ai += 1
            next_a = ancestors.region_at(ai) if ai < a_count else None
        while stack and stack[-1] < d_start:
            stack.pop()
        pair_count += len(stack)

    return DiskJoinResult(
        pair_count=pair_count,
        ancestor_page_misses=ancestors.pool.stats.misses,
        descendant_page_misses=descendants.pool.stats.misses,
    )
