"""IM-DA-Est over disk-resident element sets, with page accounting.

Runs Algorithm 2 purely against the paged representation: sampled
descendants are fetched by record index, each probe is a pair of binary
searches over the ancestor file's pages.  Besides the estimate, the
result carries the exact buffer-pool statistics, quantifying the
Section 5.3.1 claim that a probe costs "only several page accesses in the
worst case" and that probing warms the buffer for later joins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import EstimationError
from repro.core.rng import SeedLike, make_rng
from repro.storage.element_file import DiskNodeSet


@dataclass(frozen=True, slots=True)
class DiskProbeResult:
    """Outcome of a disk-resident IM-DA-Est run."""

    estimate: float
    samples: int
    page_accesses: int
    page_misses: int

    @property
    def accesses_per_probe(self) -> float:
        return self.page_accesses / self.samples if self.samples else 0.0

    @property
    def misses_per_probe(self) -> float:
        return self.page_misses / self.samples if self.samples else 0.0


def im_da_est_disk(
    ancestors: DiskNodeSet,
    descendants: DiskNodeSet,
    num_samples: int,
    seed: SeedLike = None,
) -> DiskProbeResult:
    """Algorithm 2 against two element files.

    Args:
        ancestors: the probed (ancestor) element file.
        descendants: the sampled (descendant) element file.
        num_samples: sample size ``m`` (capped at ``|D|``).
        seed: RNG seed.
    """
    if num_samples < 1:
        raise EstimationError(f"need >= 1 sample, got {num_samples}")
    population = len(descendants)
    if population == 0 or len(ancestors) == 0:
        return DiskProbeResult(0.0, 0, 0, 0)
    rng = make_rng(seed)
    m = min(num_samples, population)
    indices = rng.choice(population, size=m, replace=False)

    ancestors.pool.stats.reset()
    total = 0
    for index in indices:
        point = descendants.start_at(int(index))
        total += ancestors.stab_count(point)
    stats = ancestors.pool.stats
    return DiskProbeResult(
        estimate=total * population / m,
        samples=m,
        page_accesses=stats.accesses,
        page_misses=stats.misses,
    )
