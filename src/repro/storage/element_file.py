"""Node sets serialized to page files.

Layout (all little-endian):

* page 0 — header: magic ``RPRO``, version, record count, page counts of
  the two data sections, then the newline-separated tag dictionary;
* pages 1..R — records sorted by start: ``(start u64, end u64,
  level u32, tag_id u32)`` = 24 bytes, 170 per page;
* pages R+1..R+E — the end codes alone, sorted ascending (u64, 512 per
  page) — the rank section that makes disk stabbing counts two binary
  searches, mirroring the in-memory oracle.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.core.element import Element
from repro.core.errors import ReproError
from repro.core.nodeset import NodeSet
from repro.storage.pager import PAGE_SIZE, BufferPool, PageFile

_MAGIC = b"RPRO"
_VERSION = 1
_HEADER = struct.Struct("<4sIQII")
_RECORD = struct.Struct("<QQII")
RECORDS_PER_PAGE = PAGE_SIZE // _RECORD.size
ENDS_PER_PAGE = PAGE_SIZE // 8


def write_node_set(path: str | Path, node_set: NodeSet) -> None:
    """Serialize ``node_set`` to ``path`` (see module docstring)."""
    tags: list[str] = []
    tag_ids: dict[str, int] = {}
    for element in node_set:
        if element.tag not in tag_ids:
            tag_ids[element.tag] = len(tags)
            tags.append(element.tag)
    tag_blob = "\n".join(tags).encode()
    count = len(node_set)
    record_pages = -(-count // RECORDS_PER_PAGE) if count else 0
    end_pages = -(-count // ENDS_PER_PAGE) if count else 0
    header = _HEADER.pack(_MAGIC, _VERSION, count, record_pages, end_pages)
    if len(header) + len(tag_blob) > PAGE_SIZE:
        raise ReproError(
            f"tag dictionary of {len(tag_blob)} bytes does not fit the "
            "header page"
        )

    with PageFile(path, create=True) as file:
        file.write_page(0, header + tag_blob)
        for page_index in range(record_pages):
            chunk = node_set.elements[
                page_index * RECORDS_PER_PAGE : (page_index + 1)
                * RECORDS_PER_PAGE
            ]
            payload = b"".join(
                _RECORD.pack(e.start, e.end, e.level, tag_ids[e.tag])
                for e in chunk
            )
            file.write_page(1 + page_index, payload)
        sorted_ends = np.sort(node_set.ends) if count else np.zeros(0)
        for page_index in range(end_pages):
            chunk = sorted_ends[
                page_index * ENDS_PER_PAGE : (page_index + 1) * ENDS_PER_PAGE
            ]
            payload = b"".join(
                struct.pack("<Q", int(value)) for value in chunk
            )
            file.write_page(1 + record_pages + page_index, payload)
        file.flush()


class DiskNodeSet:
    """A node set opened from a page file, probed through a buffer pool.

    Every record access goes through :attr:`pool`, so
    ``pool.stats`` reports the exact page-access cost of each operation —
    the currency of the paper's Section 5.3.1 discussion.
    """

    def __init__(self, path: str | Path, buffer_capacity: int = 64) -> None:
        self._file = PageFile(path)
        self.pool = BufferPool(self._file, capacity=buffer_capacity)
        header_page = self._file.read_page(0)
        magic, version, count, record_pages, end_pages = _HEADER.unpack(
            header_page[: _HEADER.size]
        )
        if magic != _MAGIC:
            raise ReproError(f"{path} is not an element file")
        if version != _VERSION:
            raise ReproError(f"unsupported element-file version {version}")
        self._count = count
        self._record_pages = record_pages
        self._end_section_start = 1 + record_pages
        tag_blob = header_page[_HEADER.size :].rstrip(b"\x00")
        self.tags = tag_blob.decode().split("\n") if tag_blob else []

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def _record(self, index: int) -> tuple[int, int, int, int]:
        if not 0 <= index < self._count:
            raise ReproError(f"record index {index} out of range")
        page_no = 1 + index // RECORDS_PER_PAGE
        offset = (index % RECORDS_PER_PAGE) * _RECORD.size
        page = self.pool.get_page(page_no)
        return _RECORD.unpack_from(page, offset)

    def element(self, index: int) -> Element:
        start, end, level, tag_id = self._record(index)
        return Element(self.tags[tag_id], start, end, level)

    def start_at(self, index: int) -> int:
        return self._record(index)[0]

    def region_at(self, index: int) -> tuple[int, int]:
        """``(start, end)`` codes of record ``index``."""
        start, end, __, ___ = self._record(index)
        return (start, end)

    def sorted_end_at(self, index: int) -> int:
        if not 0 <= index < self._count:
            raise ReproError(f"end index {index} out of range")
        page_no = self._end_section_start + index // ENDS_PER_PAGE
        offset = (index % ENDS_PER_PAGE) * 8
        page = self.pool.get_page(page_no)
        return struct.unpack_from("<Q", page, offset)[0]

    def __iter__(self):
        for index in range(self._count):
            yield self.element(index)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "DiskNodeSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Probes (each costs O(log n) page-mediated record reads)
    # ------------------------------------------------------------------

    def rank_starts(self, position: int) -> int:
        """``|{i : start_i <= position}|`` by binary search on pages."""
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.start_at(mid) <= position:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def rank_ends(self, position: int) -> int:
        """``|{i : end_i < position}|`` over the sorted end section."""
        lo, hi = 0, self._count
        while lo < hi:
            mid = (lo + hi) // 2
            if self.sorted_end_at(mid) < position:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def stab_count(self, position: int) -> int:
        """Number of stored regions covering ``position``."""
        return self.rank_starts(position) - self.rank_ends(position)

    def to_node_set(self, name: str | None = None) -> NodeSet:
        """Materialize the whole file back into memory."""
        return NodeSet(list(self), name=name, validate=False)
