"""The churn benchmark behind ``BENCH_stream.json``.

Three phases over one seeded XMark document:

* **update** — replays the same :class:`~repro.stream.MutationFeed`
  batches twice: once through a :class:`~repro.stream.LiveWorkspace`
  (incremental maintenance) and once through the rebuild baseline that
  re-derives every touched tag's synopses from scratch after each batch
  (validated node set, PL both roles, PH cell grid, stabbing index,
  coverage bounds — exactly what a non-incremental system would redo).
  Reports the throughput ratio and cross-checks the final maintained
  state bit-identical to the final rebuild (``identical``).
* **serving** — mixed read/write: every batch is *ingested* (not
  applied) and immediately followed by a live read through
  :class:`~repro.service.engine.EstimationService` under a per-request
  ``max_staleness_s`` bound.  Reports read latency, disclosed staleness
  and the staleness-violation rate (an "ok" answer whose disclosed
  staleness exceeded its bound).
* **isolation** — two tenants in a :class:`~repro.stream.CatalogStore`
  behind one service; tenant ``alpha`` is churned hard while tenant
  ``beta``'s cache entries must survive untouched and keep serving
  hits.  Reports ``cross_tenant_invalidations`` (CI gates this at 0).

Deterministic for a fixed ``(scale, seed)`` up to wall-clock timings;
emitted by ``benchmarks/bench_runner.py --only-stream`` as the
schema-validated ``BENCH_stream.json`` artifact and gated in CI.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

import numpy as np

from repro.core.element import Element
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.datasets.dblp import generate_dblp
from repro.datasets.xmark import generate_xmark
from repro.estimators.coverage_histogram import merged_interval_bounds
from repro.estimators.ph_histogram import cell_histogram, grid_side
from repro.estimators.pl_histogram import PLHistogram
from repro.index.stab import StabbingCounter
from repro.perf.cache import SummaryCache, _key_mentions
from repro.service.engine import EstimationService
from repro.stream.feed import MutationFeed
from repro.stream.live import LiveWorkspace
from repro.stream.store import CatalogStore

__all__ = [
    "STREAM_BENCH_SCHEMA_VERSION",
    "run_stream_bench",
]

STREAM_BENCH_SCHEMA_VERSION = 1


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def _rebuild_tag(
    elements: Iterable[Element],
    tag: str,
    workspace: Workspace,
    num_buckets: int,
    side: int,
) -> dict[str, Any]:
    """Everything a non-incremental system re-derives after a write."""
    node_set = NodeSet(tuple(elements), name=tag)
    return {
        "node_set": node_set,
        "ancestor": PLHistogram.build_ancestor(
            node_set, workspace, num_buckets
        ),
        "descendant": PLHistogram.build_descendant(
            node_set, workspace, num_buckets
        ),
        "cells": cell_histogram(node_set, workspace, side),
        "stab": StabbingCounter(node_set),
        "coverage": merged_interval_bounds(node_set),
    }


def _states_identical(
    live: LiveWorkspace, rebuilt: dict[str, dict[str, Any]]
) -> bool:
    """Final maintained state ≡ final rebuild, bit-for-bit."""
    if set(live.tags()) != set(rebuilt):
        return False
    for tag, want in rebuilt.items():
        maintained = live.node_set(tag)
        reference: NodeSet = want["node_set"]
        if not (
            np.array_equal(maintained.starts, reference.starts)
            and np.array_equal(maintained.ends, reference.ends)
        ):
            return False
        pl = live.pl_histogram(tag)
        for got, ref in zip(
            pl.ancestor_histogram().buckets, want["ancestor"].buckets
        ):
            if got.n != ref.n:
                return False
            if abs(got.total_length - ref.total_length) > 1e-9 * max(
                1.0, abs(ref.total_length)
            ):
                return False
        for got, ref in zip(
            pl.descendant_histogram().buckets, want["descendant"].buckets
        ):
            if got.n != ref.n:
                return False
        if dict(live.cell_histogram(tag).cell_histogram()) != dict(
            want["cells"]
        ):
            return False
        ttree = live.ttree(tag)
        stab: StabbingCounter = want["stab"]
        for position, __ in ttree.turning_points():
            if ttree.count(position) != stab.count(position):
                return False
        if not np.array_equal(live.coverage_bounds(tag), want["coverage"]):
            return False
    return True


def _entries_mentioning(
    cache: SummaryCache, fingerprints: set[str]
) -> int:
    """Resident cache entries keyed on any of ``fingerprints``."""
    return sum(
        1
        for key in list(cache._data)
        if any(_key_mentions(key, fp) for fp in fingerprints)
    )


def _bench_update(
    pool: list[Element],
    workspace: Workspace,
    *,
    seed: int,
    batches: int,
    batch_size: int,
    num_buckets: int,
    num_cells: int,
) -> dict[str, Any]:
    side = grid_side(num_cells)
    replay = list(
        MutationFeed(pool, seed=seed).batches(batches, batch_size)
    )
    initial = MutationFeed(pool, seed=seed).bootstrap()

    live = LiveWorkspace(
        workspace,
        elements=initial,
        num_buckets=num_buckets,
        num_cells=num_cells,
        seed=seed,
    )
    start = time.perf_counter()
    for batch in replay:
        live.apply(batch)
    incremental_s = time.perf_counter() - start

    population: dict[str, dict[tuple[int, int], Element]] = {}
    for element in initial:
        population.setdefault(element.tag, {})[
            (element.start, element.end)
        ] = element
    rebuilt: dict[str, dict[str, Any]] = {}
    start = time.perf_counter()
    for batch in replay:
        touched: set[str] = set()
        for mutation in batch.mutations:
            element = mutation.element
            if mutation.op == "insert":
                population.setdefault(element.tag, {})[
                    (element.start, element.end)
                ] = element
            elif mutation.op == "delete":
                del population[element.tag][(element.start, element.end)]
            else:
                replacement = mutation.replacement
                del population[element.tag][(element.start, element.end)]
                population.setdefault(replacement.tag, {})[
                    (replacement.start, replacement.end)
                ] = replacement
                touched.add(replacement.tag)
            touched.add(element.tag)
        for tag in touched:
            rebuilt[tag] = _rebuild_tag(
                population[tag].values(), tag, workspace, num_buckets, side
            )
    rebuild_s = time.perf_counter() - start
    # Tags never touched by the replay still need a reference build for
    # the identity check (their state is the bootstrap's).
    for tag, elements in population.items():
        if tag not in rebuilt:
            rebuilt[tag] = _rebuild_tag(
                elements.values(), tag, workspace, num_buckets, side
            )

    mutations = batches * batch_size
    return {
        "batches": batches,
        "batch_size": batch_size,
        "mutations": mutations,
        "incremental_s": incremental_s,
        "rebuild_s": rebuild_s,
        "speedup": rebuild_s / incremental_s if incremental_s else 0.0,
        "incremental_mutations_per_s": (
            mutations / incremental_s if incremental_s else 0.0
        ),
        "rebuild_mutations_per_s": (
            mutations / rebuild_s if rebuild_s else 0.0
        ),
        "identical": _states_identical(live, rebuilt),
    }


def _bench_serving(
    pool: list[Element],
    workspace: Workspace,
    read_tags: tuple[str, str],
    *,
    seed: int,
    requests: int,
    batch_size: int,
    num_buckets: int,
    max_staleness_s: float,
) -> dict[str, Any]:
    feed = MutationFeed(pool, seed=seed)
    live = LiveWorkspace(
        workspace,
        elements=feed.bootstrap(),
        num_buckets=num_buckets,
        seed=seed,
    )
    tag_a, tag_d = read_tags
    latencies: list[float] = []
    staleness: list[float] = []
    statuses = {"ok": 0, "degraded": 0, "shed": 0}
    stale_degraded = 0
    with EstimationService(live=live, workers=0) as service:
        for batch in feed.batches(requests, batch_size):
            live.ingest(batch)
            start = time.perf_counter()
            response = service.estimate(
                tag_a,
                tag_d,
                "PL",
                num_buckets=num_buckets,
                max_staleness_s=max_staleness_s,
            )
            latencies.append(time.perf_counter() - start)
            statuses[response.status] += 1
            if response.degraded_reason == "stale":
                stale_degraded += 1
            if response.staleness_s is not None:
                staleness.append(response.staleness_s)
        violations = service.stats()["staleness_violations"]
    return {
        "requests": requests,
        "writes_per_read": batch_size,
        "max_staleness_s": max_staleness_s,
        "ok": statuses["ok"],
        "degraded": statuses["degraded"],
        "stale_degraded": stale_degraded,
        "latency_p50_s": _percentile(latencies, 50),
        "latency_p99_s": _percentile(latencies, 99),
        "staleness_p99_s": _percentile(staleness, 99),
        "violations": violations,
        "violation_rate": violations / requests if requests else 0.0,
    }


def _bench_isolation(
    alpha_pool: list[Element],
    alpha_workspace: Workspace,
    alpha_tags: tuple[str, str],
    beta_pool: list[Element],
    beta_workspace: Workspace,
    beta_tags: tuple[str, str],
    *,
    seed: int,
    batches: int,
    batch_size: int,
    num_buckets: int,
) -> dict[str, Any]:
    alpha_feed = MutationFeed(alpha_pool, seed=seed)
    beta_feed = MutationFeed(beta_pool, seed=seed + 1)
    store = CatalogStore()
    store.create(
        "alpha",
        alpha_workspace,
        elements=alpha_feed.bootstrap(),
        num_buckets=num_buckets,
        seed=seed,
    )
    store.create(
        "beta",
        beta_workspace,
        elements=beta_feed.bootstrap(),
        num_buckets=num_buckets,
        seed=seed + 1,
    )
    # memoize=False: repeat reads must go through the summary cache
    # (the result memo would hide it) so cache survival is observable.
    with EstimationService(live=store, workers=0, memoize=False) as service:
        cache = service.summary_cache

        def read(tenant: str, tags: tuple[str, str]):
            return service.estimate(
                tags[0],
                tags[1],
                "PL",
                num_buckets=num_buckets,
                tenant=tenant,
            )

        before = read("beta", beta_tags)
        beta = store.get("beta")
        beta_fps = {beta.fingerprint(tag) for tag in beta_tags}
        entries_before = _entries_mentioning(cache, beta_fps)
        alpha = store.get("alpha")
        for batch in alpha_feed.batches(batches, batch_size):
            alpha.apply(batch)
            read("alpha", alpha_tags)
        entries_after = _entries_mentioning(cache, beta_fps)
        hits_before = cache.hits
        after = read("beta", beta_tags)
        served_from_cache = cache.hits > hits_before
        alpha_invalidated = store.get("alpha").invalidated_entries
    return {
        "tenants": 2,
        "churn_batches": batches,
        "batch_size": batch_size,
        "victim_entries_before": entries_before,
        "victim_entries_after": entries_after,
        "cross_tenant_invalidations": entries_before - entries_after,
        "churner_invalidations": alpha_invalidated,
        "victim_served_from_cache": served_from_cache,
        "victim_value_stable": (
            before.estimate.value == after.estimate.value
        ),
    }


def run_stream_bench(
    *,
    scale: float = 0.02,
    seed: int = 7,
    batches: int = 60,
    batch_size: int = 20,
    requests: int = 120,
    num_buckets: int = 16,
    num_cells: int = 25,
    max_staleness_s: float = 0.25,
) -> dict[str, Any]:
    """Run the three churn phases; returns the BENCH_stream report body.

    Args:
        scale: XMark scale for the churned document (DBLP at the same
            scale plays the isolation victim).
        seed: drives the document, every feed, and every reservoir.
        batches / batch_size: update-phase replay length.
        requests: serving-phase reads (one ingested batch before each).
        num_buckets / num_cells: synopsis resolutions.
        max_staleness_s: the serving phase's per-request bound.
    """
    dataset = generate_xmark(scale=scale, seed=seed)
    pool = list(dataset.tree.elements)
    workspace = dataset.tree.workspace()
    by_count = sorted(
        dataset.tree.tags().items(), key=lambda item: (-item[1], item[0])
    )
    read_tags = (by_count[0][0], by_count[1][0])

    victim = generate_dblp(scale=scale, seed=seed + 1)
    victim_pool = list(victim.tree.elements)
    victim_by_count = sorted(
        victim.tree.tags().items(), key=lambda item: (-item[1], item[0])
    )
    victim_tags = (victim_by_count[0][0], victim_by_count[1][0])

    start = time.perf_counter()
    report = {
        "bench": "stream",
        "schema_version": STREAM_BENCH_SCHEMA_VERSION,
        "dataset": "xmark",
        "scale": scale,
        "seed": seed,
        "pool_size": len(pool),
        "tags": len(dataset.tree.tags()),
        "read_tags": list(read_tags),
        "num_buckets": num_buckets,
        "num_cells": num_cells,
        "update": _bench_update(
            pool,
            workspace,
            seed=seed,
            batches=batches,
            batch_size=batch_size,
            num_buckets=num_buckets,
            num_cells=num_cells,
        ),
        "serving": _bench_serving(
            pool,
            workspace,
            read_tags,
            seed=seed,
            requests=requests,
            batch_size=batch_size,
            num_buckets=num_buckets,
            max_staleness_s=max_staleness_s,
        ),
        "isolation": _bench_isolation(
            pool,
            workspace,
            read_tags,
            victim_pool,
            victim.tree.workspace(),
            victim_tags,
            seed=seed,
            batches=max(1, batches // 4),
            batch_size=batch_size,
            num_buckets=num_buckets,
        ),
    }
    report["elapsed_s"] = time.perf_counter() - start
    return report
