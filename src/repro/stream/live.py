"""A live workspace: incremental maintenance under a mutation stream.

``LiveWorkspace`` holds the current element population of one tenant,
grouped by tag, and keeps every synopsis of the paper incrementally
up to date as mutation batches arrive — no rebuilds on the write path:

* per-tag start-sorted region arrays (the SoA the kernels consume),
  maintained in place by binary insertion/removal;
* :class:`~repro.maintenance.incremental.IncrementalPLHistogram` — the
  Table 1 PL statistics, O(buckets crossed) per mutation;
* :class:`~repro.maintenance.cells.IncrementalCellHistogram` — the PH
  grid, O(1) per mutation;
* :class:`~repro.maintenance.dynamic_ttree.DynamicTTree` — stabbing
  counts as O(1) delta updates with lazy recompile;
* :class:`~repro.maintenance.reservoir.ReservoirSample` — a standing
  uniform sample under inserts *and* deletes (random pairing).

Writes are *fingerprint bumps*: summary and index caches key on the
node-set content fingerprint, so a mutation gives the tag a new
fingerprint and the pre-mutation entries can never serve the new
content.  On top of that, the workspace eagerly drops the old
fingerprint's entries from every attached cache
(:meth:`~repro.perf.cache.SummaryCache.invalidate_fingerprint`), which
bounds memory and keeps the "stale entries never serve" property
checkable: only keys mentioning *this* workspace's old fingerprints are
touched, so co-tenant entries survive with their hit counters intact.

Staleness contract.  Batches are *ingested* (enqueued, O(1)) and later
*applied*; ``staleness_s(now)`` is the age of the oldest ingested batch
not yet applied (0.0 when fully caught up), and ``staleness_of(seq,
now)`` is the same measure for a snapshot taken at ``applied_seq ==
seq`` — the age of the oldest batch, applied or pending, that the
snapshot misses.  The estimation service enforces a per-request
``max_staleness_s`` against exactly this measure and discloses it on
every live response.
"""

from __future__ import annotations

import threading
import time
import zlib
from bisect import bisect_left
from collections import OrderedDict, deque
from typing import Callable, Iterable

import numpy as np

from repro.core.element import Element
from repro.core.errors import StreamError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.coverage_histogram import merged_interval_bounds
from repro.maintenance import (
    DynamicTTree,
    IncrementalCellHistogram,
    IncrementalPLHistogram,
    ReservoirSample,
)
from repro.perf.cache import SummaryCache
from repro.stream.feed import Mutation, MutationBatch

#: How many ingest timestamps are retained for staleness accounting;
#: snapshots older than this many batches report the oldest retained age.
_INGEST_HISTORY = 4096


class _TagState:
    """All maintained structures for one live tag."""

    __slots__ = (
        "tag",
        "starts",
        "ends",
        "elements",
        "pl",
        "cells",
        "ttree",
        "reservoir",
        "node_set",
        "inserts",
        "deletes",
    )

    def __init__(
        self,
        tag: str,
        workspace: Workspace,
        num_buckets: int,
        num_cells: int,
        reservoir_capacity: int,
        seed: int,
    ) -> None:
        self.tag = tag
        self.starts: list[int] = []
        self.ends: list[int] = []
        self.elements: list[Element] = []  # aligned with starts/ends
        self.pl = IncrementalPLHistogram(workspace, num_buckets)
        self.cells = IncrementalCellHistogram(workspace, num_cells)
        self.ttree = DynamicTTree()
        self.reservoir = ReservoirSample(
            reservoir_capacity,
            seed=(seed * 1_000_003) ^ zlib.crc32(tag.encode()),
        )
        self.node_set: NodeSet | None = None
        self.inserts = 0
        self.deletes = 0

    def index_of(self, element: Element) -> int:
        """Position of a live element, or -1."""
        index = bisect_left(self.starts, element.start)
        if (
            index < len(self.starts)
            and self.starts[index] == element.start
            and self.ends[index] == element.end
        ):
            return index
        return -1

    def insert(self, element: Element) -> None:
        index = bisect_left(self.starts, element.start)
        if index < len(self.starts) and self.starts[index] == element.start:
            raise StreamError(
                f"duplicate insert: element ({element.start}, "
                f"{element.end}) is already live under tag {self.tag!r}"
            )
        self.pl.insert(element)  # validates the workspace bounds first
        self.cells.insert(element)
        self.ttree.insert(element)
        self.reservoir.add(element)
        self.starts.insert(index, element.start)
        self.ends.insert(index, element.end)
        self.elements.insert(index, element)
        self.node_set = None
        self.inserts += 1

    def remove(self, element: Element) -> None:
        index = self.index_of(element)
        if index < 0:
            raise StreamError(
                f"delete of a non-live element ({element.start}, "
                f"{element.end}) under tag {self.tag!r}"
            )
        self.pl.remove(element)
        self.cells.remove(element)
        self.ttree.delete(element)
        self.reservoir.remove(self.elements[index])
        del self.starts[index]
        del self.ends[index]
        del self.elements[index]
        self.node_set = None
        self.deletes += 1

    def materialize(self) -> NodeSet:
        if self.node_set is None:
            self.node_set = NodeSet.from_arrays(
                np.asarray(self.starts, dtype=np.int64),
                np.asarray(self.ends, dtype=np.int64),
                name=self.tag,
            )
        return self.node_set


class LiveWorkspace:
    """One tenant's continuously mutating element store.

    Args:
        workspace: fixed position domain every mutation must fall in.
        elements: initial live population (e.g. ``feed.bootstrap()``).
        num_buckets / num_cells: synopsis resolutions, as in the
            estimators.
        reservoir_capacity: standing sample size per tag.
        seed: derives each tag's reservoir stream.
        tenant: name used in stats and store registries.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        workspace: Workspace,
        *,
        elements: Iterable[Element] = (),
        num_buckets: int = 16,
        num_cells: int = 25,
        reservoir_capacity: int = 64,
        seed: int = 0,
        tenant: str = "default",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.workspace = workspace.validate()
        self.num_buckets = num_buckets
        self.num_cells = num_cells
        self.reservoir_capacity = reservoir_capacity
        self.seed = seed
        self.tenant = tenant
        self._clock = clock
        self._lock = threading.RLock()
        self._tags: dict[str, _TagState] = {}
        self._caches: tuple[SummaryCache, ...] = ()
        self._pending: deque[tuple[int, float, tuple[Mutation, ...]]] = (
            deque()
        )
        self._ingest_times: OrderedDict[int, float] = OrderedDict()
        self._ingest_seq = 0
        self._applied_seq = 0
        self.applied_batches = 0
        self.applied_mutations = 0
        self.invalidated_entries = 0
        self.estimates_served = 0
        for element in elements:
            self._state(element.tag).insert(element)

    # -- wiring -------------------------------------------------------

    def attach_caches(self, *caches: SummaryCache | None) -> None:
        """Register caches to eagerly invalidate on every write.

        Pass the service's ``SummaryCache`` and ``IndexCache`` (the
        latter covers arena, T-tree, XR-tree and start-index entries —
        they all key on the operand fingerprint).  ``None`` entries are
        ignored so callers can forward optional caches directly.
        """
        with self._lock:
            present = [c for c in caches if c is not None]
            merged = list(self._caches)
            for cache in present:
                if all(cache is not existing for existing in merged):
                    merged.append(cache)
            self._caches = tuple(merged)

    def _state(self, tag: str) -> _TagState:
        state = self._tags.get(tag)
        if state is None:
            state = _TagState(
                tag,
                self.workspace,
                self.num_buckets,
                self.num_cells,
                self.reservoir_capacity,
                self.seed,
            )
            self._tags[tag] = state
        return state

    def _live_state(self, tag: str) -> _TagState:
        state = self._tags.get(tag)
        if state is None:
            raise StreamError(
                f"unknown tag {tag!r} in tenant {self.tenant!r}; "
                f"live tags: {sorted(self._tags) or '(none)'}"
            )
        return state

    # -- mutation ingest / apply -------------------------------------

    def ingest(self, batch: MutationBatch | Iterable[Mutation]) -> int:
        """Enqueue one mutation batch; returns its sequence number.

        O(1): nothing is applied until :meth:`apply_pending` (or the
        service's staleness enforcement) catches up.
        """
        mutations = (
            batch.mutations
            if isinstance(batch, MutationBatch)
            else tuple(batch)
        )
        for mutation in mutations:
            if not isinstance(mutation, Mutation):
                raise StreamError(
                    f"expected a Mutation, got {type(mutation).__name__}"
                )
        now = self._clock()
        with self._lock:
            self._ingest_seq += 1
            seq = self._ingest_seq
            self._pending.append((seq, now, mutations))
            self._ingest_times[seq] = now
            while len(self._ingest_times) > _INGEST_HISTORY:
                self._ingest_times.popitem(last=False)
            return seq

    def _invalidate(self, state: _TagState) -> None:
        """Eagerly drop the tag's pre-mutation cache entries.

        Entries can only exist under fingerprints of node sets this
        workspace handed out, so when the tag was never materialized
        since its last write there is nothing to drop.
        """
        if state.node_set is None or not self._caches:
            return
        fingerprint = state.node_set.fingerprint
        for cache in self._caches:
            self.invalidated_entries += cache.invalidate_fingerprint(
                fingerprint
            )

    def _apply_one(self, mutation: Mutation) -> None:
        element = mutation.element
        if not (
            self.workspace.contains(element.start)
            and self.workspace.contains(element.end)
        ):
            raise StreamError(
                f"mutation element ({element.start}, {element.end}) "
                f"outside workspace {tuple(self.workspace)}"
            )
        if mutation.op == "insert":
            state = self._state(element.tag)
            self._invalidate(state)
            state.insert(element)
        elif mutation.op == "delete":
            state = self._live_state(element.tag)
            self._invalidate(state)
            state.remove(element)
        else:  # update: recode = delete + insert
            replacement = mutation.replacement
            assert replacement is not None  # Mutation.__post_init__
            old_state = self._live_state(element.tag)
            self._invalidate(old_state)
            old_state.remove(element)
            new_state = self._state(replacement.tag)
            if new_state is not old_state:
                self._invalidate(new_state)
            new_state.insert(replacement)

    def apply_pending(self) -> int:
        """Apply every enqueued batch; returns how many were applied."""
        with self._lock:
            applied = 0
            while self._pending:
                seq, _, mutations = self._pending.popleft()
                for mutation in mutations:
                    self._apply_one(mutation)
                    self.applied_mutations += 1
                self._applied_seq = seq
                self.applied_batches += 1
                applied += 1
            return applied

    def apply(self, batch: MutationBatch | Iterable[Mutation]) -> int:
        """Ingest and immediately apply one batch (write-through)."""
        seq = self.ingest(batch)
        with self._lock:
            self.apply_pending()
        return seq

    def catch_up(self, blocking: bool = True) -> bool:
        """Try to apply the backlog; False if the lock was contended."""
        if blocking:
            self.apply_pending()
            return True
        if not self._lock.acquire(blocking=False):
            return False
        try:
            self.apply_pending()
            return True
        finally:
            self._lock.release()

    # -- staleness ----------------------------------------------------

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    @property
    def ingest_seq(self) -> int:
        return self._ingest_seq

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    def staleness_of(self, seq: int, now: float | None = None) -> float:
        """Age of the oldest batch a ``applied_seq == seq`` snapshot misses."""
        if now is None:
            now = self._clock()
        with self._lock:
            if self._ingest_seq <= seq:
                return 0.0
            ingested_at = self._ingest_times.get(seq + 1)
            if ingested_at is None:
                # Pruned history: report the oldest retained age, which
                # under-reports only for snapshots > _INGEST_HISTORY
                # batches behind — already hopeless for any real bound.
                ingested_at = next(iter(self._ingest_times.values()))
            return max(0.0, now - ingested_at)

    def staleness_s(self, now: float | None = None) -> float:
        """Age of the oldest pending batch (0.0 when caught up)."""
        return self.staleness_of(self._applied_seq, now)

    # -- reads --------------------------------------------------------

    def tags(self) -> list[str]:
        with self._lock:
            return sorted(self._tags)

    def size(self, tag: str | None = None) -> int:
        with self._lock:
            if tag is not None:
                return len(self._live_state(tag).starts)
            return sum(len(s.starts) for s in self._tags.values())

    def node_set(self, tag: str) -> NodeSet:
        """The tag's current population as a (cached) NodeSet.

        Built zero-copy from the maintained sorted arrays; the same
        object is returned until the next mutation touches the tag, so
        its content fingerprint is stable across reads and bumped by
        writes.
        """
        with self._lock:
            return self._live_state(tag).materialize()

    def fingerprint(self, tag: str) -> str:
        return self.node_set(tag).fingerprint

    def snapshot(self, *tags: str) -> tuple[tuple[NodeSet, ...], int]:
        """Atomically materialize several tags at one ``applied_seq``."""
        with self._lock:
            sets = tuple(
                self._live_state(tag).materialize() for tag in tags
            )
            return sets, self._applied_seq

    def rebuild_node_set(self, tag: str) -> NodeSet:
        """From-scratch, fully validated build over the live elements.

        The differential half of the incremental ≡ rebuild contract —
        never used on the serving path.
        """
        with self._lock:
            elements = tuple(self._live_state(tag).elements)
        return NodeSet(elements, name=tag)

    def pl_histogram(self, tag: str) -> IncrementalPLHistogram:
        with self._lock:
            return self._live_state(tag).pl

    def cell_histogram(self, tag: str) -> IncrementalCellHistogram:
        with self._lock:
            return self._live_state(tag).cells

    def ttree(self, tag: str) -> DynamicTTree:
        with self._lock:
            return self._live_state(tag).ttree

    def reservoir(self, tag: str) -> ReservoirSample:
        with self._lock:
            return self._live_state(tag).reservoir

    def coverage_bounds(self, tag: str) -> np.ndarray:
        """Merged coverage intervals of the tag's current population.

        Derived from the maintained sorted arrays (no re-sort) by the
        same array kernel the coverage estimator uses on a fresh build.
        """
        return merged_interval_bounds(self.node_set(tag))

    def stats(self) -> dict:
        with self._lock:
            return {
                "tenant": self.tenant,
                "tags": {
                    tag: {
                        "live": len(state.starts),
                        "inserts": state.inserts,
                        "deletes": state.deletes,
                        "reservoir": len(state.reservoir),
                    }
                    for tag, state in sorted(self._tags.items())
                },
                "live_elements": sum(
                    len(s.starts) for s in self._tags.values()
                ),
                "ingest_seq": self._ingest_seq,
                "applied_seq": self._applied_seq,
                "pending_batches": len(self._pending),
                "applied_batches": self.applied_batches,
                "applied_mutations": self.applied_mutations,
                "invalidated_entries": self.invalidated_entries,
                "estimates_served": self.estimates_served,
            }

    def __repr__(self) -> str:
        return (
            f"LiveWorkspace(tenant={self.tenant!r}, "
            f"tags={len(self._tags)}, live={self.size()}, "
            f"applied_seq={self._applied_seq}, "
            f"pending={len(self._pending)})"
        )
