"""Multi-tenant catalog store: many live workspaces, bounded residency.

A ``CatalogStore`` names tenants — each a :class:`LiveWorkspace` over
its own document — and keeps at most ``capacity`` of them resident.
The rest live on disk as pager-backed element files
(:mod:`repro.storage.element_file`): eviction catches the tenant up,
writes its whole element population (tags and levels included) through
the page format, and frees the in-memory structures; the next access
pages the file back in and rebuilds the maintained synopses from the
stored elements.  Admission is LRU — touching a tenant via
:meth:`get` or :meth:`create` makes it most-recently-used.

Isolation: every workspace invalidates caches only under its *own*
content fingerprints (see :meth:`LiveWorkspace.attach_caches`), so
churn in one tenant never evicts, invalidates, or even bumps the hit
counters of another tenant's entries — a property the stream bench and
the fingerprint property tests assert, and CI gates at zero
cross-tenant invalidations.

Sequence numbers and applied counters survive the spill/load cycle via
a JSON sidecar; reservoir samples are redrawn on load (a reloaded
tenant starts a fresh sample stream — uniformity, not replay, is the
reservoir's contract).
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable

from repro.core.element import Element
from repro.core.errors import StreamError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.perf.cache import SummaryCache
from repro.storage.element_file import DiskNodeSet, write_node_set
from repro.stream.live import LiveWorkspace

_TENANT_NAME = re.compile(r"^[A-Za-z0-9_.-]+$")


class CatalogStore:
    """LRU-admitted registry of live workspaces with disk residency.

    Args:
        root: spill directory; ``None`` disables eviction (every tenant
            stays resident and ``capacity`` is ignored).
        capacity: max resident tenants before LRU spill kicks in.
        buffer_capacity: pages cached per tenant while loading.
        clock: monotonic time source forwarded to new workspaces.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        capacity: int = 8,
        buffer_capacity: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise StreamError(f"capacity must be >= 1, got {capacity}")
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self.buffer_capacity = buffer_capacity
        self._clock = clock
        self._lock = threading.RLock()
        self._resident: OrderedDict[str, LiveWorkspace] = OrderedDict()
        self._spilled: dict[str, dict] = {}  # tenant -> sidecar meta
        self._caches: tuple[SummaryCache, ...] = ()
        self._stats: dict[str, dict] = {}  # per-tenant spills/loads

    # -- paths --------------------------------------------------------

    def _pages_path(self, tenant: str) -> Path:
        assert self.root is not None
        return self.root / f"{tenant}.rpro"

    def _meta_path(self, tenant: str) -> Path:
        assert self.root is not None
        return self.root / f"{tenant}.meta.json"

    # -- registry -----------------------------------------------------

    def create(
        self,
        tenant: str,
        workspace: Workspace,
        *,
        elements: Iterable[Element] = (),
        **options,
    ) -> LiveWorkspace:
        """Register a new tenant and return its resident workspace."""
        if not _TENANT_NAME.match(tenant):
            raise StreamError(
                f"tenant name {tenant!r} must match "
                f"{_TENANT_NAME.pattern}"
            )
        with self._lock:
            if tenant in self._resident or tenant in self._spilled:
                raise StreamError(f"tenant {tenant!r} already exists")
            live = LiveWorkspace(
                workspace,
                elements=elements,
                tenant=tenant,
                clock=self._clock,
                **options,
            )
            live.attach_caches(*self._caches)
            self._resident[tenant] = live
            self._stats.setdefault(
                tenant, {"spills": 0, "loads": 0}
            )
            self._admit(keep=tenant)
            return live

    def get(self, tenant: str) -> LiveWorkspace:
        """The tenant's workspace, paging it back in if spilled."""
        with self._lock:
            live = self._resident.get(tenant)
            if live is None:
                if tenant not in self._spilled:
                    raise StreamError(
                        f"unknown tenant {tenant!r}; known: "
                        f"{self.tenants() or '(none)'}"
                    )
                live = self._load(tenant)
            self._resident.move_to_end(tenant)
            self._admit(keep=tenant)
            return live

    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._resident or tenant in self._spilled

    def __len__(self) -> int:
        with self._lock:
            return len(self._resident) + len(self._spilled)

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._resident) + sorted(self._spilled)

    def resident_tenants(self) -> list[str]:
        with self._lock:
            return list(self._resident)

    def attach_caches(self, *caches: SummaryCache | None) -> None:
        """Share invalidation targets with every current/future tenant."""
        with self._lock:
            present = tuple(c for c in caches if c is not None)
            self._caches = self._caches + present
            for live in self._resident.values():
                live.attach_caches(*present)

    # -- residency ----------------------------------------------------

    def _admit(self, keep: str) -> None:
        if self.root is None:
            return
        while len(self._resident) > self.capacity:
            victim = next(
                (t for t in self._resident if t != keep), None
            )
            if victim is None:
                return
            self.evict(victim)

    def evict(self, tenant: str) -> None:
        """Spill one tenant to its pager-backed element file."""
        with self._lock:
            if self.root is None:
                raise StreamError(
                    "this store has no spill root; eviction disabled"
                )
            live = self._resident.get(tenant)
            if live is None:
                if tenant in self._spilled:
                    return
                raise StreamError(f"unknown tenant {tenant!r}")
            live.apply_pending()  # never spill an un-applied backlog
            elements: list[Element] = []
            for tag in live.tags():
                elements.extend(live.node_set(tag).elements)
            elements.sort(key=lambda e: (e.start, e.end))
            write_node_set(
                self._pages_path(tenant), NodeSet(tuple(elements))
            )
            stats = live.stats()
            meta = {
                "tenant": tenant,
                "workspace": [live.workspace.lo, live.workspace.hi],
                "num_buckets": live.num_buckets,
                "num_cells": live.num_cells,
                "reservoir_capacity": live.reservoir_capacity,
                "seed": live.seed,
                "ingest_seq": live.ingest_seq,
                "applied_seq": live.applied_seq,
                "applied_batches": stats["applied_batches"],
                "applied_mutations": stats["applied_mutations"],
                "invalidated_entries": stats["invalidated_entries"],
                "estimates_served": stats["estimates_served"],
            }
            self._meta_path(tenant).write_text(
                json.dumps(meta, indent=2) + "\n", encoding="utf-8"
            )
            del self._resident[tenant]
            self._spilled[tenant] = meta
            self._stats[tenant]["spills"] += 1

    def _load(self, tenant: str) -> LiveWorkspace:
        meta = self._spilled[tenant]
        with DiskNodeSet(
            self._pages_path(tenant),
            buffer_capacity=self.buffer_capacity,
        ) as disk:
            node_set = disk.to_node_set()
            hit_ratio = disk.pool.stats.hit_ratio
        lo, hi = meta["workspace"]
        live = LiveWorkspace(
            Workspace(lo, hi),
            elements=node_set.elements,
            num_buckets=meta["num_buckets"],
            num_cells=meta["num_cells"],
            reservoir_capacity=meta["reservoir_capacity"],
            seed=meta["seed"],
            tenant=tenant,
            clock=self._clock,
        )
        live.attach_caches(*self._caches)
        live._ingest_seq = meta["ingest_seq"]
        live._applied_seq = meta["applied_seq"]
        live.applied_batches = meta["applied_batches"]
        live.applied_mutations = meta["applied_mutations"]
        live.invalidated_entries = meta["invalidated_entries"]
        live.estimates_served = meta["estimates_served"]
        del self._spilled[tenant]
        self._resident[tenant] = live
        stats = self._stats[tenant]
        stats["loads"] += 1
        stats["last_load_hit_ratio"] = hit_ratio
        return live

    # -- reporting ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            tenants = {}
            for tenant, live in self._resident.items():
                tenants[tenant] = {
                    "resident": True,
                    **self._stats[tenant],
                    **live.stats(),
                }
            for tenant, meta in self._spilled.items():
                tenants[tenant] = {
                    "resident": False,
                    **self._stats[tenant],
                    "applied_seq": meta["applied_seq"],
                    "applied_mutations": meta["applied_mutations"],
                    "invalidated_entries": meta["invalidated_entries"],
                    "estimates_served": meta["estimates_served"],
                }
            return {
                "capacity": self.capacity,
                "resident": len(self._resident),
                "spilled": len(self._spilled),
                "tenants": tenants,
            }

    def __repr__(self) -> str:
        return (
            f"CatalogStore(resident={len(self._resident)}, "
            f"spilled={len(self._spilled)}, capacity={self.capacity})"
        )
