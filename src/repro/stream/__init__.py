"""Streaming churn: live workspaces under continuous mutation.

The paper's Section 6 maintenance discussion, turned into a subsystem:

* :mod:`repro.stream.feed` — :class:`MutationFeed`, a seeded generator
  of sequentially applicable insert/delete/update batches;
* :mod:`repro.stream.live` — :class:`LiveWorkspace`, one tenant's
  element store maintained through incremental summary deltas, dynamic
  T-tree updates and reservoir samples instead of rebuilds, with
  fingerprint bump-on-write cache invalidation;
* :mod:`repro.stream.store` — :class:`CatalogStore`, a multi-tenant
  registry with pager-backed disk residency and LRU admission;
* :mod:`repro.stream.bench` — the churn benchmark behind
  ``BENCH_stream.json`` (update throughput, read latency under mixed
  load, staleness-violation rate, cross-tenant isolation).

``EstimationService(live=...)`` serves estimates straight off a live
workspace or store under a per-request ``max_staleness_s`` bound; the
qa ``incremental-vs-rebuild`` oracle proves the maintained synopses
bit-identical to from-scratch rebuilds after every batch.
"""

from repro.stream.feed import Mutation, MutationBatch, MutationFeed
from repro.stream.live import LiveWorkspace
from repro.stream.store import CatalogStore

__all__ = [
    "CatalogStore",
    "LiveWorkspace",
    "Mutation",
    "MutationBatch",
    "MutationFeed",
]
