"""Seeded mutation feeds: reproducible churn against a live workspace.

A :class:`MutationFeed` turns a pool of well-formed elements (any
subset of one region-coded document — subsets preserve the distinct-code
and strict-nesting invariants) into an endless, seeded stream of
insert/delete/update batches.  The feed tracks which pool elements are
currently live so every emitted batch is *sequentially applicable*: a
delete always names a live element, an insert always names a free one,
and an update pairs one of each.

The feed is a pure generator — it never touches the workspace itself.
:class:`repro.stream.LiveWorkspace` ingests the batches and applies
them through the incremental maintenance layer; the qa
``incremental-vs-rebuild`` oracle replays the same seed to cross-check
every applied batch against a from-scratch rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.element import Element
from repro.core.errors import StreamError
from repro.core.rng import SeedLike, make_rng

#: Mutation kinds a feed can emit, in weight order.
OPS = ("insert", "delete", "update")


@dataclass(frozen=True, slots=True)
class Mutation:
    """One element-level change.

    ``insert`` adds ``element``; ``delete`` removes it; ``update``
    removes ``element`` and adds ``replacement`` in its place (a region
    recode — the only way an element "moves" under region coding).
    """

    op: str
    element: Element
    replacement: Element | None = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise StreamError(f"unknown mutation op {self.op!r}")
        if (self.replacement is not None) != (self.op == "update"):
            raise StreamError(
                f"op {self.op!r} takes "
                f"{'a' if self.op == 'update' else 'no'} replacement"
            )


@dataclass(frozen=True, slots=True)
class MutationBatch:
    """A sequentially applicable group of mutations."""

    index: int
    mutations: tuple[Mutation, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.mutations)


class MutationFeed:
    """Seeded generator of insert/delete/update batches over a pool.

    Args:
        pool: the element universe; must have distinct ``(start, end)``
            region codes (elements of one document qualify).
        seed: drives every choice; same seed, same batches, forever.
        initial_fraction: share of the pool made live by
            :meth:`bootstrap` before any batch is emitted.
        weights: relative odds of insert/delete/update per mutation;
            infeasible ops (nothing live to delete, nothing free to
            insert) fall back to a feasible one deterministically.
    """

    def __init__(
        self,
        pool: Iterable[Element],
        seed: SeedLike = 0,
        *,
        initial_fraction: float = 0.5,
        weights: Sequence[float] = (2.0, 1.0, 1.0),
    ) -> None:
        pool = list(pool)
        if not pool:
            raise StreamError("mutation feed needs a non-empty pool")
        if len({(e.start, e.end) for e in pool}) != len(pool):
            raise StreamError("pool has duplicate region codes")
        if not 0.0 <= initial_fraction <= 1.0:
            raise StreamError(
                f"initial_fraction must be in [0, 1], "
                f"got {initial_fraction}"
            )
        if len(weights) != len(OPS) or min(weights) < 0 or sum(weights) <= 0:
            raise StreamError(f"bad op weights {tuple(weights)!r}")
        self._rng = make_rng(seed)
        total = float(sum(weights))
        self._weights = [w / total for w in weights]
        # Stable order first, then a seeded shuffle: the feed's whole
        # future is a pure function of (pool contents, seed).
        pool.sort(key=lambda e: (e.start, e.end))
        order = self._rng.permutation(len(pool))
        shuffled = [pool[i] for i in order]
        cut = int(round(len(pool) * initial_fraction))
        self._live: list[Element] = shuffled[:cut]
        self._free: list[Element] = shuffled[cut:]
        self._emitted = 0

    def bootstrap(self) -> list[Element]:
        """The elements live before batch 0 (load these first)."""
        return list(self._live)

    @property
    def live_size(self) -> int:
        return len(self._live)

    def _pick(self, bucket: list[Element]) -> Element:
        """Swap-pop a uniform element from ``bucket`` (O(1))."""
        index = int(self._rng.integers(0, len(bucket)))
        bucket[index], bucket[-1] = bucket[-1], bucket[index]
        return bucket.pop()

    def _next_op(self) -> str:
        op = OPS[int(self._rng.choice(len(OPS), p=self._weights))]
        if op == "insert" and not self._free:
            op = "delete"
        if op in ("delete", "update") and not self._live:
            op = "insert"
        if op == "update" and not self._free:
            op = "delete"
        if op == "insert" and not self._free:
            raise StreamError("pool exhausted: nothing live or free")
        return op

    def next_batch(self, size: int) -> MutationBatch:
        """Generate the next ``size`` mutations as one batch."""
        if size < 0:
            raise StreamError(f"batch size must be >= 0, got {size}")
        mutations: list[Mutation] = []
        for _ in range(size):
            op = self._next_op()
            if op == "insert":
                element = self._pick(self._free)
                self._live.append(element)
                mutations.append(Mutation("insert", element))
            elif op == "delete":
                element = self._pick(self._live)
                self._free.append(element)
                mutations.append(Mutation("delete", element))
            else:
                old = self._pick(self._live)
                new = self._pick(self._free)
                self._live.append(new)
                self._free.append(old)
                mutations.append(Mutation("update", old, new))
        batch = MutationBatch(self._emitted, tuple(mutations))
        self._emitted += 1
        return batch

    def batches(self, count: int, size: int) -> Iterator[MutationBatch]:
        """Yield ``count`` consecutive batches of ``size`` mutations."""
        for _ in range(count):
            yield self.next_batch(size)
