"""The performance layer: vectorized kernels, summary caching, parallelism.

Three coordinated pieces (see ``docs/ARCHITECTURE.md``, "Performance
architecture"):

* **kernels** — the histogram/table builders in ``repro.models`` and
  ``repro.estimators`` are numpy bulk operations; the original
  per-element loops are retained as ``*_reference`` functions and the
  property suite asserts bit-for-bit agreement.  :func:`reference_kernels`
  switches the package back to the loop implementations, which is how
  ``benchmarks/bench_runner.py`` measures the speedup.
* **cache** — :class:`SummaryCache` memoizes built summaries under
  content keys so budget/method sweeps build each one once;
  :class:`IndexCache` does the same for the probe indexes the sampling
  estimators build (stabbing arrays, T-tree, XR-tree, start-position
  B+-tree).
* **parallel harness** — ``repro.experiments.harness.evaluate`` fans
  queries out over worker processes (``workers=``) with deterministic
  per-query seeding.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.perf.cache import (
    SummaryCache,
    active_cache,
    resolve_cache,
    use_cache,
)

__all__ = [
    "SummaryCache",
    "active_cache",
    "resolve_cache",
    "use_cache",
    "IndexCache",
    "active_index_cache",
    "resolve_index_cache",
    "use_index_cache",
    "reference_kernels",
    "reference_kernels_enabled",
]

_reference_mode = False


def reference_kernels_enabled() -> bool:
    """True while the retained loop implementations are selected."""
    return _reference_mode


@contextmanager
def reference_kernels(enabled: bool = True) -> Iterator[None]:
    """Run the block with the ``*_reference`` loop kernels.

    Only the benchmark runner and the property tests should need this;
    it exists so the vectorized and reference paths stay comparable
    through the exact same public entry points.
    """
    global _reference_mode
    previous = _reference_mode
    _reference_mode = enabled
    try:
        yield
    finally:
        _reference_mode = previous


# Imported last: index_cache consults reference_kernels_enabled (defined
# above) and pulls in the index structures, which themselves import this
# package for the kernel switch.
from repro.perf.index_cache import (  # noqa: E402
    IndexCache,
    active_index_cache,
    resolve_index_cache,
    use_index_cache,
)
