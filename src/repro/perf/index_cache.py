"""Content-keyed cache for built probe indexes.

The sampling estimators probe per-trial sample positions against an index
over one operand: IM-DA-Est stabs the ancestor set (rank arrays, T-tree
or XR-tree), PM-Est and bifocal sampling additionally test descendant
start membership (B+-tree).  A Figure 8 sweep calls ``estimate`` hundreds
of times over the same eleven operand pairs, and before this cache each
call rebuilt its index from scratch — O(|A| log |A|) construction to
answer m ≈ 100 probes.

:class:`IndexCache` extends :class:`~repro.perf.cache.SummaryCache` — the
same bounded LRU, thread safety, byte accounting and obs counters (here
under ``index_cache.*``) — with the key schema for probe structures:
``(kind, NodeSet.fingerprint, *config)`` where *kind* names the structure
(``"stab"``, ``"ttree"``, ...) and *config* carries every constructor
parameter that shapes it (B+-tree order, XR-tree page size).  Content
keys mean estimators probing the same node set share one built index no
matter which estimator or trial asked first.

The ambient installation (:func:`use_index_cache`) mirrors the summary
cache's, with one twist: :func:`resolve_index_cache` reports *no* cache
while :func:`repro.perf.reference_kernels` is active, so the reference
path benchmarked against the batched one genuinely rebuilds per call,
exactly like the pre-optimization code.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro import perf
from repro.core.nodeset import NodeSet
from repro.perf.cache import SummaryCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.bplus import BPlusTree
    from repro.index.stab import StabbingCounter
    from repro.index.ttree import TTree
    from repro.index.xrtree import XRTree
    from repro.kernels.arena import OperandArena

# The index modules themselves import ``repro.perf`` (for the
# reference-kernel switch), so they are imported lazily inside the
# builder methods here to keep either import order working.


class IndexCache(SummaryCache):
    """A bounded LRU cache of probe indexes, keyed by operand content.

    Inherits the :class:`SummaryCache` machinery wholesale; adds typed
    ``get_or_build`` wrappers so call sites cannot disagree on key
    layout.  Records obs counters under ``index_cache.*``.
    """

    metric_kind = "index_cache"

    def stabbing_counter(self, node_set: NodeSet) -> "StabbingCounter":
        """The rank-identity stabbing oracle over ``node_set``."""
        from repro.index.stab import StabbingCounter

        return self.get_or_build(
            ("stab", node_set.fingerprint),
            lambda: StabbingCounter(node_set),
        )

    def ttree(self, node_set: NodeSet, order: int | None = None) -> "TTree":
        """The T-tree over ``node_set``'s covering table."""
        from repro.index.bplus import DEFAULT_ORDER
        from repro.index.ttree import TTree

        if order is None:
            order = DEFAULT_ORDER
        return self.get_or_build(
            ("ttree", node_set.fingerprint, order),
            lambda: TTree(node_set, order=order),
        )

    def xrtree(
        self, node_set: NodeSet, page_size: int | None = None
    ) -> "XRTree":
        """The XR-tree over ``node_set``'s intervals."""
        from repro.index.xrtree import DEFAULT_PAGE_SIZE, XRTree

        if page_size is None:
            page_size = DEFAULT_PAGE_SIZE
        return self.get_or_build(
            ("xrtree", node_set.fingerprint, page_size),
            lambda: XRTree(node_set, page_size=page_size),
        )

    def arena(self, node_set: NodeSet) -> "OperandArena":
        """The SoA operand arena over ``node_set`` (fused kernels)."""
        from repro.kernels.arena import OperandArena

        return self.get_or_build(
            ("arena", node_set.fingerprint),
            lambda: OperandArena(node_set),
        )

    def start_index(
        self, node_set: NodeSet, order: int | None = None
    ) -> "BPlusTree":
        """The start-position B+-tree over ``node_set`` (PM-Est's PMD)."""
        from repro.index.bplus import DEFAULT_ORDER, start_position_index

        if order is None:
            order = DEFAULT_ORDER
        return self.get_or_build(
            ("start_index", node_set.fingerprint, order),
            lambda: start_position_index(
                [int(s) for s in node_set.starts], order=order
            ),
        )


# ----------------------------------------------------------------------
# Ambient index cache
# ----------------------------------------------------------------------

_local = threading.local()


def active_index_cache() -> IndexCache | None:
    """The ambient cache installed by :func:`use_index_cache`, if any."""
    return getattr(_local, "cache", None)


def resolve_index_cache(explicit: IndexCache | None) -> IndexCache | None:
    """An explicit cache, else the ambient one — but never under
    :func:`~repro.perf.reference_kernels`.

    Reference mode exists to reproduce the original per-call behaviour
    for benchmarking and equivalence tests; serving a prebuilt index
    there would hide exactly the construction cost being measured.
    """
    if perf.reference_kernels_enabled():
        return None
    return explicit if explicit is not None else active_index_cache()


@contextmanager
def use_index_cache(
    cache: IndexCache | None,
) -> Iterator[IndexCache | None]:
    """Install ``cache`` as the ambient index cache for the block.

    Passing None makes the block run uncached even inside an outer
    :func:`use_index_cache` region.  Thread-local, like
    :func:`repro.perf.use_cache`.
    """
    previous = getattr(_local, "cache", None)
    _local.cache = cache
    try:
        yield cache
    finally:
        _local.cache = previous
