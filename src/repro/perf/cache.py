"""Content-keyed LRU cache for built summaries.

A sweep over budgets × methods × repetitions re-derives the same PL/PH/
coverage summaries for every configuration; this module lets every
consumer (estimators, the statistics catalog, the experiment harness)
build each summary exactly once.

Keys are *content* keys: the node set contributes its
:attr:`~repro.core.nodeset.NodeSet.fingerprint` — a digest of its region
codes — so two node sets with identical elements share cache entries no
matter how they were obtained, while any mutation-by-reconstruction
changes the key.  The remaining key components identify the summary kind,
the join role, the workspace and every estimator parameter that affects
the built artifact.

Two usage styles:

* explicit — pass a :class:`SummaryCache` to the consumer
  (``PLHistogramEstimator(cache=...)``, ``StatisticsCatalog(cache=...)``);
* ambient — install one for a region of code with :func:`use_cache`;
  consumers constructed without an explicit cache pick it up.  The
  experiment harness wraps its query loop this way.

The cache is bounded (LRU eviction) and thread-safe; cached artifacts are
treated as immutable by every consumer.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator, TypeVar

from repro.obs import runtime as _obs

T = TypeVar("T")


def approx_nbytes(value: Any, depth: int = 4) -> int:
    """Approximate deep size of a cached summary, in bytes.

    Recursion is bounded (``depth``) and cycle-safe enough for the
    artifact shapes the cache holds — histogram objects with bucket
    lists, Counters, numpy arrays, tuples of floats.  Exactness is not
    the point; stable relative accounting across runs is.
    """
    arr_nbytes = getattr(value, "nbytes", None)
    if isinstance(arr_nbytes, int):  # numpy arrays and scalars
        return int(arr_nbytes) + 96
    total = sys.getsizeof(value, 64)
    if depth <= 0:
        return total
    if isinstance(value, dict):
        for key, item in value.items():
            total += approx_nbytes(key, depth - 1)
            total += approx_nbytes(item, depth - 1)
    elif isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            total += approx_nbytes(item, depth - 1)
    else:
        state = getattr(value, "__dict__", None)
        if state is not None:
            for item in state.values():
                total += approx_nbytes(item, depth - 1)
        elif hasattr(type(value), "__slots__"):
            for slot in type(value).__slots__:
                total += approx_nbytes(
                    getattr(value, slot, None), depth - 1
                )
    return total

#: Default number of summaries kept before LRU eviction kicks in.  A
#: summary is a few hundred bytes to a few KB, so even the default is
#: small; sweeps needing more can size their own cache.
DEFAULT_MAXSIZE = 1024


class SummaryCache:
    """A bounded, thread-safe LRU cache for built estimator summaries.

    Args:
        maxsize: entries kept before the least recently used is evicted.
    """

    #: Prefix for the obs counters this cache records
    #: (``cache.hits``/``cache.misses``/...).  Subclasses override it to
    #: report under their own namespace (``IndexCache`` → ``index_cache``).
    metric_kind = "cache"

    def _value_nbytes(self, value: Any) -> int:
        """Size estimate used for the byte accounting.

        Subclasses caching many small homogeneous values (the service's
        result memo) override this with a flat estimate to keep inserts
        off the recursive :func:`approx_nbytes` path.
        """
        return approx_nbytes(value)

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.nbytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get_or_build(self, key: Hashable, builder: Callable[[], T]) -> T:
        """Return the cached value for ``key``, building it on a miss.

        The builder runs outside the lock, so a slow build does not block
        other threads; if two threads race on the same missing key the
        second build wins (both produce identical content-keyed values).
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                if _obs.enabled():
                    _obs.record_cache("hits", kind=self.metric_kind)
                return self._data[key]
            self.misses += 1
        if _obs.enabled():
            _obs.record_cache("misses", kind=self.metric_kind)
        value = builder()
        size = self._value_nbytes(value)
        evicted = 0
        with self._lock:
            if key not in self._data:
                self.nbytes += size
                self._sizes[key] = size
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                victim, __ = self._data.popitem(last=False)
                self.nbytes -= self._sizes.pop(victim, 0)
                self.evictions += 1
                evicted += 1
        if _obs.enabled():
            _obs.record_cache("built_nbytes", size, kind=self.metric_kind)
            if evicted:
                _obs.record_cache("evictions", evicted, kind=self.metric_kind)
        return value

    def peek(self, key: Hashable, default: T | None = None) -> T | None:
        """Look up ``key`` without building; counts as a hit or miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                found = True
                value = self._data[key]
            else:
                self.misses += 1
                found = False
                value = default
        if _obs.enabled():
            _obs.record_cache(
                "hits" if found else "misses", kind=self.metric_kind
            )
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key`` (no hit/miss accounting).

        The counterpart of :meth:`peek` for consumers that compute
        values out-of-band (the estimation service memoizes finished
        estimates this way); :meth:`get_or_build` remains the one-stop
        path when the builder can run at lookup time.
        """
        size = self._value_nbytes(value)
        evicted = 0
        with self._lock:
            if key not in self._data:
                self.nbytes += size
                self._sizes[key] = size
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                victim, __ = self._data.popitem(last=False)
                self.nbytes -= self._sizes.pop(victim, 0)
                self.evictions += 1
                evicted += 1
        if _obs.enabled() and evicted:
            _obs.record_cache("evictions", evicted, kind=self.metric_kind)

    def invalidate_fingerprint(self, fingerprint: str) -> int:
        """Drop every entry whose key mentions ``fingerprint``.

        Content keys embed the node-set fingerprints of whatever the
        artifact was built from, so this is bump-on-write invalidation
        for live workspaces: after a mutation the old fingerprint can
        never serve again, and entries keyed on *other* fingerprints
        (other tenants, other tags) are untouched — their positions,
        sizes and hit counters do not move.  Returns the number of
        entries removed; lookups are not counted as hits or misses.
        """
        removed = 0
        with self._lock:
            victims = [
                key
                for key in self._data
                if _key_mentions(key, fingerprint)
            ]
            for key in victims:
                del self._data[key]
                self.nbytes -= self._sizes.pop(key, 0)
                removed += 1
            self.invalidations += removed
        if _obs.enabled() and removed:
            _obs.record_cache(
                "invalidations", removed, kind=self.metric_kind
            )
        return removed

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss/eviction counters."""
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0
            self.nbytes = 0

    def stats(self) -> dict[str, int | float]:
        """Counters plus the hit rate (0.0 when never consulted)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "nbytes": self.nbytes,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={len(self._data)}, "
            f"maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _key_mentions(key: Hashable, fingerprint: str) -> bool:
    """Whether ``fingerprint`` appears anywhere in a (nested) key tuple."""
    if isinstance(key, str):
        return key == fingerprint
    if isinstance(key, tuple):
        return any(_key_mentions(part, fingerprint) for part in key)
    return False


# ----------------------------------------------------------------------
# Ambient cache
# ----------------------------------------------------------------------

_local = threading.local()


def active_cache() -> SummaryCache | None:
    """The ambient cache installed by :func:`use_cache`, if any."""
    return getattr(_local, "cache", None)


def resolve_cache(explicit: SummaryCache | None) -> SummaryCache | None:
    """An explicitly supplied cache, else the ambient one, else None."""
    return explicit if explicit is not None else active_cache()


@contextmanager
def use_cache(cache: SummaryCache | None) -> Iterator[SummaryCache | None]:
    """Install ``cache`` as the ambient summary cache for the block.

    Passing None makes the block run uncached even inside an outer
    :func:`use_cache` region.  The ambient cache is thread-local: worker
    threads (and forked worker processes) each install their own.
    """
    previous = getattr(_local, "cache", None)
    _local.cache = cache
    try:
        yield cache
    finally:
        _local.cache = previous
