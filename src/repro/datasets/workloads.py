"""Query workloads: Table 3 of the paper.

Each query is an (ancestor predicate, descendant predicate) pair; the
predicates are tag names evaluated against one dataset's tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nodeset import NodeSet
from repro.datasets.base import Dataset


@dataclass(frozen=True, slots=True)
class Query:
    """One containment-join query of Table 3."""

    id: str
    ancestor: str
    descendant: str

    def operands(self, dataset: Dataset) -> tuple[NodeSet, NodeSet]:
        """Resolve the predicates against ``dataset``: ``(A, D)``."""
        return (
            dataset.node_set(self.ancestor),
            dataset.node_set(self.descendant),
        )

    def __str__(self) -> str:
        return f"{self.id}: {self.ancestor} // {self.descendant}"


def xmark_queries() -> list[Query]:
    """Table 3(a): the eleven XMARK queries."""
    pairs = [
        ("item", "name"),
        ("item", "mailbox"),
        ("text", "keyword"),
        ("desp", "parlist"),
        ("desp", "listitem"),
        ("parlist", "text"),
        ("listitem", "keyword"),
        ("parlist", "listitem"),
        ("open_auction", "text"),
        ("open_auction", "reserve"),
        ("bidder", "increase"),
    ]
    return [
        Query(f"Q{i}", ancestor, descendant)
        for i, (ancestor, descendant) in enumerate(pairs, start=1)
    ]


def dblp_queries() -> list[Query]:
    """Table 3(b): the six DBLP queries."""
    pairs = [
        ("inproceeding", "author"),
        ("inproceeding", "title"),
        ("inproceeding", "cite"),
        ("inproceeding", "label"),
        ("title", "sup"),
        ("cite", "label"),
    ]
    return [
        Query(f"Q{i}", ancestor, descendant)
        for i, (ancestor, descendant) in enumerate(pairs, start=1)
    ]


def xmach_queries() -> list[Query]:
    """Table 3(c): the seven XMACH queries."""
    pairs = [
        ("host", "path"),
        ("path", "doc_info"),
        ("doc_info", "doc_id"),
        ("chapter", "section"),
        ("section", "head"),
        ("section", "paragraph"),
        ("paragraph", "link"),
    ]
    return [
        Query(f"Q{i}", ancestor, descendant)
        for i, (ancestor, descendant) in enumerate(pairs, start=1)
    ]


#: Dataset name -> Table 3 workload.
ALL_WORKLOADS = {
    "xmark": xmark_queries(),
    "dblp": dblp_queries(),
    "xmach": xmach_queries(),
}
