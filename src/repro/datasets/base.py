"""Dataset container and per-predicate statistics (Table 2 machinery)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.nodeset import NodeSet
from repro.xmltree.tree import DataTree


@dataclass(frozen=True, slots=True)
class PredicateStats:
    """One row of Table 2: a predicate's cardinality and overlap property.

    ``paper_count`` is the count the paper reports at scale 1.0 (or None
    for predicates the paper does not list); ``count`` is what the
    generator actually produced.  ``has_overlap`` True corresponds to the
    paper's "N/A" rows (the no-overlap property does not hold).
    """

    predicate: str
    count: int
    has_overlap: bool
    paper_count: int | None = None

    @property
    def overlap_label(self) -> str:
        return "N/A" if self.has_overlap else "no overlap"


class Dataset:
    """A generated document: region-coded tree + Table 2 target statistics.

    Args:
        name: dataset identifier ("xmark", "dblp", "xmach").
        tree: the generated data tree.
        paper_counts: predicate -> node count as reported in Table 2 at
            scale 1.0, in the paper's row order.
        scale: the scale factor the generator was invoked with.
        seed: the generator seed (for provenance).
    """

    def __init__(
        self,
        name: str,
        tree: DataTree,
        paper_counts: Mapping[str, int],
        scale: float,
        seed: int,
    ) -> None:
        self.name = name
        self.tree = tree
        self.paper_counts = dict(paper_counts)
        self.scale = scale
        self.seed = seed
        self._node_sets: dict[str, NodeSet] = {}

    def node_set(self, tag: str) -> NodeSet:
        """Node set for ``tag`` (cached; repeated calls are free)."""
        if tag not in self._node_sets:
            self._node_sets[tag] = self.tree.node_set(tag)
        return self._node_sets[tag]

    def statistics(self) -> list[PredicateStats]:
        """Table 2 rows for this dataset, in the paper's predicate order."""
        rows = []
        for predicate, paper_count in self.paper_counts.items():
            node_set = self.node_set(predicate)
            rows.append(
                PredicateStats(
                    predicate=predicate,
                    count=len(node_set),
                    has_overlap=node_set.has_overlap,
                    paper_count=paper_count,
                )
            )
        return rows

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, elements={self.tree.size}, "
            f"scale={self.scale}, seed={self.seed})"
        )
