"""Count distributions used by the dataset generators.

A :class:`Distribution` maps a random generator to a non-negative integer
count (how many children of some kind to emit).  Keeping these as small
objects makes each generator's schema read declaratively and lets tests
verify means and supports independently of tree building.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.errors import ReproError


class Distribution(Protocol):
    """Anything that can sample a non-negative child count."""

    def sample(self, rng: np.random.Generator) -> int: ...

    @property
    def mean(self) -> float: ...


@dataclass(frozen=True, slots=True)
class Fixed:
    """Always ``value``."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ReproError(f"count must be >= 0, got {self.value}")

    def sample(self, rng: np.random.Generator) -> int:
        return self.value

    @property
    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True, slots=True)
class Bernoulli:
    """1 with probability ``p``, else 0."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ReproError(f"probability must be in [0, 1], got {self.p}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.random() < self.p)

    @property
    def mean(self) -> float:
        return self.p


@dataclass(frozen=True, slots=True)
class UniformInt:
    """Uniform integer in ``[lo, hi]`` inclusive."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi:
            raise ReproError(
                f"need 0 <= lo <= hi, got lo={self.lo}, hi={self.hi}"
            )

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0


@dataclass(frozen=True, slots=True)
class Poisson:
    """Poisson-distributed count with rate ``lam``."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ReproError(f"rate must be >= 0, got {self.lam}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.lam))

    @property
    def mean(self) -> float:
        return self.lam


@dataclass(frozen=True, slots=True)
class Choice:
    """Pick a count from ``values`` with matching ``weights``."""

    values: Sequence[int]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ReproError("values and weights must have equal length")
        if not self.values:
            raise ReproError("Choice needs at least one value")
        if any(w < 0 for w in self.weights):
            raise ReproError("weights must be non-negative")
        total = float(sum(self.weights))
        if total <= 0:
            raise ReproError("weights must not all be zero")

    def sample(self, rng: np.random.Generator) -> int:
        weights = np.asarray(self.weights, dtype=float)
        weights = weights / weights.sum()
        return int(rng.choice(np.asarray(self.values), p=weights))

    @property
    def mean(self) -> float:
        weights = np.asarray(self.weights, dtype=float)
        weights = weights / weights.sum()
        return float(np.dot(np.asarray(self.values, dtype=float), weights))


def scaled_count(base: int, scale: float) -> int:
    """Scale a Table 2 target count, never dropping below 1.

    Generators use this for top-level cardinalities so that small-scale
    datasets (used in tests) keep every predicate non-empty.
    """
    if scale <= 0:
        raise ReproError(f"scale must be > 0, got {scale}")
    return max(1, round(base * scale))
