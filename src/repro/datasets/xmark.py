"""XMark-like synthetic document generator.

Emulates the auction-site schema of the XML Benchmark Project (Schmidt et
al.) that the paper evaluates on, calibrated so that at ``scale=1.0`` the
per-predicate node counts match Table 2(a):

================  =======  ==========================================
predicate          target  where it appears
================  =======  ==========================================
item                 8700  under the six regions
desp                17800  item descriptions + auction annotations
parlist              8419  recursive rich-text lists inside desp
listitem            24544  children of parlist (may recurse to parlist)
text                42314  direct desp children + listitem children
open_auction         4800  open-auctions section
keyword             28058  markup inside text
name                19300  items + persons + categories
mailbox              8700  one per item
reserve              2355  ~49% of open auctions
bidder              23521  Poisson(4.90) per open auction
increase            23521  one per bidder
================  =======  ==========================================

The recursive ``parlist``/``listitem`` structure reproduces the only two
"N/A" overlap rows of Table 2(a): those are the sets where ancestors nest
inside each other, the case that breaks the PH baseline.

Derivation of the recursion parameters (expected values):
``P = 17800·p_desp / (1 - n_li·p_li)`` with ``n_li = 24544/8419 = 2.92``
listitems per parlist and ``p_li = 0.18`` giving ``p_desp = 0.225``.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedLike, make_rng
from repro.datasets.base import Dataset
from repro.datasets.distributions import (
    Bernoulli,
    Choice,
    Poisson,
    scaled_count,
)
from repro.xmltree.tree import TreeBuilder

#: Table 2(a) targets at scale 1.0, in the paper's row order.
PAPER_COUNTS = {
    "item": 8700,
    "desp": 17800,
    "parlist": 8419,
    "listitem": 24544,
    "text": 42314,
    "open_auction": 4800,
    "keyword": 28058,
    "name": 19300,
    "mailbox": 8700,
    "reserve": 2355,
    "bidder": 23521,
    "increase": 23521,
}

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

# Calibrated distributions (see module docstring for the derivation).
_DESP_HAS_PARLIST = Bernoulli(0.225)
_DESP_DIRECT_TEXTS = Bernoulli(0.25)  # plus one mandatory text
_LISTITEMS_PER_PARLIST = Choice(
    (1, 2, 3, 4, 5), (0.125, 0.245, 0.32, 0.205, 0.105)
)
_LISTITEM_HAS_PARLIST = Bernoulli(0.18)
_TEXTS_PER_LISTITEM = Choice((0, 1, 2), (0.28, 0.625, 0.095))
_KEYWORDS_PER_TEXT = Choice((0, 1, 2), (0.40, 0.535, 0.065))
_HAS_RESERVE = Bernoulli(2355 / 4800)
_BIDDERS_PER_AUCTION = Poisson(23521 / 4800)

#: Recursion guard for parlist/listitem nesting.  The branching ratio is
#: n_li * p_li ~ 0.53, so depth beyond this is vanishingly unlikely.
_MAX_PARLIST_DEPTH = 14

# Word counts under word-granularity coding (word_content=True).
_TEXT_WORDS = Poisson(12.0)
_KEYWORD_WORDS = Poisson(2.0)
_NAME_WORDS = Poisson(3.0)
_FIELD_WORDS = Poisson(1.2)


def _words(
    rng: np.random.Generator, distribution, enabled: bool
) -> int:
    return distribution.sample(rng) if enabled else 0


def _emit_text(
    builder: TreeBuilder, rng: np.random.Generator, word_content: bool
) -> None:
    with builder.element("text"):
        builder.advance(_words(rng, _TEXT_WORDS, word_content))
        for _ in range(_KEYWORDS_PER_TEXT.sample(rng)):
            builder.leaf(
                "keyword", words=_words(rng, _KEYWORD_WORDS, word_content)
            )


def _emit_parlist(
    builder: TreeBuilder,
    rng: np.random.Generator,
    depth: int,
    word_content: bool,
) -> None:
    with builder.element("parlist"):
        for _ in range(_LISTITEMS_PER_PARLIST.sample(rng)):
            with builder.element("listitem"):
                for _ in range(_TEXTS_PER_LISTITEM.sample(rng)):
                    _emit_text(builder, rng, word_content)
                if (
                    depth < _MAX_PARLIST_DEPTH
                    and _LISTITEM_HAS_PARLIST.sample(rng)
                ):
                    _emit_parlist(builder, rng, depth + 1, word_content)


def _emit_desp(
    builder: TreeBuilder, rng: np.random.Generator, word_content: bool
) -> None:
    with builder.element("desp"):
        _emit_text(builder, rng, word_content)
        for _ in range(_DESP_DIRECT_TEXTS.sample(rng)):
            _emit_text(builder, rng, word_content)
        if _DESP_HAS_PARLIST.sample(rng):
            _emit_parlist(builder, rng, depth=1, word_content=word_content)


def generate_xmark(
    scale: float = 1.0, seed: SeedLike = 0, word_content: bool = False
) -> Dataset:
    """Generate an XMark-like dataset.

    Args:
        scale: multiplies every top-level cardinality; ``scale=1.0``
            targets the Table 2(a) counts, ``scale=0.05`` gives a
            test-sized document with every predicate still populated.
        seed: RNG seed (or an existing generator) for reproducibility.
        word_content: emit word-granularity region codes (every text
            word consumes a position).  Default False.
    """
    rng = make_rng(seed)
    seed_value = seed if isinstance(seed, int) else -1
    items = scaled_count(8700, scale)
    categories = scaled_count(1000, scale)
    persons = scaled_count(9600, scale)
    open_auctions = scaled_count(4800, scale)
    closed_auctions = scaled_count(4300, scale)

    builder = TreeBuilder()
    with builder.element("site"):
        with builder.element("regions"):
            # Split items across the six regions as evenly as possible.
            per_region = [items // len(_REGIONS)] * len(_REGIONS)
            for extra in range(items % len(_REGIONS)):
                per_region[extra] += 1
            for region, count in zip(_REGIONS, per_region):
                with builder.element(region):
                    for _ in range(count):
                        with builder.element("item"):
                            builder.leaf(
                                "location",
                                words=_words(
                                    rng, _FIELD_WORDS, word_content
                                ),
                            )
                            builder.leaf(
                                "name",
                                words=_words(rng, _NAME_WORDS, word_content),
                            )
                            builder.leaf("mailbox")
                            _emit_desp(builder, rng, word_content)
        with builder.element("categories"):
            for _ in range(categories):
                with builder.element("category"):
                    builder.leaf(
                        "name",
                        words=_words(rng, _NAME_WORDS, word_content),
                    )
        with builder.element("people"):
            for _ in range(persons):
                with builder.element("person"):
                    builder.leaf(
                        "name",
                        words=_words(rng, _NAME_WORDS, word_content),
                    )
                    builder.leaf(
                        "emailaddress",
                        words=_words(rng, _FIELD_WORDS, word_content),
                    )
        with builder.element("open_auctions"):
            for _ in range(open_auctions):
                with builder.element("open_auction"):
                    builder.leaf(
                        "initial",
                        words=_words(rng, _FIELD_WORDS, word_content),
                    )
                    if _HAS_RESERVE.sample(rng):
                        builder.leaf(
                            "reserve",
                            words=_words(rng, _FIELD_WORDS, word_content),
                        )
                    for _ in range(_BIDDERS_PER_AUCTION.sample(rng)):
                        with builder.element("bidder"):
                            builder.leaf(
                                "increase",
                                words=_words(
                                    rng, _FIELD_WORDS, word_content
                                ),
                            )
                    with builder.element("annotation"):
                        _emit_desp(builder, rng, word_content)
        with builder.element("closed_auctions"):
            for _ in range(closed_auctions):
                with builder.element("closed_auction"):
                    builder.leaf(
                        "price",
                        words=_words(rng, _FIELD_WORDS, word_content),
                    )
                    with builder.element("annotation"):
                        _emit_desp(builder, rng, word_content)

    return Dataset(
        name="xmark",
        tree=builder.finish(),
        paper_counts=PAPER_COUNTS,
        scale=scale,
        seed=seed_value,
    )
