"""Synthetic dataset generators calibrated to the paper's Table 2.

The paper evaluates on the XMark and XMach benchmark documents and a DBLP
snapshot.  None of those exact documents is redistributable here, so this
package generates *structurally equivalent* synthetic documents: seeded
random trees whose per-predicate node counts, nesting/recursion patterns
and overlap properties match Table 2 (see DESIGN.md §4 for the substitution
argument).

Each generator returns a :class:`repro.datasets.base.Dataset` bundling the
region-coded tree, the paper's target statistics and the Table 3 query
workload.
"""

from repro.datasets.base import Dataset, PredicateStats
from repro.datasets.dblp import generate_dblp
from repro.datasets.workloads import (
    ALL_WORKLOADS,
    Query,
    dblp_queries,
    xmach_queries,
    xmark_queries,
)
from repro.datasets.xmach import generate_xmach
from repro.datasets.xmark import generate_xmark

__all__ = [
    "ALL_WORKLOADS",
    "Dataset",
    "PredicateStats",
    "Query",
    "dblp_queries",
    "generate_dblp",
    "generate_xmach",
    "generate_xmark",
    "xmach_queries",
    "xmark_queries",
]
