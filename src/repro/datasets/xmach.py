"""XMach-like synthetic web-document generator.

Emulates the XMach-1 benchmark (Böhme and Rahm) used in the paper's
evaluation: a web-site directory (hosts and recursive URL paths) over a
collection of documents (chapters with recursively nested sections).
Calibrated so that at ``scale=1.0`` the counts match Table 2(c):

==========  ======  ================================================
predicate   target  where it appears
==========  ======  ================================================
host          1803  directory; may be nested under paths (mirrors)
path         20235  recursive URL components under hosts
doc_info     10000  ~49% of paths carry a document
doc_id       10000  one per doc_info
chapter        313  ~3.1% of documents have structured content
section       3338  recursively nested under chapters
head          3651  one per chapter + one per section
paragraph     8328  Poisson(2.50) per section
link           407  ~4.9% of paragraphs
==========  ======  ================================================

Table 2(c) marks ``host``, ``path`` and ``section`` as "N/A" (their sets
self-nest); the generator reproduces all three recursions.

Calibration: per-host expected paths ``mu = t/(1-c) = 3.0/0.2674 = 11.22``
(``t`` top-level paths per host, ``c`` expected child paths per path);
with nested-host probability ``p_h = 0.02`` per path, total hosts
``H = h_top/(1 - p_h*mu)`` giving ``h_top = 1398``.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import SeedLike, make_rng
from repro.datasets.base import Dataset
from repro.datasets.distributions import (
    Bernoulli,
    Choice,
    Poisson,
    scaled_count,
)
from repro.xmltree.tree import TreeBuilder

#: Table 2(c) targets at scale 1.0, in the paper's row order.
PAPER_COUNTS = {
    "host": 1803,
    "path": 20235,
    "doc_info": 10000,
    "doc_id": 10000,
    "chapter": 313,
    "section": 3338,
    "head": 3651,
    "paragraph": 8328,
    "link": 407,
}

_TOP_PATHS_PER_HOST = Choice((1, 2, 3, 4, 5), (0.10, 0.25, 0.33, 0.19, 0.13))
_CHILD_PATHS = Choice((0, 1, 2, 3), (0.55, 0.22, 0.18, 0.05))
_PATH_HAS_HOST = Bernoulli(0.02)
_PATH_HAS_DOC = Bernoulli(10000 / 20235)
_DOC_HAS_CHAPTER = Bernoulli(313 / 10000)
_TOP_SECTIONS = Choice((3, 4, 5, 6, 7), (0.2, 0.2, 0.2, 0.2, 0.2))
_CHILD_SECTIONS = Choice((0, 1, 2), (0.549, 0.371, 0.08))
_PARAGRAPHS = Poisson(8328 / 3338)
_PARAGRAPH_HAS_LINK = Bernoulli(407 / 8328)

_MAX_PATH_DEPTH = 25
_MAX_HOST_DEPTH = 8
_MAX_SECTION_DEPTH = 12

# Word counts under word-granularity coding (word_content=True).
_PARAGRAPH_WORDS = Poisson(25.0)
_HEAD_WORDS = Poisson(4.0)
_FIELD_WORDS = Poisson(1.2)

def _words(
    rng: np.random.Generator, distribution, enabled: bool
) -> int:
    return distribution.sample(rng) if enabled else 0


def _emit_section(
    builder: TreeBuilder,
    rng: np.random.Generator,
    depth: int,
    words_on: bool,
) -> None:
    with builder.element("section"):
        builder.leaf("head", words=_words(rng, _HEAD_WORDS, words_on))
        for _ in range(_PARAGRAPHS.sample(rng)):
            with builder.element("paragraph"):
                builder.advance(_words(rng, _PARAGRAPH_WORDS, words_on))
                if _PARAGRAPH_HAS_LINK.sample(rng):
                    builder.leaf(
                        "link", words=_words(rng, _FIELD_WORDS, words_on)
                    )
        if depth < _MAX_SECTION_DEPTH:
            for _ in range(_CHILD_SECTIONS.sample(rng)):
                _emit_section(builder, rng, depth + 1, words_on)


def _emit_document(
    builder: TreeBuilder, rng: np.random.Generator, words_on: bool
) -> None:
    with builder.element("document"):
        with builder.element("doc_info"):
            builder.leaf(
                "doc_id", words=_words(rng, _FIELD_WORDS, words_on)
            )
        if _DOC_HAS_CHAPTER.sample(rng):
            with builder.element("chapter"):
                builder.leaf(
                    "head", words=_words(rng, _HEAD_WORDS, words_on)
                )
                for _ in range(_TOP_SECTIONS.sample(rng)):
                    _emit_section(builder, rng, 1, words_on)


def _emit_path(
    builder: TreeBuilder,
    rng: np.random.Generator,
    path_depth: int,
    host_depth: int,
    words_on: bool,
) -> None:
    with builder.element("path"):
        if _PATH_HAS_DOC.sample(rng):
            _emit_document(builder, rng, words_on)
        if host_depth < _MAX_HOST_DEPTH and _PATH_HAS_HOST.sample(rng):
            _emit_host(builder, rng, host_depth + 1, words_on)
        if path_depth < _MAX_PATH_DEPTH:
            for _ in range(_CHILD_PATHS.sample(rng)):
                _emit_path(
                    builder, rng, path_depth + 1, host_depth, words_on
                )


def _emit_host(
    builder: TreeBuilder,
    rng: np.random.Generator,
    host_depth: int,
    words_on: bool,
) -> None:
    with builder.element("host"):
        for _ in range(_TOP_PATHS_PER_HOST.sample(rng)):
            _emit_path(builder, rng, 1, host_depth, words_on)


def generate_xmach(
    scale: float = 1.0, seed: SeedLike = 0, word_content: bool = False
) -> Dataset:
    """Generate an XMach-like dataset.

    Args:
        scale: multiplies the top-level host count; ``scale=1.0`` targets
            the Table 2(c) statistics.
        seed: RNG seed (or an existing generator).
        word_content: emit word-granularity region codes (every text
            word consumes a position).  Default False.
    """
    rng = make_rng(seed)
    seed_value = seed if isinstance(seed, int) else -1
    top_hosts = scaled_count(1398, scale)

    builder = TreeBuilder()
    with builder.element("xmach"):
        with builder.element("directory"):
            for _ in range(top_hosts):
                _emit_host(builder, rng, 1, word_content)

    return Dataset(
        name="xmach",
        tree=builder.finish(),
        paper_counts=PAPER_COUNTS,
        scale=scale,
        seed=seed_value,
    )
