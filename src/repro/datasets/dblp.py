"""DBLP-like synthetic bibliography generator.

Emulates the DBLP snapshot used in the paper's evaluation — a large, flat,
highly regular document — calibrated so that at ``scale=1.0`` the counts
match Table 2(b):

=============  ======  =============================================
predicate      target  where it appears
=============  ======  =============================================
inproceeding    10350  children of the root
author          21700  ~2.10 per inproceeding
title           10378  one per inproceeding + one per proceedings
cite             3805  bursty: 12% of entries cite, mean ~3.06 each
sup                42  rare superscript markup inside titles
label             340  ~8.9% of cites carry a label
=============  ======  =============================================

The sparse descendants (``sup``, ``label``) are what drive the tiny cov
values of Table 4 (Q4–Q6) and hence the PL histogram's weak spot; the
generator reproduces those sparsity ratios exactly.

Like the real DBLP document, the collection also contains entries of
*other* types (journal articles), grouped after the inproceedings section.
Their tags (``article``, ``journal``, ``volume``, ``pages``) are disjoint
from every Table 2(b) predicate, so the calibration is unaffected — but
they occupy workspace where no query descendant lives, which is precisely
what separates local (per-bucket) statistics from global ones: the
coverage baseline's global-coverage assumption dilutes, the PL histogram's
per-bucket statistics do not.
"""

from __future__ import annotations

from repro.core.rng import SeedLike, make_rng
from repro.datasets.base import Dataset
from repro.datasets.distributions import (
    Bernoulli,
    Choice,
    Poisson,
    scaled_count,
)
from repro.xmltree.tree import TreeBuilder

#: Table 2(b) targets at scale 1.0, in the paper's row order.
PAPER_COUNTS = {
    "inproceeding": 10350,
    "author": 21700,
    "title": 10378,
    "cite": 3805,
    "sup": 42,
    "label": 340,
}

# ~2.097 authors per inproceeding.
_AUTHORS = Choice((1, 2, 3, 4), (0.32, 0.37, 0.205, 0.105))
# 12% of entries have a citation list of 1 + Poisson(2.06) cites:
# 0.12 * (1 + 2.06) = 0.3672 cites per entry -> 3801 at scale 1.0.
_HAS_CITES = Bernoulli(0.12)
_EXTRA_CITES = Poisson(2.06)
_SUP_IN_TITLE = Bernoulli(42 / 10378)
_LABEL_IN_CITE = Bernoulli(340 / 3805)

# Word counts per element under word-granularity coding (word_content=True):
# titles and citation strings carry real text, field leaves a token or two.
_TITLE_WORDS = Poisson(8.0)
_AUTHOR_WORDS = Poisson(2.5)
_CITE_WORDS = Poisson(12.0)
_FIELD_WORDS = Poisson(1.2)
# ~2.2 authors-like leaves per article entry, under article-specific tags.
_ARTICLE_FIELDS = Choice((3, 4, 5), (0.3, 0.45, 0.25))


def generate_dblp(
    scale: float = 1.0, seed: SeedLike = 0, word_content: bool = False
) -> Dataset:
    """Generate a DBLP-like dataset.

    Args:
        scale: multiplies the entry counts; ``scale=1.0`` targets the
            Table 2(b) statistics.
        seed: RNG seed (or an existing generator).
        word_content: emit word-granularity region codes — every text
            word consumes a position, as in the coding scheme the paper
            builds on.  Default False (element-event coding).
    """
    rng = make_rng(seed)
    seed_value = seed if isinstance(seed, int) else -1
    inproceedings = scaled_count(10350, scale)
    proceedings = scaled_count(10378 - 10350, scale)
    articles = scaled_count(6000, scale)

    def words(distribution):
        return distribution.sample(rng) if word_content else 0

    builder = TreeBuilder()
    with builder.element("dblp"):
        for _ in range(inproceedings):
            with builder.element("inproceeding"):
                for _ in range(_AUTHORS.sample(rng)):
                    builder.leaf("author", words=words(_AUTHOR_WORDS))
                with builder.element("title"):
                    builder.advance(words(_TITLE_WORDS))
                    if _SUP_IN_TITLE.sample(rng):
                        builder.leaf("sup", words=words(_FIELD_WORDS))
                builder.leaf("year", words=words(_FIELD_WORDS))
                if _HAS_CITES.sample(rng):
                    for _ in range(1 + _EXTRA_CITES.sample(rng)):
                        with builder.element("cite"):
                            builder.advance(words(_CITE_WORDS))
                            if _LABEL_IN_CITE.sample(rng):
                                builder.leaf(
                                    "label", words=words(_FIELD_WORDS)
                                )
        # A handful of proceedings volumes account for the extra titles
        # (Table 2(b) lists 28 more titles than inproceedings).
        for _ in range(proceedings):
            with builder.element("proceedings"):
                with builder.element("title"):
                    builder.advance(words(_TITLE_WORDS))
                    if _SUP_IN_TITLE.sample(rng):
                        builder.leaf("sup", words=words(_FIELD_WORDS))
                builder.leaf("year", words=words(_FIELD_WORDS))
        # Journal articles: a different entry type occupying workspace
        # where no Table 2(b) predicate occurs (see module docstring).
        _ARTICLE_LEAVES = ("journal", "volume", "pages", "number", "month")
        for _ in range(articles):
            with builder.element("article"):
                for field in range(_ARTICLE_FIELDS.sample(rng)):
                    builder.leaf(
                        _ARTICLE_LEAVES[field], words=words(_FIELD_WORDS)
                    )
                builder.leaf("year", words=words(_FIELD_WORDS))

    return Dataset(
        name="dblp",
        tree=builder.finish(),
        paper_counts=PAPER_COUNTS,
        scale=scale,
        seed=seed_value,
    )
