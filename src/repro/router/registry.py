"""Name resolution for routers — the estimator registry's discipline.

Router names resolve exactly the way estimator and generator names do:
case-insensitive canonical names plus aliases, with unknown names
raising a typed :class:`~repro.core.errors.UnknownRouterError` carrying
nearest-match candidates from the shared
:func:`~repro.estimators.registry.nearest_names` engine, so ``"ucb"``,
``"thompson-sampling"`` and ``"Tompson"`` all behave predictably.
"""

from __future__ import annotations

from typing import Any

from repro.core.errors import UnknownRouterError
from repro.estimators.registry import nearest_names
from repro.router.base import (
    Router,
    StaticRouter,
    ThompsonRouter,
    UCB1Router,
)

__all__ = [
    "available_routers",
    "canonical_router_name",
    "resolve_router",
    "nearest_routers",
]

_ROUTERS: dict[str, type[Router]] = {
    "UCB1": UCB1Router,
    "THOMPSON": ThompsonRouter,
    "STATIC": StaticRouter,
}

_ROUTER_ALIASES: dict[str, str] = {
    "UCB": "UCB1",
    "UCB-1": "UCB1",
    "BANDIT": "UCB1",
    "TS": "THOMPSON",
    "THOMPSON-SAMPLING": "THOMPSON",
    "BAYES": "THOMPSON",
    "FIXED": "STATIC",
    "PINNED": "STATIC",
    "NONE": "STATIC",
}


def available_routers() -> tuple[str, ...]:
    """Canonical router names, sorted."""
    return tuple(sorted(_ROUTERS))


def nearest_routers(name: str, limit: int = 3) -> tuple[str, ...]:
    """Canonical router names closest to ``name``, best first."""
    return nearest_names(name, _ROUTERS, _ROUTER_ALIASES, limit=limit)


def canonical_router_name(name: str) -> str:
    """Resolve a router name or alias; raise on unknown names.

    Raises:
        UnknownRouterError: with ``name``/``candidates`` attributes and
            a "did you mean" hint, mirroring the estimator registry.
    """
    key = name.strip().upper()
    key = _ROUTER_ALIASES.get(key, key)
    if key in _ROUTERS:
        return key
    candidates = nearest_routers(name)
    hint = (
        f"; did you mean {', '.join(candidates)}?" if candidates else ""
    )
    raise UnknownRouterError(
        name,
        candidates,
        f"unknown router {name!r} "
        f"(available: {', '.join(available_routers())}){hint}",
    )


def resolve_router(source: "Router | str", **config: Any) -> Router:
    """Construct (or pass through) a router.

    Args:
        source: a :class:`Router` instance (returned as-is; passing
            ``**config`` alongside one is an error) or a name/alias
            :func:`canonical_router_name` accepts.
        **config: constructor arguments for the named router —
            ``candidates=``, ``seed=``, ``latency_weight=``, plus the
            router's own knobs (``exploration=``, ``method=``, ...).
    """
    if isinstance(source, Router):
        if config:
            raise UnknownRouterError(
                str(source),
                (),
                "resolve_router received a Router instance and "
                f"configuration {sorted(config)} — configure the "
                "instance directly instead",
            )
        return source
    return _ROUTERS[canonical_router_name(source)](**config)
