"""Router regret benchmark: the closed loop against fixed baselines.

Replays the paper's Table 3 workloads (XMark, DBLP, XMach) as serving
traces — every query, ``rounds`` times, with fresh per-request seeds —
through an :class:`~repro.service.engine.EstimationService` with a
router and feedback store attached, and scores the router's cumulative
relative-error loss against every *fixed* method run over the identical
trace (same configs, same seeds).  The headline number::

    regret_ratio = router gated loss / best fixed method's gated loss

where "gated" excludes the warmup rounds a bandit necessarily spends
pulling each arm once per query class — cold-start exploration is
reported (``regret_ratio_total``) but not gated, because no bandit can
beat a clairvoyant fixed choice before it has seen a single reward.

The same trace populates the feedback store with truth-paired records
(exact sizes are pre-registered via ``observe_truth``, so every record
gains truth at add-time), which then feed the correction-model phase:
fit a :class:`~repro.feedback.CorrectionModel` with a 50% held-out
tail and report per-cell mean-relative-error reduction.  Deterministic
for fixed ``(scale, seed)``: the router is a pure function of (seed,
history), per-request seeds are derived arithmetically, and the caller
stamps ``elapsed_s`` after the fact.

Emitted by ``benchmarks/bench_runner.py --only-router`` as the
schema-validated ``BENCH_router.json`` artifact and gated in CI.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

from repro.api import estimate
from repro.datasets.base import Dataset
from repro.datasets.dblp import generate_dblp
from repro.datasets.workloads import ALL_WORKLOADS
from repro.datasets.xmach import generate_xmach
from repro.datasets.xmark import generate_xmark
from repro.estimators.bounds import join_size_bounds
from repro.feedback.correction import CorrectionModel
from repro.feedback.runtime import record_feedback
from repro.feedback.store import FeedbackStore
from repro.join.size import containment_join_size
from repro.router.base import BOUND_METHOD, DEFAULT_CANDIDATES, Router
from repro.router.registry import resolve_router
from repro.service.engine import EstimationService

__all__ = [
    "ROUTER_BENCH_SCHEMA_VERSION",
    "run_router_bench",
]

ROUTER_BENCH_SCHEMA_VERSION = 1

_GENERATORS: dict[str, Callable[[float, int], Dataset]] = {
    "xmark": lambda scale, seed: generate_xmark(scale=scale, seed=seed),
    "dblp": lambda scale, seed: generate_dblp(scale=scale, seed=seed),
    "xmach": lambda scale, seed: generate_xmach(scale=scale, seed=seed),
}


def _request_seed(seed: int, query_index: int, round_index: int) -> int:
    """The per-request RNG seed: fresh per (query, round), reproducible."""
    return seed * 1_000_000 + query_index * 1_000 + round_index


def _clamped_candidates(
    candidates: Mapping[str, Mapping[str, Any]],
    operands: Sequence[tuple[Any, Any]],
) -> dict[str, dict[str, Any]]:
    """Clamp sampling budgets so without-replacement draws stay legal
    on the trace's smallest operand (mirrors the optimizer sweep)."""
    smallest = min(min(len(a), len(d)) for a, d in operands)
    ceiling = max(1, smallest // 2)
    clamped: dict[str, dict[str, Any]] = {}
    for method, config in candidates.items():
        adjusted = dict(config)
        if "num_samples" in adjusted:
            adjusted["num_samples"] = min(
                int(adjusted["num_samples"]), ceiling
            )
        clamped[method] = adjusted
    return clamped


def _loss(estimate_value: float, exact: float) -> float:
    """Relative error against truth (absolute error when truth is 0)."""
    if exact > 0:
        return abs(estimate_value - exact) / exact
    return abs(estimate_value)


def _fixed_estimate(
    method: str,
    config: Mapping[str, Any],
    a: Any,
    d: Any,
    request_seed: int,
) -> float:
    """What the fixed-method baseline answers on one trace request —
    the same value the router's arm would produce (same config, same
    seed propagation rule as :meth:`Router.route`)."""
    if method == BOUND_METHOD:
        return float(join_size_bounds(a, d).upper)
    call = dict(config)
    if "seed" not in call:
        from repro.service.request import _STOCHASTIC_METHODS

        if method in _STOCHASTIC_METHODS:
            call["seed"] = request_seed
    return float(estimate(a, d, method=method, **call).value)


def run_router_bench(
    *,
    router: "Router | str" = "UCB1",
    scale: float = 0.05,
    seed: int = 7,
    rounds: int = 12,
    warmup_rounds: int | None = None,
    datasets: Sequence[str] = ("xmark", "dblp", "xmach"),
    candidates: Mapping[str, Mapping[str, Any]] | None = None,
    holdout: float = 0.5,
    **router_config: Any,
) -> dict[str, Any]:
    """Run the routing + correction benchmark; the BENCH_router payload.

    Args:
        router: router name or instance; a name is resolved fresh *per
            dataset* with ``seed`` and the clamped candidate arms.
        scale: dataset scale factor (0.05 = CI-sized documents).
        seed: root seed — datasets, per-request seeds, router RNG.
        rounds: how many times the trace replays each Table 3 query.
        warmup_rounds: rounds excluded from the gated regret (default:
            one per arm — the forced exploration phase).
        datasets: subset of ``xmark``/``dblp``/``xmach``.
        candidates: arm set (default :data:`DEFAULT_CANDIDATES`);
            sampling budgets are clamped per dataset.
        holdout: held-out fraction for the correction-model fit.
        **router_config: extra router constructor arguments
            (``exploration=``, ``latency_weight=``, ...).

    Returns the ``BENCH_router.json`` payload without ``elapsed_s``
    (the caller stamps timing so the body stays deterministic).
    """
    base_candidates = dict(
        candidates if candidates is not None else DEFAULT_CANDIDATES
    )
    # The router's store sees only its own pulls (bandit feedback);
    # the baselines get a separate store so the bandit never learns
    # from arms it did not pull.  Both feed the correction fit.
    store = FeedbackStore()
    baseline_store = FeedbackStore()
    per_dataset: list[dict[str, Any]] = []
    router_describe: dict[str, Any] | None = None

    total_router = 0.0
    total_router_gated = 0.0
    total_best_fixed = 0.0
    total_best_fixed_gated = 0.0

    for dataset_name in datasets:
        dataset = _GENERATORS[dataset_name](scale, seed)
        queries = ALL_WORKLOADS[dataset_name]
        operands = [query.operands(dataset) for query in queries]
        exacts = [containment_join_size(a, d) for a, d in operands]
        arms = _clamped_candidates(base_candidates, operands)

        # Pre-register truth so every trace record carries it and the
        # router earns a reward from the very first pull.
        for (a, d), exact in zip(operands, exacts):
            store.observe_truth(a, d, float(exact))
            baseline_store.observe_truth(a, d, float(exact))
        smallest = min(min(len(a), len(d)) for a, d in operands)
        request_samples = max(1, min(64, smallest // 2))

        dataset_router = (
            router
            if isinstance(router, Router)
            else resolve_router(
                router, candidates=arms, seed=seed, **router_config
            )
        )
        if router_describe is None:
            router_describe = dataset_router.describe()
        warmup = (
            warmup_rounds
            if warmup_rounds is not None
            else len(dataset_router.arms)
        )

        router_loss = 0.0
        router_loss_gated = 0.0
        fixed_loss = {method: 0.0 for method in arms}
        fixed_loss_gated = {method: 0.0 for method in arms}
        arm_pulls = {method: 0 for method in arms}

        with EstimationService(
            workers=0, router=dataset_router, feedback=store
        ) as service:
            for round_index in range(rounds):
                gated = round_index >= warmup
                for query_index, (a, d) in enumerate(operands):
                    request_seed = _request_seed(
                        seed, query_index, round_index
                    )
                    exact = float(exacts[query_index])
                    response = service.estimate(
                        a,
                        d,
                        "IM",
                        num_samples=request_samples,
                        seed=request_seed,
                    )
                    routed = response.routed_method or "IM"
                    arm_pulls[routed] = arm_pulls.get(routed, 0) + 1
                    loss = _loss(response.estimate.value, exact)
                    router_loss += loss
                    if gated:
                        router_loss_gated += loss
                    for method, config in arms.items():
                        value = _fixed_estimate(
                            method, config, a, d, request_seed
                        )
                        record_feedback(
                            a, d, method, value, store=baseline_store
                        )
                        floss = _loss(value, exact)
                        fixed_loss[method] += floss
                        if gated:
                            fixed_loss_gated[method] += floss

        best_fixed = min(fixed_loss_gated, key=fixed_loss_gated.get)
        best_gated = fixed_loss_gated[best_fixed]
        best_total = fixed_loss[best_fixed]
        per_dataset.append(
            {
                "dataset": dataset_name,
                "queries": len(queries),
                "rounds": rounds,
                "warmup_rounds": warmup,
                "candidates": arms,
                "router_loss": router_loss,
                "router_loss_gated": router_loss_gated,
                "fixed_loss": fixed_loss,
                "fixed_loss_gated": fixed_loss_gated,
                "best_fixed": best_fixed,
                "regret_ratio": _ratio(router_loss_gated, best_gated),
                "regret_ratio_total": _ratio(router_loss, best_total),
                "arm_pulls": arm_pulls,
            }
        )
        total_router += router_loss
        total_router_gated += router_loss_gated
        total_best_fixed += best_total
        total_best_fixed_gated += best_gated

    # ------------------------------------------------------------------
    # Correction phase: learn per-cell multipliers from the trace.
    # ------------------------------------------------------------------
    model = CorrectionModel()
    fit_records = list(store.records(with_truth=True)) + list(
        baseline_store.records(with_truth=True)
    )
    report = model.fit(fit_records, holdout=holdout)
    cells = []
    worsened = 0
    for cell, row in report.items():
        before, after = row["mre_before"], row["mre_after"]
        if before is None or after is None:
            continue
        if after > before:
            worsened += 1
        reduction = (
            100.0 * (before - after) / before if before > 0 else 0.0
        )
        cells.append(
            {
                "cell": cell,
                "records": row["records"],
                "mre_before": before,
                "mre_after": after,
                "fitted": row["fitted"],
                "reduction_pct": reduction,
            }
        )
    cells.sort(key=lambda row: -row["reduction_pct"])
    max_reduction = cells[0]["reduction_pct"] if cells else 0.0

    return {
        "bench": "router",
        "schema_version": ROUTER_BENCH_SCHEMA_VERSION,
        "scale": scale,
        "seed": seed,
        "rounds": rounds,
        "datasets": list(datasets),
        "router": router_describe or {},
        "per_dataset": per_dataset,
        "total": {
            "router_loss": total_router,
            "router_loss_gated": total_router_gated,
            "best_fixed_loss": total_best_fixed,
            "best_fixed_loss_gated": total_best_fixed_gated,
            "regret_ratio": _ratio(
                total_router_gated, total_best_fixed_gated
            ),
            "regret_ratio_total": _ratio(total_router, total_best_fixed),
        },
        "correction": {
            "mode": model.mode,
            "per_method": model.per_method,
            "holdout": holdout,
            "cells": len(cells),
            "fitted": sum(1 for row in cells if row["fitted"]),
            "worsened": worsened,
            "max_reduction_pct": max_reduction,
            "top_cells": cells[:8],
        },
        "feedback": {
            "records": len(store) + len(baseline_store),
            "with_truth": len(fit_records),
            "classes": len(
                set(store.classes()) | set(baseline_store.classes())
            ),
        },
    }


def _ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with the 0/0 → 1.0 convention (a
    router matching a perfect baseline has no regret)."""
    if denominator > 0:
        return numerator / denominator
    return 1.0 if numerator <= 0 else math.inf
