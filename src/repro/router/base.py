"""Bandit method selection over the estimator registry.

The paper's estimators dominate on different workload regions — PL wins
where the position model holds, IM/PM win under skew the histogram
flattens, the closed-form bound is free but loose.  A :class:`Router`
picks, per *query class* (see :func:`repro.feedback.query_class`), which
arm answers each request, learning from the signed relative errors and
latencies the :class:`~repro.feedback.FeedbackStore` accumulated — the
Bao shape: a bandit over a few fixed, well-understood strategies rather
than a learned estimator.

Determinism contract — every router here is a *pure function of (seed,
feedback history)*: decisions read only the store's order-free
aggregates (counts and sums, which snapshot/merge commutatively), ties
break on fixed candidate order, and the Thompson sampler derives its RNG
from ``(seed, query class, pull counts)``.  Serving the same trace with
any worker count, or folding per-worker stores in any order, yields the
same routes.

Routing is **off by default** (``EstimationService(router=None)``): the
service's bit-identity gates promise that a request for method X is
answered by method X, and a router deliberately breaks that promise —
so the caller must opt in, and the response discloses the choice in
``routed_method``.
"""

from __future__ import annotations

import abc
import math
import zlib
from typing import Any, Mapping, TYPE_CHECKING

import numpy as np

from repro.core.errors import FeedbackError
from repro.estimators.registry import canonical_name
from repro.feedback.store import FeedbackStore, MethodStats, query_class

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.request import EstimateRequest

__all__ = [
    "BOUND_METHOD",
    "DEFAULT_CANDIDATES",
    "Router",
    "StaticRouter",
    "ThompsonRouter",
    "UCB1Router",
]

#: The pseudo-method of the closed-form structural bound (Section 3.1).
#: Not a registry estimator — the service answers it inline from the
#: degradation ladder's bound rung — but a real arm: it costs one cached
#: O(|A|) scan, so a router may prefer it where every estimator is bad.
BOUND_METHOD = "BOUND"

#: The issue's canonical arm set: the paper's two models at a mid-range
#: sampling budget, the PL histogram, and the free bound.
DEFAULT_CANDIDATES: dict[str, dict[str, Any]] = {
    "PL": {"num_buckets": 16},
    "IM": {"num_samples": 64},
    "PM": {"num_samples": 64},
    BOUND_METHOD: {},
}


def _canonical_arm(method: str) -> str:
    if method.strip().upper() == BOUND_METHOD:
        return BOUND_METHOD
    return canonical_name(method)


class Router(abc.ABC):
    """Choose which method answers each request, per query class.

    Args:
        candidates: mapping ``method -> estimator config`` defining the
            arms (insertion order is the deterministic tie-break order).
            Methods resolve through the estimator registry; the special
            arm ``"BOUND"`` is the ladder's closed-form bound.  Defaults
            to :data:`DEFAULT_CANDIDATES`.
        seed: the router's RNG root (Thompson) — part of the purity
            contract even for routers that never sample.
        latency_weight: how many reward units one second of mean latency
            costs.  0.0 (the default) makes the reward pure accuracy,
            and therefore exactly reproducible across machines.
    """

    #: Canonical registry name, set by subclasses.
    name: str = ""

    def __init__(
        self,
        candidates: Mapping[str, Mapping[str, Any]] | None = None,
        *,
        seed: int = 0,
        latency_weight: float = 0.0,
    ) -> None:
        source = (
            candidates if candidates is not None else DEFAULT_CANDIDATES
        )
        if not source:
            raise FeedbackError("router needs at least one candidate arm")
        self.candidates: dict[str, dict[str, Any]] = {}
        for method, config in source.items():
            self.candidates[_canonical_arm(method)] = dict(config)
        self.arms: tuple[str, ...] = tuple(self.candidates)
        self.seed = int(seed)
        if latency_weight < 0:
            raise FeedbackError(
                f"latency_weight must be >= 0, got {latency_weight}"
            )
        self.latency_weight = float(latency_weight)

    # ------------------------------------------------------------------
    # Reward
    # ------------------------------------------------------------------

    def reward(self, stats: MethodStats | None) -> float | None:
        """An arm's observed reward in one class, or None untried.

        ``accuracy − latency_weight · mean latency`` with accuracy
        ``1 / (1 + mean |signed relative error|)`` ∈ (0, 1] — computed
        from the store's order-free sums only, never the EWMA (which
        depends on arrival order and would break the purity contract).
        """
        if stats is None or stats.truth_count == 0:
            return None
        accuracy = 1.0 / (1.0 + stats.abs_error_sum / stats.truth_count)
        return accuracy - self.latency_weight * stats.mean_latency_s

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def choose(
        self, query_class: str, stats: Mapping[str, MethodStats]
    ) -> str:
        """Pick an arm for one request of ``query_class``.

        ``stats`` maps method name to that class's aggregates (absent =
        never tried).  Must be a pure function of
        ``(self.seed, query_class, stats)``.
        """

    def route(
        self,
        request: "EstimateRequest",
        store: FeedbackStore | None,
    ) -> tuple[str, dict[str, Any]]:
        """The ``(method, config)`` that should answer ``request``.

        The chosen arm's config is copied; a stochastic arm inherits the
        request's explicit ``seed`` when the candidate config does not
        pin one, so routed requests stay memoizable and reproducible
        exactly when the originals were.
        """
        qc = query_class(request.ancestors, request.descendants)
        stats = store.method_stats(qc) if store is not None else {}
        method = self.choose(qc, stats)
        if method not in self.candidates:
            raise FeedbackError(
                f"router {self.name or type(self).__name__} chose "
                f"{method!r}, not one of its arms {self.arms}"
            )
        config = dict(self.candidates[method])
        request_seed = request.config.get("seed")
        if (
            method != BOUND_METHOD
            and request_seed is not None
            and "seed" not in config
        ):
            # Deterministic estimators take no seed parameter; only the
            # stochastic arms inherit the caller's RNG pin.
            from repro.service.request import _STOCHASTIC_METHODS

            if method in _STOCHASTIC_METHODS:
                config["seed"] = request_seed
        return method, config

    def describe(self) -> dict[str, Any]:
        """Introspection payload for ``stats()`` and bench reports."""
        return {
            "name": self.name or type(self).__name__,
            "arms": list(self.arms),
            "seed": self.seed,
            "latency_weight": self.latency_weight,
        }

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _pulls(
        self, stats: Mapping[str, MethodStats], arm: str
    ) -> tuple[int, int]:
        """(times chosen, times rewarded) for one arm."""
        cell = stats.get(arm)
        if cell is None:
            return 0, 0
        return cell.count, cell.truth_count

    def _least_tried(
        self, stats: Mapping[str, MethodStats]
    ) -> str | None:
        """The arm to explore next: fewest rewards, then fewest pulls,
        then candidate order — or None when every arm has a reward."""
        best: tuple[int, int, int] | None = None
        choice: str | None = None
        for index, arm in enumerate(self.arms):
            count, rewarded = self._pulls(stats, arm)
            if rewarded > 0:
                continue
            key = (rewarded, count, index)
            if best is None or key < best:
                best = key
                choice = arm
        return choice


class StaticRouter(Router):
    """The no-op baseline: every request goes to one pinned method.

    Useful as the control arm in regret benchmarks and as an explicit
    "routing off, but through the routing plumbing" mode in tests.
    """

    name = "STATIC"

    def __init__(
        self,
        candidates: Mapping[str, Mapping[str, Any]] | None = None,
        *,
        method: str = "PL",
        seed: int = 0,
        latency_weight: float = 0.0,
    ) -> None:
        super().__init__(
            candidates, seed=seed, latency_weight=latency_weight
        )
        self.method = _canonical_arm(method)
        if self.method not in self.candidates:
            raise FeedbackError(
                f"static method {self.method!r} is not a candidate arm "
                f"(have {self.arms})"
            )

    def choose(
        self, query_class: str, stats: Mapping[str, MethodStats]
    ) -> str:
        return self.method

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "method": self.method}


class UCB1Router(Router):
    """Upper-confidence-bound selection (Auer et al.'s UCB1).

    Per class: arms without any reward observation are explored first
    (fewest pulls, then candidate order); once every arm has a reward,
    the arm maximizing ``mean reward + c · sqrt(2 ln N / n)`` wins, ties
    broken by candidate order.  Fully deterministic given the feedback
    aggregates.

    Args:
        exploration: the ``c`` multiplier on the confidence radius
            (1.0 = textbook UCB1; smaller exploits earlier).
    """

    name = "UCB1"

    def __init__(
        self,
        candidates: Mapping[str, Mapping[str, Any]] | None = None,
        *,
        seed: int = 0,
        latency_weight: float = 0.0,
        exploration: float = 1.0,
    ) -> None:
        super().__init__(
            candidates, seed=seed, latency_weight=latency_weight
        )
        if exploration < 0:
            raise FeedbackError(
                f"exploration must be >= 0, got {exploration}"
            )
        self.exploration = float(exploration)

    def choose(
        self, query_class: str, stats: Mapping[str, MethodStats]
    ) -> str:
        unexplored = self._least_tried(stats)
        if unexplored is not None:
            return unexplored
        total = sum(
            self._pulls(stats, arm)[1] for arm in self.arms
        )
        log_total = math.log(max(total, 2))
        best_arm = self.arms[0]
        best_value = -math.inf
        for arm in self.arms:
            cell = stats.get(arm)
            mean = self.reward(cell)
            assert mean is not None  # _least_tried returned None
            radius = self.exploration * math.sqrt(
                2.0 * log_total / cell.truth_count
            )
            value = mean + radius
            if value > best_value:
                best_value = value
                best_arm = arm
        return best_arm


class ThompsonRouter(Router):
    """Gaussian Thompson sampling over the arm rewards.

    Per decision, each arm's reward is sampled from a Normal posterior
    ``N(mean, scale / sqrt(n + 1))`` (optimistic prior mean
    ``prior_mean`` for unrewarded arms) and the best sample wins.  The
    RNG is *derived*, not stateful: seeded from ``(router seed, query
    class, per-arm pull counts)``, so the draw — and therefore the
    decision — is a pure function of (seed, feedback history),
    independent of worker count and merge order.
    """

    name = "THOMPSON"

    def __init__(
        self,
        candidates: Mapping[str, Mapping[str, Any]] | None = None,
        *,
        seed: int = 0,
        latency_weight: float = 0.0,
        prior_mean: float = 1.0,
        scale: float = 0.5,
    ) -> None:
        super().__init__(
            candidates, seed=seed, latency_weight=latency_weight
        )
        if scale <= 0:
            raise FeedbackError(f"scale must be > 0, got {scale}")
        self.prior_mean = float(prior_mean)
        self.scale = float(scale)

    def choose(
        self, query_class: str, stats: Mapping[str, MethodStats]
    ) -> str:
        pulls = [self._pulls(stats, arm) for arm in self.arms]
        rng = np.random.default_rng(
            [
                self.seed & 0x7FFFFFFF,
                zlib.crc32(query_class.encode("utf-8")),
                *(rewarded for _, rewarded in pulls),
                *(count for count, _ in pulls),
            ]
        )
        draws = rng.standard_normal(len(self.arms))
        best_arm = self.arms[0]
        best_value = -math.inf
        for index, arm in enumerate(self.arms):
            mean = self.reward(stats.get(arm))
            rewarded = pulls[index][1]
            center = self.prior_mean if mean is None else mean
            sigma = self.scale / math.sqrt(rewarded + 1.0)
            value = center + sigma * float(draws[index])
            if value > best_value:
                best_value = value
                best_arm = arm
        return best_arm
