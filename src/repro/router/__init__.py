"""Bandit method routing: pick the estimator each query class deserves.

The decision half of the closed loop (:mod:`repro.feedback` is the
memory half): a :class:`Router` chooses, per query class, which of a
fixed candidate set — IM / PM / PL / the closed-form bound — answers
each request, learning from the feedback store's observed errors and
latencies.  :class:`UCB1Router` and :class:`ThompsonRouter` are the
bandits; :class:`StaticRouter` is the pinned-method control.

Attach one to the service with ``EstimationService(router=...)`` (or
``repro.serve(router="ucb1")``); routing is off by default and every
routed response discloses its choice in ``routed_method``.
"""

from repro.router.base import (
    BOUND_METHOD,
    DEFAULT_CANDIDATES,
    Router,
    StaticRouter,
    ThompsonRouter,
    UCB1Router,
)
from repro.router.registry import (
    available_routers,
    canonical_router_name,
    nearest_routers,
    resolve_router,
)

__all__ = [
    "BOUND_METHOD",
    "DEFAULT_CANDIDATES",
    "Router",
    "StaticRouter",
    "ThompsonRouter",
    "UCB1Router",
    "available_routers",
    "canonical_router_name",
    "nearest_routers",
    "resolve_router",
]
