"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output aligned and consistent.
"""

from __future__ import annotations

import math
from typing import Sequence


def format_cell(value: object) -> str:
    """Render one table cell: floats get two decimals, inf gets 'unbounded'."""
    if isinstance(value, float):
        if math.isinf(value):
            return "unbounded"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ----
    1  2.50
    """
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in rendered))
        if rendered
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[float, float]], precision: int = 2
) -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    formatted = ", ".join(
        f"{x:g}={y:.{precision}f}" for x, y in points
    )
    return f"{name}: {formatted}"
