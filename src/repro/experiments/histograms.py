"""Histogram accuracy-vs-space experiment: Figure 7.

Panels (a) and (b) sweep the bucket count from 5 to 45 for PH and PL on
the XMARK queries; panel (c) compares the two at a fixed budget.  The
paper's headline observations, all checkable from this runner's output:

* neither histogram is sensitive to its bucket count;
* PH explodes on queries whose ancestor set self-nests (Q6-Q8);
* PL stays bounded and beats PH nearly everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.workloads import ALL_WORKLOADS, Query
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.data import get_dataset
from repro.experiments.harness import MethodSpec, evaluate
from repro.experiments.report import format_series, format_table
from repro.perf.cache import SummaryCache

#: Bucket counts swept in Figure 7(a)/(b).
BUCKET_SWEEP = (5, 10, 15, 20, 25, 30, 35, 40, 45)


@dataclass(slots=True)
class HistogramSweep:
    """Relative error per query per bucket count for one method."""

    dataset: str
    method: str
    series: dict[str, list[tuple[float, float]]]  # query id -> (buckets, err)

    def render(self) -> str:
        lines = [
            f"[{self.dataset}] {self.method} relative error (%) vs buckets"
        ]
        for query_id, points in self.series.items():
            lines.append("  " + format_series(query_id, points))
        return "\n".join(lines)


def _method(label: str, buckets: int) -> MethodSpec:
    if label == "PH":
        return MethodSpec(
            "PH",
            lambda seed, b=buckets: PHHistogramEstimator(num_cells=b),
            stochastic=False,
        )
    return MethodSpec(
        "PL",
        lambda seed, b=buckets: PLHistogramEstimator(num_buckets=b),
        stochastic=False,
    )


def run_bucket_sweep(
    dataset_name: str,
    method: str,
    bucket_counts: tuple[int, ...] = BUCKET_SWEEP,
    scale: float = 1.0,
    queries: list[Query] | None = None,
    workers: int | None = None,
    cache: SummaryCache | None = None,
) -> HistogramSweep:
    """Figure 7(a) (method="PH") or 7(b) (method="PL").

    One summary cache (created here unless supplied) spans the whole
    bucket sweep, so a tag appearing in several queries has its summary
    built once per bucket count rather than once per query.
    """
    dataset = get_dataset(dataset_name, scale=scale)
    if queries is None:
        queries = ALL_WORKLOADS[dataset_name]
    if cache is None:
        cache = SummaryCache()
    series: dict[str, list[tuple[float, float]]] = {
        q.id: [] for q in queries
    }
    for buckets in bucket_counts:
        rows = evaluate(
            dataset,
            queries,
            [_method(method, buckets)],
            runs=1,
            workers=workers,
            cache=cache,
        )
        for row in rows:
            series[row.query.id].append(
                (float(buckets), row.errors[method])
            )
    return HistogramSweep(dataset_name, method, series)


def run_histogram_comparison(
    dataset_name: str,
    ph_cells: int = 50,
    pl_buckets: int = 20,
    scale: float = 1.0,
    workers: int | None = None,
    cache: SummaryCache | None = None,
) -> str:
    """Figure 7(c): PH vs PL per query at a fixed (400-byte) budget."""
    dataset = get_dataset(dataset_name, scale=scale)
    queries = ALL_WORKLOADS[dataset_name]
    if cache is None:
        cache = SummaryCache()
    rows = evaluate(
        dataset,
        queries,
        [_method("PH", ph_cells), _method("PL", pl_buckets)],
        runs=1,
        workers=workers,
        cache=cache,
    )
    return format_table(
        ["query", "true size", "PH", "PL"],
        [
            [r.query.id, r.true_size, r.errors["PH"], r.errors["PL"]]
            for r in rows
        ],
        title=(
            f"[{dataset_name}] PH ({ph_cells} cells) vs PL "
            f"({pl_buckets} buckets) relative error (%)"
        ),
    )
