"""The reproduction scoreboard: every headline claim, checked in one run.

Each :class:`Claim` pairs a sentence from the paper with a programmatic
check over the generated datasets.  :func:`verify_all` evaluates them and
returns pass/fail with a measured summary — the one-page verdict the
claims benchmark prints and EXPERIMENTS.md summarizes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable

from repro.core.budget import SpaceBudget
from repro.datasets.workloads import ALL_WORKLOADS
from repro.estimators.mre import maximum_relative_error
from repro.experiments.data import get_dataset
from repro.experiments.harness import evaluate, paper_methods
from repro.experiments.tables import average_cov_table
from repro.join import containment_join_size
from repro.models import (
    covering_table,
    inner_product_size,
    point_view,
    stabbing_pairs_count,
    start_table,
)


@dataclass(frozen=True, slots=True)
class ClaimResult:
    """One verified claim."""

    claim: str
    source: str
    passed: bool
    measured: str


def _xmark_errors(scale: float, runs: int, seed: int):
    dataset = get_dataset("xmark", scale=scale)
    rows = evaluate(
        dataset,
        ALL_WORKLOADS["xmark"],
        paper_methods(SpaceBudget(800)),
        runs=runs,
        seed=seed,
    )
    return {row.query.id: row.errors for row in rows}


def verify_all(
    scale: float = 1.0, runs: int = 3, seed: int = 0
) -> list[ClaimResult]:
    """Evaluate every scoreboard claim at the given scale."""
    results: list[ClaimResult] = []

    # --- Model theorems, exactly -------------------------------------
    theorem1_ok = True
    theorem2_ok = True
    for name in ("xmark", "dblp", "xmach"):
        dataset = get_dataset(name, scale=scale)
        workspace = dataset.tree.workspace()
        for query in ALL_WORKLOADS[name]:
            a, d = query.operands(dataset)
            exact = containment_join_size(a, d)
            theorem1_ok &= (
                stabbing_pairs_count(a, point_view(d)) == exact
            )
            theorem2_ok &= (
                inner_product_size(
                    covering_table(a, workspace),
                    start_table(d, workspace),
                )
                == exact
            )
    results.append(
        ClaimResult(
            "join size equals stabbing interval-point pairs",
            "Theorem 1",
            theorem1_ok,
            "exact on all 24 workload queries",
        )
    )
    results.append(
        ClaimResult(
            "join size equals the PMA·PMD inner product",
            "Theorem 2",
            theorem2_ok,
            "exact on all 24 workload queries",
        )
    )

    # --- MRE analytics ------------------------------------------------
    mre_ok = (
        maximum_relative_error(0.5) == float("inf")
        and maximum_relative_error(3.0) == 0.0
        and maximum_relative_error(1.5) == 0.5
        and all(
            maximum_relative_error(c / 10.0) < 1.0
            for c in range(10, 101)
        )
    )
    results.append(
        ClaimResult(
            "MRE unbounded below cov=1, bounded by 1 above",
            "Section 4.2 / Figure 3",
            mre_ok,
            "analytic check over cov in (0, 10]",
        )
    )

    # --- Overlap properties (Table 2) ---------------------------------
    expected = {
        "xmark": {"parlist", "listitem"},
        "dblp": set(),
        "xmach": {"host", "path", "section"},
    }
    overlap_ok = True
    for name, expected_tags in expected.items():
        dataset = get_dataset(name, scale=scale)
        observed = {
            s.predicate for s in dataset.statistics() if s.has_overlap
        }
        overlap_ok &= observed == expected_tags
    results.append(
        ClaimResult(
            'the "N/A" overlap rows are exactly the recursive sets',
            "Table 2",
            overlap_ok,
            "parlist/listitem + host/path/section, none in DBLP",
        )
    )

    # --- Table 4 cov cliff --------------------------------------------
    covs = dict(average_cov_table("dblp", 20, scale))
    cliff_ok = (
        covs["Q1"] > covs["Q2"] > covs["Q3"] > 0.1
        and all(covs[q] < 0.1 for q in ("Q4", "Q5", "Q6"))
    )
    results.append(
        ClaimResult(
            "cov values: Q1>Q2>Q3, cliff to Q4-Q6 (< 0.033 group)",
            "Table 4",
            cliff_ok,
            ", ".join(f"{q}={covs[q]:.4f}" for q in sorted(covs)),
        )
    )

    # --- Figure 5 family -----------------------------------------------
    errors = _xmark_errors(scale, runs, seed)
    means = {
        method: statistics.fmean(e[method] for e in errors.values())
        for method in ("PH", "PL", "IM", "PM")
    }
    results.append(
        ClaimResult(
            "IM achieves the best accuracy of the four methods",
            "Section 6.2 / Figure 5",
            means["IM"] == min(means.values()),
            ", ".join(f"{m}={v:.1f}%" for m, v in means.items()),
        )
    )
    blow_up = min(
        errors[q]["PH"] for q in ("Q6", "Q7", "Q8")
    )
    results.append(
        ClaimResult(
            "PH is extremely erroneous on Q6-Q8 (paper: 1600%-37500%)",
            "Section 6.1 / Figure 5",
            blow_up > max(300.0, 1000.0 * min(scale, 1.0)),
            f"min blow-up {blow_up:.0f}%",
        )
    )
    pl_wins = sum(
        1 for e in errors.values() if e["PL"] <= e["PH"] + 1e-9
    )
    results.append(
        ClaimResult(
            "PL outperforms PH on (nearly) every query",
            "Section 6.3 / Figure 7(c)",
            pl_wins >= len(errors) - 1,
            f"PL wins {pl_wins}/{len(errors)}",
        )
    )
    im_beats_pm = sum(
        1 for e in errors.values() if e["IM"] <= e["PM"] + 1e-9
    )
    results.append(
        ClaimResult(
            "IM has lower error than PM on every query",
            "Section 6.4 / Figure 8(c)",
            im_beats_pm == len(errors),
            f"IM wins {im_beats_pm}/{len(errors)}",
        )
    )
    results.append(
        ClaimResult(
            "sampling methods beat histogram methods overall",
            "Section 6.2",
            statistics.fmean((means["IM"], means["PM"]))
            < statistics.fmean((means["PH"], means["PL"])),
            f"sampling mean {(means['IM'] + means['PM']) / 2:.1f}% vs "
            f"histogram mean {(means['PH'] + means['PL']) / 2:.1f}%",
        )
    )
    return results


def render_claims(results: list[ClaimResult]) -> str:
    from repro.experiments.report import format_table

    return format_table(
        ["claim", "source", "verdict", "measured"],
        [
            [
                r.claim,
                r.source,
                "PASS" if r.passed else "FAIL",
                r.measured,
            ]
            for r in results
        ],
        title="Reproduction scoreboard",
    )
