"""Overall-performance experiment: Figures 5 (XMARK) and 6 (DBLP).

For each space budget (200, 400, 800 bytes) run PH, PL, IM and PM on
every Table 3 query of a dataset and report the relative errors.  The
same runner reproduces the XMACH results the paper summarizes as "very
similar to those on XMARK".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import SpaceBudget, paper_budgets
from repro.datasets.workloads import ALL_WORKLOADS
from repro.experiments.data import get_dataset
from repro.experiments.harness import QueryRow, evaluate, paper_methods
from repro.experiments.report import format_table
from repro.perf.cache import SummaryCache

METHOD_ORDER = ("PH", "PL", "IM", "PM")


@dataclass(slots=True)
class OverallResult:
    """One panel of Figure 5/6: a dataset at one space budget."""

    dataset: str
    budget: SpaceBudget
    rows: list[QueryRow]

    def render(self) -> str:
        headers = ["query", "true size", *METHOD_ORDER]
        table_rows = [
            [
                row.query.id,
                row.true_size,
                *(row.errors[m] for m in METHOD_ORDER),
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                f"[{self.dataset}] relative error (%) at space budget "
                f"{self.budget}"
            ),
        )


def run_overall(
    dataset_name: str,
    budgets: tuple[SpaceBudget, ...] = (),
    scale: float = 1.0,
    runs: int = 11,
    seed: int = 0,
    workers: int | None = None,
    cache: SummaryCache | None = None,
) -> list[OverallResult]:
    """Run the overall-performance experiment for one dataset.

    Returns one :class:`OverallResult` per budget (default: the paper's
    200/400/800 bytes, i.e. panels (a)-(c) of Figure 5 or 6).  One
    summary cache (created here unless supplied) spans every budget, so
    the histogram methods build each per-budget summary exactly once
    across the whole sweep; ``workers`` fans queries out per budget.
    """
    if not budgets:
        budgets = paper_budgets()
    dataset = get_dataset(dataset_name, scale=scale)
    queries = ALL_WORKLOADS[dataset_name]
    if cache is None:
        cache = SummaryCache()
    results = []
    for budget in budgets:
        rows = evaluate(
            dataset,
            queries,
            paper_methods(budget),
            runs=runs,
            seed=seed,
            workers=workers,
            cache=cache,
        )
        results.append(OverallResult(dataset_name, budget, rows))
    return results
