"""Cached dataset construction for experiments and benchmarks.

Building the scale-1.0 datasets costs a few seconds each, so the harness
memoizes them per (name, scale, seed).  The default seed is fixed: every
figure and table of a benchmark run is computed on the same documents,
exactly as the paper's experiments were.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.errors import ReproError
from repro.datasets import generate_dblp, generate_xmach, generate_xmark
from repro.datasets.base import Dataset

#: Seed used by all shipped benchmarks.
DEFAULT_SEED = 20030609  # the paper's presentation date

_GENERATORS = {
    "xmark": generate_xmark,
    "dblp": generate_dblp,
    "xmach": generate_xmach,
}


@lru_cache(maxsize=12)
def get_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    word_content: bool = False,
) -> Dataset:
    """Build (or fetch the cached) dataset ``name`` at ``scale``.

    ``word_content=True`` emits word-granularity region codes, matching
    the coding scheme the paper builds on (see the word-coding benchmark).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: "
            f"{', '.join(sorted(_GENERATORS))}"
        ) from None
    return generator(scale=scale, seed=seed, word_content=word_content)
