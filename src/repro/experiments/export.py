"""CSV export of figure series and tables.

The benchmarks write human-readable text reports; this module adds
machine-readable CSV alongside, so reproduced figures can be re-plotted
with any tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence


def export_series(
    path: str | Path,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> Path:
    """Write ``{series name: [(x, y), ...]}`` as long-format CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", x_label, y_label])
        for name, points in series.items():
            for x, y in points:
                writer.writerow([name, x, y])
    return path


def export_table(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write an experiment table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def read_series(
    path: str | Path,
) -> dict[str, list[tuple[float, float]]]:
    """Inverse of :func:`export_series` (used by tests)."""
    series: dict[str, list[tuple[float, float]]] = {}
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for name, x, y in reader:
            series.setdefault(name, []).append((float(x), float(y)))
    return series
