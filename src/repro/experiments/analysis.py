"""Empirical verification of Theorems 3 and 4.

Both sampling theorems make two claims: unbiasedness (``E[X̂] = X``) and
concentration (``X̂ = Θ(X) + O(n)`` with high probability via Hoeffding
bounds).  This module measures both over repeated runs and computes the
corresponding Hoeffding prediction, so a benchmark can check theory
against observation:

* IM-DA-Est: X̂ = (|D|/m) Σ c_i with each subjoin count c_i ∈ [0, H]
  (H = tree height), so
  ``P(|X̂ - X| >= t) <= 2 exp(-2 m t² / (|D|² H²))``.
* PM-Est: identical with |D| replaced by the workspace width w — the
  reason PM needs more samples (Section 5.2).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable

from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.estimators.base import Estimator


def hoeffding_halfwidth(
    scale: int, subjoin_bound: int, num_samples: int, delta: float = 0.05
) -> float:
    """The t with ``P(|X̂ - X| >= t) <= delta`` under Hoeffding.

    Args:
        scale: |D| for IM-DA-Est, the workspace width w for PM-Est.
        subjoin_bound: the per-sample cap H (tree height / max nesting).
        num_samples: sample size m.
        delta: failure probability.
    """
    if num_samples < 1:
        raise ValueError(f"need >= 1 sample, got {num_samples}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return (
        scale
        * subjoin_bound
        * math.sqrt(math.log(2.0 / delta) / (2.0 * num_samples))
    )


@dataclass(frozen=True, slots=True)
class TheoremCheck:
    """Measured behaviour of one estimator vs its theoretical guarantees."""

    label: str
    true_size: int
    runs: int
    mean_estimate: float
    bias_pct: float
    observed_std: float
    hoeffding_halfwidth_95: float
    within_bound_fraction: float

    @property
    def unbiased_within_noise(self) -> bool:
        """|bias| below three standard errors of the run mean."""
        if self.true_size == 0:
            return self.mean_estimate == 0.0
        standard_error = self.observed_std / math.sqrt(self.runs)
        return abs(self.mean_estimate - self.true_size) <= max(
            3.0 * standard_error, 1e-9
        )


def verify_sampling_theorem(
    label: str,
    make: Callable[[SeedLike], Estimator],
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
    true_size: int,
    scale: int,
    subjoin_bound: int,
    num_samples: int,
    runs: int = 200,
    seed: int = 0,
) -> TheoremCheck:
    """Run an estimator many times and compare against the theorem.

    Args:
        label: report label.
        make: seed -> configured estimator.
        scale: the theorem's additive scale (|D| or w).
        subjoin_bound: the per-sample cap H.
        num_samples: the m used by ``make`` (for the Hoeffding formula).
    """
    rng = make_rng(seed)
    estimates = []
    for __ in range(runs):
        estimator = make(int(rng.integers(0, 2**63 - 1)))
        estimates.append(
            estimator.estimate(ancestors, descendants, workspace).value
        )
    mean_estimate = statistics.fmean(estimates)
    halfwidth = hoeffding_halfwidth(scale, subjoin_bound, num_samples)
    within = sum(
        1 for value in estimates if abs(value - true_size) <= halfwidth
    ) / len(estimates)
    bias_pct = (
        abs(mean_estimate - true_size) / true_size * 100.0
        if true_size
        else 0.0
    )
    return TheoremCheck(
        label=label,
        true_size=true_size,
        runs=runs,
        mean_estimate=mean_estimate,
        bias_pct=bias_pct,
        observed_std=statistics.pstdev(estimates),
        hoeffding_halfwidth_95=halfwidth,
        within_bound_fraction=within,
    )
