"""Tables 2, 3 and 4 of the paper.

* Table 2 — per-predicate node counts and overlap properties of the three
  datasets (generated vs paper targets).
* Table 3 — the query workloads.
* Table 4 — average cov values of the DBLP queries under the default PL
  partitioning, the statistic explaining PL's DBLP behaviour.
"""

from __future__ import annotations

from repro.datasets.workloads import ALL_WORKLOADS
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.experiments.data import get_dataset
from repro.experiments.report import format_table


def render_table2(dataset_name: str, scale: float = 1.0) -> str:
    """Table 2: dataset statistics, generated vs paper."""
    dataset = get_dataset(dataset_name, scale=scale)
    rows = [
        [
            stats.predicate,
            stats.count,
            stats.paper_count if stats.paper_count is not None else "-",
            stats.overlap_label,
        ]
        for stats in dataset.statistics()
    ]
    return format_table(
        ["predicate", "node count", "paper count", "overlap property"],
        rows,
        title=f"Table 2 ({dataset_name}): statistics",
    )


def render_table3(dataset_name: str) -> str:
    """Table 3: the query workload of one dataset."""
    rows = [
        [query.id, query.ancestor, query.descendant]
        for query in ALL_WORKLOADS[dataset_name]
    ]
    return format_table(
        ["query", "ancestor", "descendant"],
        rows,
        title=f"Table 3 ({dataset_name}): queries",
    )


def average_cov_table(
    dataset_name: str = "dblp",
    num_buckets: int = 20,
    scale: float = 1.0,
    word_content: bool = False,
) -> list[tuple[str, float]]:
    """Table 4 data: (query id, average cov) for one dataset's workload."""
    dataset = get_dataset(dataset_name, scale=scale, word_content=word_content)
    workspace = dataset.tree.workspace()
    estimator = PLHistogramEstimator(num_buckets=num_buckets)
    table: list[tuple[str, float]] = []
    for query in ALL_WORKLOADS[dataset_name]:
        ancestors, descendants = query.operands(dataset)
        table.append(
            (query.id, estimator.average_cov(ancestors, descendants, workspace))
        )
    return table


#: The paper's Table 4 values, for side-by-side reporting.
PAPER_TABLE4 = {
    "Q1": 2.0520,
    "Q2": 0.9814,
    "Q3": 0.3598,
    "Q4": 0.0322,
    "Q5": 0.0003,
    "Q6": 0.0201,
}


def render_table4(num_buckets: int = 20, scale: float = 1.0) -> str:
    """Table 4: average cov values for the DBLP queries.

    Shows both coding granularities: element-event codes (the package
    default) and word-granularity codes (the scheme the paper's numbers
    come from), against the paper's values.
    """
    element_cov = dict(average_cov_table("dblp", num_buckets, scale))
    word_cov = dict(
        average_cov_table("dblp", num_buckets, scale, word_content=True)
    )
    rows = [
        [
            query_id,
            f"{element_cov[query_id]:.4f}",
            f"{word_cov[query_id]:.4f}",
            f"{PAPER_TABLE4[query_id]:.4f}",
        ]
        for query_id in element_cov
    ]
    return format_table(
        ["query", "cov (element codes)", "cov (word codes)", "cov (paper)"],
        rows,
        title="Table 4: average cov values, DBLP queries",
    )
