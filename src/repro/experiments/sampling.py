"""Sampling accuracy-vs-space experiment: Figure 8.

Panels (a) and (b) sweep the sample count for IM-DA-Est and PM-Est on the
XMARK queries; panel (c) compares the two at a fixed sample count.  The
paper's observations to reproduce:

* IM improves steadily with more samples and reaches ~2% error at 100
  samples on every query;
* PM fluctuates and needs more samples for the same confidence (its
  additive error term is O(w), not O(|D|));
* both beat the histogram methods overall.

Each sweep installs one ambient :class:`~repro.perf.IndexCache` around
its whole run, so every sample count (and both methods in the
comparison) probes the same built indexes and reuses the memoized exact
sizes; the harness batches the repetition trials on top of that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.workloads import ALL_WORKLOADS, Query
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.experiments.data import get_dataset
from repro.experiments.harness import MethodSpec, evaluate
from repro.experiments.report import format_series, format_table
from repro.perf import IndexCache, resolve_index_cache, use_index_cache

#: Sample counts swept in Figure 8(a)/(b).
SAMPLE_SWEEP = (25, 40, 55, 70, 85, 100)


@dataclass(slots=True)
class SamplingSweep:
    """Relative error per query per sample count for one method."""

    dataset: str
    method: str
    series: dict[str, list[tuple[float, float]]]

    def render(self) -> str:
        lines = [
            f"[{self.dataset}] {self.method} relative error (%) vs samples"
        ]
        for query_id, points in self.series.items():
            lines.append("  " + format_series(query_id, points))
        return "\n".join(lines)


def _method(label: str, samples: int) -> MethodSpec:
    if label == "IM":
        return MethodSpec(
            "IM",
            lambda seed, m=samples: IMSamplingEstimator(
                num_samples=m, seed=seed
            ),
        )
    return MethodSpec(
        "PM",
        lambda seed, m=samples: PMSamplingEstimator(num_samples=m, seed=seed),
    )


def run_sample_sweep(
    dataset_name: str,
    method: str,
    sample_counts: tuple[int, ...] = SAMPLE_SWEEP,
    scale: float = 1.0,
    runs: int = 11,
    seed: int = 0,
    queries: list[Query] | None = None,
) -> SamplingSweep:
    """Figure 8(a) (method="IM") or 8(b) (method="PM")."""
    dataset = get_dataset(dataset_name, scale=scale)
    if queries is None:
        queries = ALL_WORKLOADS[dataset_name]
    series: dict[str, list[tuple[float, float]]] = {
        q.id: [] for q in queries
    }
    ambient = resolve_index_cache(None)
    cache = ambient if ambient is not None else IndexCache()
    with use_index_cache(cache):
        for samples in sample_counts:
            rows = evaluate(
                dataset,
                queries,
                [_method(method, samples)],
                runs=runs,
                seed=seed,
            )
            for row in rows:
                series[row.query.id].append(
                    (float(samples), row.errors[method])
                )
    return SamplingSweep(dataset_name, method, series)


def run_sampling_comparison(
    dataset_name: str,
    samples: int = 100,
    scale: float = 1.0,
    runs: int = 11,
    seed: int = 0,
) -> str:
    """Figure 8(c): IM vs PM per query at a fixed sample count."""
    dataset = get_dataset(dataset_name, scale=scale)
    queries = ALL_WORKLOADS[dataset_name]
    ambient = resolve_index_cache(None)
    cache = ambient if ambient is not None else IndexCache()
    with use_index_cache(cache):
        rows = evaluate(
            dataset,
            queries,
            [_method("IM", samples), _method("PM", samples)],
            runs=runs,
            seed=seed,
        )
    return format_table(
        ["query", "true size", "IM", "PM"],
        [
            [r.query.id, r.true_size, r.errors["IM"], r.errors["PM"]]
            for r in rows
        ],
        title=(
            f"[{dataset_name}] IM vs PM relative error (%) at "
            f"{samples} samples"
        ),
    )
