"""The experiment harness: run estimator sweeps over query workloads.

The paper's metric is the relative error ``|x - x̂| / x × 100%`` against
the exact join size, with sampling methods averaged over multiple runs
under the same setting (Section 6.1).  A :class:`MethodSpec` wraps an
estimator factory so each run gets an independently seeded instance;
:func:`evaluate` produces one :class:`QueryRow` per query with the
aggregated error of every method.

Performance controls (see ``docs/ARCHITECTURE.md``):

* ``cache=`` installs a :class:`~repro.perf.SummaryCache` around the
  sweep, so histograms shared between queries, methods and repetitions
  build once;
* ``index_cache=`` does the same for the sampling estimators' probe
  indexes (:class:`~repro.perf.IndexCache`); :func:`evaluate` installs
  a private one automatically when none is given, and additionally
  memoizes each query's exact join size in it, since repetition sweeps
  ask for the same ground truth many times;
* the repetition loop of :func:`run_method` executes all runs of a
  sampling method as **one batched pass**
  (:meth:`~repro.estimators.sampling_base.SamplingEstimator.estimate_across`)
  — per-run seeds are drawn from the method generator in the exact
  order the sequential loop would draw them and each run's estimate is
  bit-identical to its sequential counterpart, so aggregates are
  unchanged to the last ulp;
* ``workers=`` fans queries out over forked worker processes.  Every
  per-query seed is derived from the master generator *before* the
  fan-out, in the exact order the serial loop would draw them, so
  ``workers=N`` returns rows identical to ``workers=1``.

Observability (see ``docs/API.md``): while :func:`repro.obs.observe`
is active, every estimator call records into the ambient metrics
registry and each finished query row is streamed to the ambient
telemetry sink as a ``query`` event.  Under the fork fan-out each query
is evaluated inside a fresh worker-local registry whose snapshot rides
back with the row; the parent merges the snapshots (in query order)
into its own registry, so totals are identical for every worker count,
serial runs included.
"""

from __future__ import annotations

import math
import multiprocessing
import statistics
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Literal, Sequence

from repro.core.budget import SpaceBudget
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.datasets.base import Dataset
from repro.datasets.workloads import Query
from repro.estimators.base import Estimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.estimators.sampling_base import SamplingEstimator
from repro.join import containment_join_size
from repro.obs import runtime as _obs
from repro.obs.metrics import MetricsRegistry
from repro.perf import reference_kernels_enabled
from repro.perf.cache import SummaryCache, use_cache
from repro.perf.index_cache import (
    IndexCache,
    active_index_cache,
    resolve_index_cache,
    use_index_cache,
)

Aggregation = Literal["mean_error", "error_of_mean"]


@dataclass(frozen=True, slots=True)
class MethodSpec:
    """A named estimator factory.

    ``factory`` receives a seed so every repetition of a stochastic
    method is independent; deterministic methods ignore it.
    """

    label: str
    factory: Callable[[SeedLike], Estimator]
    stochastic: bool = True


@dataclass(slots=True)
class QueryRow:
    """Results for one query: exact size plus per-method aggregates."""

    query: Query
    true_size: int
    errors: dict[str, float] = field(default_factory=dict)
    estimates: dict[str, float] = field(default_factory=dict)


def paper_methods(budget: SpaceBudget) -> list[MethodSpec]:
    """The four methods of Figures 5 and 6 configured for one budget.

    PH gets ``budget // 8`` grid cells, PL ``budget // 20`` buckets and
    the sampling methods ``budget // 8`` samples — the conversions stated
    in Section 6.2.
    """
    return [
        MethodSpec(
            "PH",
            lambda seed, b=budget: PHHistogramEstimator(budget=b),
            stochastic=False,
        ),
        MethodSpec(
            "PL",
            lambda seed, b=budget: PLHistogramEstimator(budget=b),
            stochastic=False,
        ),
        MethodSpec(
            "IM",
            lambda seed, b=budget: IMSamplingEstimator(budget=b, seed=seed),
        ),
        MethodSpec(
            "PM",
            lambda seed, b=budget: PMSamplingEstimator(budget=b, seed=seed),
        ),
    ]


def run_method(
    method: MethodSpec,
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
    true_size: int,
    runs: int,
    seed: SeedLike,
    aggregation: Aggregation = "mean_error",
) -> tuple[float, float]:
    """Aggregate ``(error_pct, mean_estimate)`` of one method on one query.

    ``aggregation="mean_error"`` (default, the conventional reading of the
    paper's setup) averages each run's relative error;
    ``"error_of_mean"`` first averages the estimates, then takes the error
    of that mean — which converges to 0 for any unbiased estimator.
    """
    rng = make_rng(seed)
    effective_runs = runs if method.stochastic else 1
    # One bulk draw fills the seed array exactly as per-run scalar draws
    # would (factories never touch this generator), so constructing every
    # estimator up front leaves the stream unchanged and lets all runs
    # execute as a single batched pass.
    seeds = rng.integers(0, 2**63 - 1, size=effective_runs)
    estimators = [method.factory(int(s)) for s in seeds]
    estimates = _run_estimators(
        estimators, ancestors, descendants, workspace
    )
    mean_estimate = statistics.fmean(estimates)
    if true_size == 0:
        error = 0.0 if all(e == 0 for e in estimates) else float("inf")
    elif aggregation == "error_of_mean":
        error = abs(true_size - mean_estimate) / true_size * 100.0
    else:
        error = statistics.fmean(
            abs(true_size - e) / true_size * 100.0 for e in estimates
        )
    return error, mean_estimate


def _run_estimators(
    estimators: Sequence[Estimator],
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
) -> list[float]:
    """Estimates of every instance, batched when they can share a pass.

    Identically configured sampling estimators (the stochastic
    repetition pattern) run through
    :meth:`SamplingEstimator.estimate_across`, which returns exactly the
    values sequential ``estimate`` calls would.  Everything else — and
    everything under :func:`repro.perf.reference_kernels`, whose purpose
    is to reproduce the per-call behaviour — runs sequentially.
    """
    first = estimators[0]
    if (
        len(estimators) > 1
        and isinstance(first, SamplingEstimator)
        and not reference_kernels_enabled()
        and all(type(e) is type(first) for e in estimators)
    ):
        key = first._batch_key()
        if all(e._batch_key() == key for e in estimators):
            results = type(first).estimate_across(
                estimators, ancestors, descendants, workspace
            )
            return [r.value for r in results]
    return [
        e.estimate(ancestors, descendants, workspace).value
        for e in estimators
    ]


def _evaluate_query(
    dataset: Dataset,
    query: Query,
    methods: Sequence[MethodSpec],
    workspace: Workspace,
    runs: int,
    method_seeds: Sequence[int],
    aggregation: Aggregation,
) -> QueryRow:
    """One query against every method, with pre-derived per-method seeds."""
    ancestors, descendants = query.operands(dataset)
    true_size = _true_size(ancestors, descendants)
    row = QueryRow(query=query, true_size=true_size)
    for method, method_seed in zip(methods, method_seeds):
        error, mean_estimate = run_method(
            method,
            ancestors,
            descendants,
            workspace,
            true_size,
            runs,
            method_seed,
            aggregation,
        )
        row.errors[method.label] = error
        row.estimates[method.label] = mean_estimate
    return row


def _true_size(ancestors: NodeSet, descendants: NodeSet) -> int:
    """Exact join size, memoized in the ambient index cache.

    Sample-count and budget sweeps evaluate the same operand pair under
    many configurations; the ground truth is a pure function of operand
    content, so it lives happily next to the probe indexes under a
    content key.
    """
    cache = resolve_index_cache(None)
    if cache is None:
        return containment_join_size(ancestors, descendants)
    return cache.get_or_build(
        ("join_size", ancestors.fingerprint, descendants.fingerprint),
        lambda: containment_join_size(ancestors, descendants),
    )


#: Fork-inherited state for worker processes.  ``MethodSpec`` factories
#: are closures that cannot be pickled, so the parallel path relies on
#: fork semantics: the parent publishes the evaluation context here and
#: workers receive it by memory inheritance, exchanging only query
#: indices and result rows over the pipe.
_FORK_STATE: dict[str, Any] | None = None


def _evaluate_query_by_index(
    index: int,
) -> tuple[QueryRow, dict[str, Any] | None]:
    """One query in a worker; returns the row plus its metric snapshot.

    When the parent had observation enabled, the query runs inside a
    fresh worker-local registry (the parent's sink is explicitly *not*
    installed — forked workers must never write to its stream) and the
    registry snapshot travels back with the row for the parent to merge.
    """
    state = _FORK_STATE
    assert state is not None, "worker started without fork state"
    cache: SummaryCache | None = state["cache"]
    index_cache: IndexCache | None = state["index_cache"]
    if index_cache is None and state["auto_index_cache"]:
        # Mirror the serial path's per-query private cache, keeping
        # merged counter totals identical for every worker count.
        index_cache = IndexCache()
    scope = use_cache(cache) if cache is not None else nullcontext()
    index_scope = (
        use_index_cache(index_cache)
        if index_cache is not None
        else nullcontext()
    )
    with scope, index_scope:
        if state["observe"]:
            with _obs.observe(registry=MetricsRegistry()) as registry:
                row = _evaluate_query(
                    state["dataset"],
                    state["queries"][index],
                    state["methods"],
                    state["workspace"],
                    state["runs"],
                    state["seeds"][index],
                    state["aggregation"],
                )
            return row, registry.snapshot()
        return (
            _evaluate_query(
                state["dataset"],
                state["queries"][index],
                state["methods"],
                state["workspace"],
                state["runs"],
                state["seeds"][index],
                state["aggregation"],
            ),
            None,
        )


def evaluate(
    dataset: Dataset,
    queries: Sequence[Query],
    methods: Sequence[MethodSpec],
    runs: int = 11,
    seed: int = 0,
    aggregation: Aggregation = "mean_error",
    workers: int | None = None,
    cache: SummaryCache | None = None,
    index_cache: IndexCache | None = None,
) -> list[QueryRow]:
    """Run every method on every query of one dataset.

    Args:
        workers: fan queries out over this many forked worker processes.
            Per-query seeds are derived up front from the master
            generator, so any worker count returns rows identical to the
            serial run.  Falls back to serial execution on platforms
            without the fork start method.
        cache: summary cache installed (ambiently) around the sweep;
            histogram-based methods then build each summary once per
            distinct (node set, workspace, configuration).  Forked
            workers inherit a copy-on-write snapshot of it.
        index_cache: probe-index cache installed around the sweep for
            the sampling methods (and the exact-size memo).  When
            omitted and no ambient one is active, a private cache is
            created *per query* — results are identical either way, and
            per-query caches keep obs counter totals independent of how
            the parallel path shards queries over workers.  Pass an
            :class:`~repro.perf.IndexCache` (or install one ambiently,
            as the Figure 8 sweeps do) to share built indexes and
            exact-size memos across queries and ``evaluate`` calls.

    While :func:`repro.obs.observe` is active, per-worker metrics are
    merged back into the ambient registry and each row is streamed to
    the ambient sink as a ``query`` telemetry event.
    """
    workspace = dataset.tree.workspace()
    auto_index_cache = (
        index_cache is None
        and active_index_cache() is None
        and not reference_kernels_enabled()
    )
    rng = make_rng(seed)
    seeds = [
        [int(rng.integers(0, 2**63 - 1)) for __ in methods]
        for __ in queries
    ]
    worker_count = min(workers or 1, len(queries))
    if worker_count > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            return _evaluate_parallel(
                dataset,
                queries,
                methods,
                workspace,
                runs,
                seeds,
                aggregation,
                cache,
                index_cache,
                auto_index_cache,
                worker_count,
                context,
            )
    scope = use_cache(cache) if cache is not None else nullcontext()
    index_scope = (
        use_index_cache(index_cache)
        if index_cache is not None
        else nullcontext()
    )
    with scope, index_scope:
        rows = []
        for index, query in enumerate(queries):
            per_query_scope = (
                use_index_cache(IndexCache())
                if auto_index_cache
                else nullcontext()
            )
            with per_query_scope:
                row = _evaluate_query(
                    dataset,
                    query,
                    methods,
                    workspace,
                    runs,
                    seeds[index],
                    aggregation,
                )
            if _obs.enabled():
                _obs.record_query(
                    row.query.id, row.true_size, row.errors, row.estimates
                )
            rows.append(row)
        return rows


def _evaluate_parallel(
    dataset: Dataset,
    queries: Sequence[Query],
    methods: Sequence[MethodSpec],
    workspace: Workspace,
    runs: int,
    seeds: list[list[int]],
    aggregation: Aggregation,
    cache: SummaryCache | None,
    index_cache: IndexCache | None,
    auto_index_cache: bool,
    worker_count: int,
    context: multiprocessing.context.BaseContext,
) -> list[QueryRow]:
    global _FORK_STATE
    _FORK_STATE = {
        "dataset": dataset,
        "queries": list(queries),
        "methods": list(methods),
        "workspace": workspace,
        "runs": runs,
        "seeds": seeds,
        "aggregation": aggregation,
        "cache": cache,
        "index_cache": index_cache,
        "auto_index_cache": auto_index_cache,
        "observe": _obs.enabled(),
    }
    try:
        with context.Pool(worker_count) as pool:
            chunksize = max(1, math.ceil(len(queries) / (worker_count * 4)))
            results = pool.map(
                _evaluate_query_by_index,
                range(len(queries)),
                chunksize=chunksize,
            )
    finally:
        _FORK_STATE = None
    rows = []
    registry = _obs.get_registry()
    for row, snapshot in results:
        # Merge in query order: parent totals are then independent of
        # how the pool sharded the queries over workers.
        if snapshot is not None:
            registry.merge(snapshot)
        if _obs.enabled():
            _obs.record_query(
                row.query.id, row.true_size, row.errors, row.estimates
            )
        rows.append(row)
    return rows
