"""The experiment harness: run estimator sweeps over query workloads.

The paper's metric is the relative error ``|x - x̂| / x × 100%`` against
the exact join size, with sampling methods averaged over multiple runs
under the same setting (Section 6.1).  A :class:`MethodSpec` wraps an
estimator factory so each run gets an independently seeded instance;
:func:`evaluate` produces one :class:`QueryRow` per query with the
aggregated error of every method.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Literal, Sequence

from repro.core.budget import SpaceBudget
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.core.workspace import Workspace
from repro.datasets.base import Dataset
from repro.datasets.workloads import Query
from repro.estimators.base import Estimator
from repro.estimators.im_sampling import IMSamplingEstimator
from repro.estimators.ph_histogram import PHHistogramEstimator
from repro.estimators.pl_histogram import PLHistogramEstimator
from repro.estimators.pm_sampling import PMSamplingEstimator
from repro.join import containment_join_size

Aggregation = Literal["mean_error", "error_of_mean"]


@dataclass(frozen=True, slots=True)
class MethodSpec:
    """A named estimator factory.

    ``factory`` receives a seed so every repetition of a stochastic
    method is independent; deterministic methods ignore it.
    """

    label: str
    factory: Callable[[SeedLike], Estimator]
    stochastic: bool = True


@dataclass(slots=True)
class QueryRow:
    """Results for one query: exact size plus per-method aggregates."""

    query: Query
    true_size: int
    errors: dict[str, float] = field(default_factory=dict)
    estimates: dict[str, float] = field(default_factory=dict)


def paper_methods(budget: SpaceBudget) -> list[MethodSpec]:
    """The four methods of Figures 5 and 6 configured for one budget.

    PH gets ``budget // 8`` grid cells, PL ``budget // 20`` buckets and
    the sampling methods ``budget // 8`` samples — the conversions stated
    in Section 6.2.
    """
    return [
        MethodSpec(
            "PH",
            lambda seed, b=budget: PHHistogramEstimator(budget=b),
            stochastic=False,
        ),
        MethodSpec(
            "PL",
            lambda seed, b=budget: PLHistogramEstimator(budget=b),
            stochastic=False,
        ),
        MethodSpec(
            "IM",
            lambda seed, b=budget: IMSamplingEstimator(budget=b, seed=seed),
        ),
        MethodSpec(
            "PM",
            lambda seed, b=budget: PMSamplingEstimator(budget=b, seed=seed),
        ),
    ]


def run_method(
    method: MethodSpec,
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
    true_size: int,
    runs: int,
    seed: SeedLike,
    aggregation: Aggregation = "mean_error",
) -> tuple[float, float]:
    """Aggregate ``(error_pct, mean_estimate)`` of one method on one query.

    ``aggregation="mean_error"`` (default, the conventional reading of the
    paper's setup) averages each run's relative error;
    ``"error_of_mean"`` first averages the estimates, then takes the error
    of that mean — which converges to 0 for any unbiased estimator.
    """
    rng = make_rng(seed)
    effective_runs = runs if method.stochastic else 1
    estimates: list[float] = []
    for __ in range(effective_runs):
        estimator = method.factory(int(rng.integers(0, 2**63 - 1)))
        estimates.append(
            estimator.estimate(ancestors, descendants, workspace).value
        )
    mean_estimate = statistics.fmean(estimates)
    if true_size == 0:
        error = 0.0 if all(e == 0 for e in estimates) else float("inf")
    elif aggregation == "error_of_mean":
        error = abs(true_size - mean_estimate) / true_size * 100.0
    else:
        error = statistics.fmean(
            abs(true_size - e) / true_size * 100.0 for e in estimates
        )
    return error, mean_estimate


def evaluate(
    dataset: Dataset,
    queries: Sequence[Query],
    methods: Sequence[MethodSpec],
    runs: int = 11,
    seed: int = 0,
    aggregation: Aggregation = "mean_error",
) -> list[QueryRow]:
    """Run every method on every query of one dataset."""
    workspace = dataset.tree.workspace()
    rows: list[QueryRow] = []
    rng = make_rng(seed)
    for query in queries:
        ancestors, descendants = query.operands(dataset)
        true_size = containment_join_size(ancestors, descendants)
        row = QueryRow(query=query, true_size=true_size)
        for method in methods:
            error, mean_estimate = run_method(
                method,
                ancestors,
                descendants,
                workspace,
                true_size,
                runs,
                int(rng.integers(0, 2**63 - 1)),
                aggregation,
            )
            row.errors[method.label] = error
            row.estimates[method.label] = mean_estimate
        rows.append(row)
    return rows
