"""Experiment harness: regenerates every table and figure of Section 6.

* :mod:`repro.experiments.data` — cached dataset construction.
* :mod:`repro.experiments.harness` — method specs, repeated runs,
  relative-error aggregation.
* :mod:`repro.experiments.overall` — Figures 5 and 6 (+ the XMACH run the
  paper summarizes in prose).
* :mod:`repro.experiments.histograms` — Figure 7 (PH/PL bucket sweeps).
* :mod:`repro.experiments.sampling` — Figure 8 (IM/PM sample sweeps).
* :mod:`repro.experiments.tables` — Tables 2, 3 and 4.
* :mod:`repro.experiments.report` — plain-text table/series rendering.
"""

from repro.experiments.data import get_dataset
from repro.experiments.harness import MethodSpec, QueryRow, evaluate, paper_methods
from repro.experiments.report import format_series, format_table

__all__ = [
    "MethodSpec",
    "QueryRow",
    "evaluate",
    "format_series",
    "format_table",
    "get_dataset",
    "paper_methods",
]
