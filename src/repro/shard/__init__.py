"""Sharded execution: disjoint partitions, shared-memory arenas, merges.

The paper's summaries and exact counts are additive over disjoint
document partitions; this package turns that property into a process-
parallel execution layer:

* :mod:`repro.shard.partition` — split node sets into K contiguous
  shards (zero-copy views) and build per-shard summaries;
* :mod:`repro.shard.merge` — combine per-shard partials into global
  answers (integer statistics exact, float sums seam-reassociated,
  scattered sampling trials bit-identical by construction);
* :mod:`repro.shard.arena` — ``multiprocessing.shared_memory``-backed
  structure-of-arrays operand storage with explicit
  create/attach/close/unlink lifecycle and leak accounting;
* :mod:`repro.shard.pool` — the persistent fork pool behind
  ``EstimationService(processes=K)``.
"""

from repro.shard.arena import (
    SEGMENT_PREFIX,
    ShardArena,
    live_segments,
    segment_exists,
)
from repro.shard.merge import (
    merge_cell_counts,
    merge_counts,
    merge_intervals,
    merge_pl_histograms,
    merge_scattered_estimates,
    merge_trial_statistics,
)
from repro.shard.partition import (
    ShardStatistics,
    build_shard_statistics,
    chunk_evenly,
    shard_node_set,
    shard_sizes,
)
from repro.shard.pool import ShardWorkerPool

__all__ = [
    "SEGMENT_PREFIX",
    "ShardArena",
    "ShardStatistics",
    "ShardWorkerPool",
    "build_shard_statistics",
    "chunk_evenly",
    "live_segments",
    "merge_cell_counts",
    "merge_counts",
    "merge_intervals",
    "merge_pl_histograms",
    "merge_scattered_estimates",
    "merge_trial_statistics",
    "segment_exists",
    "shard_node_set",
    "shard_sizes",
]
