"""Shared-memory arenas: zero-copy numpy operands across processes.

A :class:`ShardArena` owns one ``multiprocessing.shared_memory`` segment
laid out as a structure of arrays: each named field is a contiguous
numpy array at a 64-byte-aligned offset.  The creating process copies
the operand arrays in exactly once; every worker process *attaches* to
the segment by name and maps read-only views — no pickling, no copies,
no per-request serialization of operand data.

Lifecycle is explicit and asymmetric, mirroring the POSIX semantics
underneath:

* ``create`` (owner) / ``attach`` (worker) — open the segment;
* ``close`` — unmap this process's views (both sides);
* ``unlink`` — destroy the segment (owner only; workers never unlink).

Because worker processes are forked from the owner, both sides share
one ``resource_tracker`` process; its per-name registry is a set, so
the owner's single ``unlink`` retires the segment cleanly no matter how
many workers attached.  A module-level registry plus an ``atexit``
backstop guarantees owned segments are unlinked even when a service
shuts down abnormally — :func:`live_segments` is the leak probe the
tests and the service bench assert against.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from multiprocessing import shared_memory
from typing import Any, Mapping

import numpy as np

from repro.core.errors import ServiceError

#: Field offsets are aligned so every view starts on a cache line.
_ALIGNMENT = 64

#: Prefix of every segment this module creates; tests scan ``/dev/shm``
#: for it to prove nothing outlives its owner.
SEGMENT_PREFIX = "repro_shard_"

_live_lock = threading.Lock()
_live: dict[int, "ShardArena"] = {}


def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}_{uuid.uuid4().hex[:12]}"


def _track(arena: "ShardArena") -> None:
    with _live_lock:
        _live[id(arena)] = arena


def _untrack(arena: "ShardArena") -> None:
    with _live_lock:
        _live.pop(id(arena), None)


def live_segments() -> list[str]:
    """Names of segments still mapped by this process (leak probe)."""
    with _live_lock:
        return sorted(arena.name for arena in _live.values())


def _atexit_sweep() -> None:  # pragma: no cover - interpreter shutdown
    with _live_lock:
        arenas = list(_live.values())
    for arena in arenas:
        try:
            arena.unlink() if arena.owner else arena.close()
        except Exception:
            pass


atexit.register(_atexit_sweep)


class ShardArena:
    """One shared-memory segment holding named numpy arrays.

    Construct through :meth:`create` (copies the fields in, owns the
    segment) or :meth:`attach` (maps an existing segment from its
    :meth:`manifest`).  ``view(field)`` returns a read-only zero-copy
    array; views are invalidated by :meth:`close`.
    """

    __slots__ = ("_shm", "_layout", "_views", "owner", "_closed")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: dict[str, tuple[str, tuple[int, ...], int]],
        owner: bool,
    ) -> None:
        self._shm = segment
        self._layout = layout
        self._views: dict[str, np.ndarray] = {}
        self.owner = owner
        self._closed = False
        _track(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, fields: Mapping[str, np.ndarray]) -> "ShardArena":
        """Allocate a segment and copy ``fields`` into it (owner side)."""
        if not fields:
            raise ServiceError("an arena needs at least one field")
        arrays = {
            name: np.ascontiguousarray(array)
            for name, array in fields.items()
        }
        layout: dict[str, tuple[str, tuple[int, ...], int]] = {}
        total = 0
        for name, array in arrays.items():
            offset = _align(total)
            layout[name] = (array.dtype.str, array.shape, offset)
            total = offset + array.nbytes
        segment = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=max(total, 1)
        )
        arena = cls(segment, layout, owner=True)
        for name, array in arrays.items():
            target = arena._map(name, writeable=True)
            target[...] = array
        arena._views.clear()  # drop the writeable mappings
        return arena

    @classmethod
    def attach(cls, manifest: Mapping[str, Any]) -> "ShardArena":
        """Map an existing segment from an owner's :meth:`manifest`."""
        segment = shared_memory.SharedMemory(name=manifest["segment"])
        layout = {
            name: (dtype, tuple(shape), offset)
            for name, (dtype, shape, offset) in manifest["fields"].items()
        }
        return cls(segment, layout, owner=False)

    def manifest(self) -> dict[str, Any]:
        """Picklable description a worker passes to :meth:`attach`."""
        return {
            "segment": self._shm.name,
            "fields": {
                name: (dtype, list(shape), offset)
                for name, (dtype, shape, offset) in self._layout.items()
            },
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def fields(self) -> tuple[str, ...]:
        return tuple(self._layout)

    @property
    def closed(self) -> bool:
        return self._closed

    def nbytes(self) -> int:
        return self._shm.size

    def _map(self, field: str, writeable: bool = False) -> np.ndarray:
        dtype, shape, offset = self._layout[field]
        view: np.ndarray = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
        )
        if not writeable:
            view.flags.writeable = False
        self._views[field] = view
        return view

    def view(self, field: str) -> np.ndarray:
        """Read-only zero-copy array for ``field``."""
        if self._closed:
            raise ServiceError(
                f"arena {self.name} is closed; views are invalid"
            )
        if field not in self._layout:
            raise ServiceError(
                f"arena {self.name} has no field {field!r} "
                f"(fields: {self.fields})"
            )
        cached = self._views.get(field)
        return cached if cached is not None else self._map(field)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's views.  Idempotent.

        Outstanding external references to views (a NodeSet still
        holding one) keep the mapping's buffer exported; the unmap is
        then deferred to interpreter cleanup rather than erroring —
        ``unlink`` (the leak that matters) does not require it.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # views escaped; the OS unmaps at exit
            pass
        _untrack(self)

    def unlink(self) -> None:
        """Destroy the segment (owner only).  Closes first; idempotent."""
        if not self.owner:
            raise ServiceError(
                f"arena {self.name} was attached, not created; "
                "only the owner unlinks"
            )
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (atexit raced us)
            pass


def segment_exists(name: str) -> bool:
    """True when ``name`` still exists in the OS shared-memory namespace."""
    path = f"/dev/shm/{name}"
    if os.path.exists(path):
        return True
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    # Attaching registered the name with the resource tracker (3.11
    # registers unconditionally); this was only a probe, so retract it.
    probe.close()
    try:
        shared_memory.resource_tracker.unregister(
            probe._name, "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker already gone
        pass
    return True
