"""Persistent fork-based worker pool with shared-memory operands.

The pool is the process-parallel execution engine behind
``EstimationService(processes=K)``.  Its contract with the engine:

* **Operands travel once.**  ``publish`` copies a node set's
  start/end/sorted-end arrays into a :class:`~repro.shard.arena.ShardArena`
  and broadcasts the (tiny, picklable) manifest; each worker attaches
  and reconstructs the set zero-copy via :meth:`NodeSet.from_arrays`,
  keyed by content fingerprint so republishing an already-known set is
  a no-op on both sides.
* **Scatter is bit-identical.**  ``scatter`` splits a batch's
  estimator configurations into contiguous chunks
  (:func:`~repro.shard.partition.chunk_evenly`), each worker runs its
  chunk through the same ``estimate_across``/sequential path the
  engine would run locally, and the gather concatenates chunks in
  order — every estimator draws from a generator seeded by its own
  config, so chunk boundaries cannot perturb any RNG stream.
* **Failure degrades, never hangs.**  A dead worker (crash, kill,
  pipe loss) is detected on the next send/recv, marked, and excluded;
  ``scatter`` raises :class:`~repro.core.errors.ServiceError` for the
  engine to fall back to local execution.  ``close`` stops workers,
  joins them (terminating stragglers), and unlinks every arena — the
  owner side is the only unlinker, so segments never outlive the pool
  even when workers died mid-task.

Workers are forked before the service starts its queue threads, hold
their own per-process Summary/Index caches, and keep attached arenas
until ``stop``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from multiprocessing.connection import Connection
from typing import Any, Sequence

from repro.core.errors import ServiceError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.base import Estimate
from repro.shard.arena import ShardArena
from repro.shard.merge import merge_scattered_estimates
from repro.shard.partition import chunk_evenly

#: Arena fields published per node set; sorted ends ride along so no
#: worker re-sorts what the parent already has.
_OPERAND_FIELDS = ("starts", "ends", "sorted_ends")


def _worker_main(conn: Connection) -> None:
    """Worker process loop: attach operands, run estimate tasks."""
    # Imports stay inside the worker path so a forked child touches its
    # own copies after the fork point, not mid-import parent state.
    from repro.estimators.registry import make_estimator
    from repro.estimators.sampling_base import SamplingEstimator
    from repro.perf.cache import SummaryCache, use_cache
    from repro.perf.index_cache import IndexCache, use_index_cache

    arenas: dict[str, ShardArena] = {}
    operands: dict[str, NodeSet] = {}
    summary_cache = SummaryCache()
    index_cache = IndexCache()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        try:
            if kind == "publish":
                __, fingerprint, name, manifest = message
                if fingerprint not in operands:
                    arena = ShardArena.attach(manifest)
                    arenas[fingerprint] = arena
                    node_set = NodeSet.from_arrays(
                        arena.view("starts"),
                        arena.view("ends"),
                        name=name,
                        fingerprint=fingerprint,
                    )
                    node_set.__dict__["sorted_ends"] = arena.view(
                        "sorted_ends"
                    )
                    operands[fingerprint] = node_set
                conn.send(("ok", None))
            elif kind == "estimate":
                __, method, configs, a_fp, d_fp, workspace = message
                ancestors = operands[a_fp]
                descendants = operands[d_fp]
                estimators = [
                    make_estimator(method, **config) for config in configs
                ]
                with use_cache(summary_cache), use_index_cache(
                    index_cache
                ):
                    if len(estimators) > 1 and SamplingEstimator.batchable(
                        estimators
                    ):
                        results = SamplingEstimator.estimate_across(
                            estimators, ancestors, descendants, workspace
                        )
                    else:
                        results = [
                            e.estimate(ancestors, descendants, workspace)
                            for e in estimators
                        ]
                conn.send(("ok", results))
            elif kind == "ping":
                conn.send(("ok", message[1]))
            elif kind == "crash":  # test hook: die without replying
                os._exit(42)
            elif kind == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown task {kind!r}"))
        except Exception as error:
            try:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):
                break
    operands.clear()
    for arena in arenas.values():
        arena.close()
    conn.close()


class _Worker:
    __slots__ = ("process", "conn", "alive", "published")

    def __init__(self, process: Any, conn: Connection) -> None:
        self.process = process
        self.conn = conn
        self.alive = True
        self.published: set[str] = set()


class ShardWorkerPool:
    """K forked workers sharing operand arenas with this process.

    Fork the pool *before* starting any threads that might hold locks —
    the service constructor does.  The pool is not thread-safe per call;
    the engine serializes scatters through ``_scatter_lock``.
    """

    def __init__(self, processes: int) -> None:
        if processes < 2:
            raise ServiceError(
                f"a worker pool needs >= 2 processes, got {processes}"
            )
        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX
            raise ServiceError(
                "processes mode requires the fork start method"
            ) from error
        # Start the resource tracker *before* forking: children then
        # inherit the parent's tracker, its per-name registry is a set,
        # and the owner's single unlink retires each segment cleanly.
        # Forked after-the-fact children would each spawn a private
        # tracker that "sees" every attached segment leak at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self.processes = processes
        self._arenas: dict[str, ShardArena] = {}
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        self.scatters = 0
        self.fallbacks = 0
        for index in range(processes):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn,),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def alive_count(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers if worker.alive)

    def stats(self) -> dict[str, Any]:
        return {
            "processes": self.processes,
            "alive": self.alive_count(),
            "published_operands": len(self._arenas),
            "arena_bytes": sum(
                arena.nbytes() for arena in self._arenas.values()
            ),
            "scatters": self.scatters,
            "fallbacks": self.fallbacks,
        }

    # ------------------------------------------------------------------
    # Worker RPC plumbing
    # ------------------------------------------------------------------

    def _send(self, worker: _Worker, message: tuple) -> bool:
        if not worker.alive:
            return False
        try:
            worker.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            worker.alive = False
            return False

    def _recv(self, worker: _Worker) -> Any:
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError):
            worker.alive = False
            raise ServiceError(
                f"shard worker {worker.process.name} died"
            ) from None
        if status != "ok":
            raise ServiceError(f"shard worker failed: {payload}")
        return payload

    def ping(self) -> int:
        """Round-trip every worker; returns how many answered."""
        with self._lock:
            answered = 0
            for worker in self._workers:
                if not self._send(worker, ("ping", "hello")):
                    continue
                try:
                    if self._recv(worker) == "hello":
                        answered += 1
                except ServiceError:
                    continue
            return answered

    def crash_worker(self, index: int = 0) -> None:
        """Test hook: make one worker exit without replying."""
        with self._lock:
            self._send(self._workers[index], ("crash",))
            self._workers[index].process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def _ensure_published(self, node_set: NodeSet) -> str:
        """Arena-publish ``node_set`` to every alive worker (idempotent)."""
        fingerprint = node_set.fingerprint
        arena = self._arenas.get(fingerprint)
        if arena is None:
            arena = ShardArena.create(
                {
                    "starts": node_set.starts,
                    "ends": node_set.ends,
                    "sorted_ends": node_set.sorted_ends,
                }
            )
            self._arenas[fingerprint] = arena
        manifest = arena.manifest()
        message = ("publish", fingerprint, node_set.name, manifest)
        pending = []
        for worker in self._workers:
            if not worker.alive or fingerprint in worker.published:
                continue
            if self._send(worker, message):
                pending.append(worker)
        for worker in pending:
            try:
                self._recv(worker)
                worker.published.add(fingerprint)
            except ServiceError:
                continue
        return fingerprint

    # ------------------------------------------------------------------
    # Scatter / gather
    # ------------------------------------------------------------------

    def scatter(
        self,
        method: str,
        configs: Sequence[dict[str, Any]],
        ancestors: NodeSet,
        descendants: NodeSet,
        workspace: Workspace | None,
    ) -> list[Estimate]:
        """Fan ``configs`` over the workers; gather in submission order.

        Raises :class:`ServiceError` when no (or not enough) workers
        survive the round — the engine treats that as "compute locally",
        never as a failed request.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("shard pool is closed")
            a_fp = self._ensure_published(ancestors)
            d_fp = self._ensure_published(descendants)
            alive = [
                worker
                for worker in self._workers
                if worker.alive
                and a_fp in worker.published
                and d_fp in worker.published
            ]
            if len(alive) < 2:
                raise ServiceError(
                    f"only {len(alive)} shard workers usable"
                )
            chunks = chunk_evenly(list(configs), len(alive))
            dispatched: list[tuple[_Worker, int]] = []
            failure: ServiceError | None = None
            for worker, chunk in zip(alive, chunks):
                if not chunk:
                    continue
                if not self._send(
                    worker,
                    ("estimate", method, chunk, a_fp, d_fp, workspace),
                ):
                    failure = ServiceError(
                        "shard worker died during dispatch"
                    )
                    break
                dispatched.append((worker, len(chunk)))
            # Gather from every dispatched worker even on failure, so
            # alive workers' pipes stay in protocol sync for the next
            # scatter instead of replaying stale results.
            gathered: list[list[Estimate]] = []
            for worker, expected in dispatched:
                try:
                    results = self._recv(worker)
                except ServiceError as error:
                    failure = failure or error
                    continue
                if len(results) != expected:
                    failure = failure or ServiceError(
                        f"shard worker returned {len(results)} "
                        f"results for {expected} configs"
                    )
                    continue
                gathered.append(results)
            if failure is not None:
                raise failure
            self.scatters += 1
            return merge_scattered_estimates(gathered)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers, join/terminate them, unlink every arena."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if self._send(worker, ("stop",)):
                    try:
                        self._recv(worker)
                    except ServiceError:
                        pass
            for worker in self._workers:
                worker.process.join(timeout)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.terminate()
                    worker.process.join(timeout)
                worker.alive = False
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
            for arena in self._arenas.values():
                arena.unlink()
            self._arenas.clear()

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close(timeout=0.5)
        except Exception:
            pass
