"""Combining per-shard partials into global answers.

Additivity is the whole design: the paper's summaries are sums over
elements, so a disjoint element partition turns every build into K
independent builds plus this module.  The exactness contract is split
by dtype, deliberately:

* **integer statistics merge bit-exactly** — per-bucket counts
  ``n(R, i)``, PH cell counts, and exact join counts are integer sums,
  and integer addition is associative;
* **float statistics merge exactly up to reassociation** — per-bucket
  ``total_length`` sums were accumulated left-to-right over all
  elements in the unsharded build and are re-bracketed at shard seams
  here.  The qa oracle checks those to a 1e-12 relative tolerance;
  anything larger is a real merge bug, not rounding;
* **scattered sampling trials merge bit-exactly by concatenation** —
  each trial's RNG stream is private to its estimator instance (seeded
  from its own config), so chunking instances across workers and
  concatenating per-chunk results in chunk order reproduces the
  single-process ``estimate_across`` output float for float.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.pl_histogram import PLBucket, PLHistogram


def merge_counts(counts: Sequence[int]) -> int:
    """Exact sum of per-shard integer counts (join sizes, cardinalities)."""
    return int(sum(int(count) for count in counts))


def merge_pl_histograms(parts: Sequence[PLHistogram]) -> PLHistogram:
    """Bucket-wise sum of per-shard PL histograms.

    Every part must share role, bucket count and bucket edges (the
    sharded build guarantees this by handing all shards the global
    workspace).  Counts merge exactly; ``total_length`` is a float sum
    re-bracketed at shard seams.
    """
    if not parts:
        raise EstimationError("cannot merge zero PL histograms")
    lead = parts[0]
    for other in parts[1:]:
        if other.role != lead.role or len(other) != len(lead):
            raise EstimationError(
                f"PL histogram shapes differ: {other.role}/{len(other)} "
                f"vs {lead.role}/{len(lead)}"
            )
        for mine, theirs in zip(lead.buckets, other.buckets):
            if (mine.wss, mine.wse) != (theirs.wss, theirs.wse):
                raise EstimationError(
                    f"bucket {mine.index} edges differ across shards: "
                    f"[{mine.wss}, {mine.wse}) vs "
                    f"[{theirs.wss}, {theirs.wse})"
                )
    merged = [
        PLBucket(
            index=bucket.index,
            wss=bucket.wss,
            wse=bucket.wse,
            n=sum(part.buckets[i].n for part in parts),
            total_length=sum(
                part.buckets[i].total_length for part in parts
            ),
        )
        for i, bucket in enumerate(lead.buckets)
    ]
    return PLHistogram(merged, lead.role)


def merge_cell_counts(parts: Sequence[dict]) -> dict:
    """Key-wise sum of per-shard PH cell histograms (exact, integer)."""
    merged: dict = {}
    for part in parts:
        for cell, count in part.items():
            merged[cell] = merged.get(cell, 0) + int(count)
    return merged


def merge_intervals(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Union of per-shard merged-interval arrays as one ``(M, 2)`` array.

    Each part is already sorted and internally disjoint; shard seams can
    abut or nest, so the global pass re-merges: sort by start, then the
    same running-maximum boundary detection the single-set kernel uses.
    The result equals ``merged_intervals`` of the unsharded set exactly
    (interval unions are set unions — no arithmetic to reassociate).
    """
    stacked = [np.asarray(part).reshape(-1, 2) for part in parts]
    pairs = (
        np.concatenate(stacked)
        if stacked
        else np.empty((0, 2), dtype=np.int64)
    )
    if pairs.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    order = np.argsort(pairs[:, 0], kind="stable")
    starts = pairs[order, 0]
    reach = np.maximum.accumulate(pairs[order, 1])
    fresh = np.empty(starts.shape[0], dtype=bool)
    fresh[0] = True
    fresh[1:] = starts[1:] > reach[:-1]
    heads = np.flatnonzero(fresh)
    tails = np.append(heads[1:] - 1, starts.shape[0] - 1)
    return np.column_stack((starts[heads], reach[tails]))


def merge_scattered_estimates(
    chunks: Sequence[Sequence[Estimate]],
) -> list[Estimate]:
    """Gather per-worker estimate chunks back into submission order.

    The scatter split the configuration list contiguously
    (:func:`repro.shard.partition.chunk_evenly`), so in-order
    concatenation *is* the identity merge — bit-identical to running
    the whole list through one local ``estimate_across`` pass.
    """
    merged: list[Estimate] = []
    for chunk in chunks:
        merged.extend(chunk)
    return merged


def merge_trial_statistics(
    means: Sequence[float], counts: Sequence[int]
) -> tuple[float, int]:
    """Pooled (mean, count) over per-shard sampling-trial statistics.

    The count-weighted mean of per-shard means; used by reporting paths
    that aggregate trial populations rather than individual trials.
    """
    if len(means) != len(counts):
        raise EstimationError(
            f"{len(means)} means but {len(counts)} counts"
        )
    total = merge_counts(counts)
    if total == 0:
        return 0.0, 0
    pooled = (
        sum(mean * count for mean, count in zip(means, counts)) / total
    )
    return float(pooled), total
