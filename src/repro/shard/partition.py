"""Sharding node sets into disjoint, merge-exact partitions.

A *shard plan* splits a start-ordered node set into ``K`` contiguous
slices of near-equal size.  Contiguity matters twice over:

* a contiguous start-ordered subset of a strictly nested set is itself
  strictly nested, so shard node sets need no re-validation;
* every per-shard statistic this package merges (bucket counts, cell
  counts, exact join counts, merged intervals) is additive over *any*
  disjoint element partition, and contiguous slices additionally keep
  per-bucket float accumulation in global element order — the merge
  layer's reassociation error is confined to one seam per shard.

Shard node sets are built through :meth:`NodeSet.from_arrays` as
zero-copy views into the parent's arrays, so planning K shards costs
O(K) regardless of set size.  Plans are cached in the ambient
:class:`~repro.perf.cache.SummaryCache` under a content key
``("shard-plan", fingerprint, K)`` — shard-aware in exactly the way
the per-set summary keys are, so repeated sharded builds (the catalog,
the qa oracle, the bench) reuse one plan per (set, K).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace
from repro.estimators.coverage_histogram import merged_intervals_cached
from repro.estimators.pl_histogram import (
    PLHistogram,
    build_ancestor_cached,
    build_descendant_cached,
)
from repro.join.size import containment_join_size
from repro.perf.cache import SummaryCache, resolve_cache


def shard_sizes(total: int, num_shards: int) -> list[int]:
    """Near-equal shard sizes: ``total`` split into ``num_shards`` parts.

    The first ``total % num_shards`` shards get one extra element, so
    sizes differ by at most one and empty shards appear only when
    ``total < num_shards``.
    """
    if num_shards < 1:
        raise EstimationError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    base, extra = divmod(total, num_shards)
    return [base + (1 if i < extra else 0) for i in range(num_shards)]


def shard_node_set(
    node_set: NodeSet,
    num_shards: int,
    cache: SummaryCache | None = None,
) -> tuple[NodeSet, ...]:
    """Split ``node_set`` into ``num_shards`` contiguous shard sets.

    Shards are zero-copy array views sharing the parent's storage; the
    plan is cached by content fingerprint so re-sharding the same set
    (or an equal set built elsewhere) is a cache hit.
    """
    if num_shards == 1:
        return (node_set,)
    cache = resolve_cache(cache)

    def build() -> tuple[NodeSet, ...]:
        starts, ends = node_set.starts, node_set.ends
        shards: list[NodeSet] = []
        offset = 0
        for index, size in enumerate(
            shard_sizes(len(node_set), num_shards)
        ):
            shards.append(
                NodeSet.from_arrays(
                    starts[offset : offset + size],
                    ends[offset : offset + size],
                    name=f"{node_set.name}[shard {index}/{num_shards}]",
                )
            )
            offset += size
        return tuple(shards)

    if cache is None:
        return build()
    return cache.get_or_build(
        ("shard-plan", node_set.fingerprint, num_shards), build
    )


@dataclass(frozen=True, slots=True)
class ShardStatistics:
    """Per-shard summaries for one (ancestors, descendants) join.

    One entry of the list a sharded build produces; the merge layer
    (:mod:`repro.shard.merge`) combines ``K`` of these into the global
    answer.  ``join_count`` partitions the exact join over descendant
    shards with the *global* ancestor set, so the counts sum exactly.
    """

    index: int
    ancestors: NodeSet
    descendants: NodeSet
    ancestor_histogram: PLHistogram
    descendant_histogram: PLHistogram
    merged: np.ndarray  # (M, 2) merged intervals of the ancestor shard
    join_count: int


def build_shard_statistics(
    ancestors: NodeSet,
    descendants: NodeSet,
    workspace: Workspace,
    num_shards: int,
    num_buckets: int = 16,
    cache: SummaryCache | None = None,
) -> list[ShardStatistics]:
    """Build every shard's summaries for one join, ready to merge.

    All shards share the global workspace and bucket edges — the
    precondition for exact bucket-wise addition in the merge layer.
    """
    a_shards = shard_node_set(ancestors, num_shards, cache=cache)
    d_shards = shard_node_set(descendants, num_shards, cache=cache)
    statistics: list[ShardStatistics] = []
    for index, (a_shard, d_shard) in enumerate(zip(a_shards, d_shards)):
        statistics.append(
            ShardStatistics(
                index=index,
                ancestors=a_shard,
                descendants=d_shard,
                ancestor_histogram=build_ancestor_cached(
                    a_shard, workspace, num_buckets, cache=cache
                ),
                descendant_histogram=build_descendant_cached(
                    d_shard, workspace, num_buckets, cache=cache
                ),
                merged=merged_intervals_cached(a_shard, cache=cache),
                join_count=(
                    containment_join_size(ancestors, d_shard)
                    if len(d_shard)
                    else 0
                ),
            )
        )
    return statistics


def chunk_evenly(items: Sequence, num_chunks: int) -> list[list]:
    """Split ``items`` into ``num_chunks`` contiguous near-equal chunks.

    Order-preserving — concatenating the chunks reproduces ``items`` —
    which is what makes scatter/gather over estimator configurations
    bit-identical to a single local pass.  Trailing chunks may be empty
    when ``len(items) < num_chunks``.
    """
    chunks: list[list] = []
    offset = 0
    for size in shard_sizes(len(items), num_chunks):
        chunks.append(list(items[offset : offset + size]))
        offset += size
    return chunks
