"""The position model (Section 3.3).

For an element set ``S`` and a workspace ``[cmin, cmax]``:

* the *covering table* ``PMA(S)`` maps every position ``v`` to the number of
  elements whose region covers ``v`` (``e.start <= v <= e.end``);
* the *start table* ``PMD(S)`` maps every position ``v`` to 1 if some
  element starts at ``v`` and 0 otherwise (codes are distinct, so the count
  never exceeds 1).

Theorem 2: ``|A ⋈ D| = Σ_v PMA(A)[v] · PMD(D)[v]``.

``PMA`` is piecewise constant with only O(|S|) *turning points* — positions
where its value changes — which is what the T-tree index stores
(Section 5.3.1 and Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace


def covering_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMA`` array over every integer position of ``workspace``.

    ``result[v - workspace.lo]`` is the number of regions covering ``v``.
    Built in O(|S| + W) with a difference array.
    """
    width = workspace.width
    delta = np.zeros(width + 1, dtype=np.int64)
    for element in node_set:
        lo = max(element.start, workspace.lo)
        hi = min(element.end, workspace.hi)
        if lo > hi:
            continue
        delta[lo - workspace.lo] += 1
        delta[hi - workspace.lo + 1] -= 1
    return np.cumsum(delta[:-1])


def start_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMD`` 0/1 array over every integer position of ``workspace``."""
    table = np.zeros(workspace.width, dtype=np.int64)
    for element in node_set:
        if workspace.contains(element.start):
            table[element.start - workspace.lo] = 1
    return table


def inner_product_size(pma: np.ndarray, pmd: np.ndarray) -> int:
    """Theorem 2's right-hand side: ``Σ PMA[v] · PMD[v]``."""
    if pma.shape != pmd.shape:
        raise ValueError(
            f"tables must align: PMA has {pma.shape}, PMD has {pmd.shape}"
        )
    return int(np.dot(pma, pmd))


def turning_points(node_set: NodeSet) -> list[tuple[int, int]]:
    """The sparse encoding of ``PMA``: ``(position, value)`` change points.

    Returns pairs ``(K, PMA[K])`` for every position ``K`` where
    ``PMA[K] != PMA[K - 1]``; between consecutive turning points the table
    is constant.  There are at most ``2·|S|`` such points.

    ``PMA`` steps up at every ``e.start`` and steps down just after every
    ``e.end`` (position ``e.end`` itself is still covered).
    """
    if len(node_set) == 0:
        return []
    deltas: dict[int, int] = {}
    for element in node_set:
        deltas[element.start] = deltas.get(element.start, 0) + 1
        deltas[element.end + 1] = deltas.get(element.end + 1, 0) - 1
    value = 0
    points: list[tuple[int, int]] = []
    for position in sorted(deltas):
        change = deltas[position]
        if change == 0:
            continue
        value += change
        points.append((position, value))
    return points
