"""The position model (Section 3.3).

For an element set ``S`` and a workspace ``[cmin, cmax]``:

* the *covering table* ``PMA(S)`` maps every position ``v`` to the number of
  elements whose region covers ``v`` (``e.start <= v <= e.end``);
* the *start table* ``PMD(S)`` maps every position ``v`` to 1 if some
  element starts at ``v`` and 0 otherwise (codes are distinct, so the count
  never exceeds 1).

Theorem 2: ``|A ⋈ D| = Σ_v PMA(A)[v] · PMD(D)[v]``.

``PMA`` is piecewise constant with only O(|S|) *turning points* — positions
where its value changes — which is what the T-tree index stores
(Section 5.3.1 and Figure 4).

The public builders are numpy bulk operations (difference arrays filled
with ``np.add.at``, breakpoints aggregated with ``np.unique``/
``np.bincount``); the original per-element loops are retained as
``*_reference`` functions and stay the semantics of record — the property
suite asserts both paths agree bit for bit, and
:func:`repro.perf.reference_kernels` re-selects them package-wide for
benchmarking.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace


def covering_table_reference(
    node_set: NodeSet, workspace: Workspace
) -> np.ndarray:
    """Per-element loop implementation of :func:`covering_table`."""
    width = workspace.width
    delta = np.zeros(width + 1, dtype=np.int64)
    for element in node_set:
        lo = max(element.start, workspace.lo)
        hi = min(element.end, workspace.hi)
        if lo > hi:
            continue
        delta[lo - workspace.lo] += 1
        delta[hi - workspace.lo + 1] -= 1
    return np.cumsum(delta[:-1])


def covering_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMA`` array over every integer position of ``workspace``.

    ``result[v - workspace.lo]`` is the number of regions covering ``v``.
    Built in O(|S| + W) with a difference array.
    """
    if perf.reference_kernels_enabled():
        return covering_table_reference(node_set, workspace)
    width = workspace.width
    delta = np.zeros(width + 1, dtype=np.int64)
    lo = np.maximum(node_set.starts, workspace.lo)
    hi = np.minimum(node_set.ends, workspace.hi)
    valid = lo <= hi
    np.add.at(delta, lo[valid] - workspace.lo, 1)
    np.add.at(delta, hi[valid] - workspace.lo + 1, -1)
    return np.cumsum(delta[:-1])


def start_table_reference(
    node_set: NodeSet, workspace: Workspace
) -> np.ndarray:
    """Per-element loop implementation of :func:`start_table`."""
    table = np.zeros(workspace.width, dtype=np.int64)
    for element in node_set:
        if workspace.contains(element.start):
            table[element.start - workspace.lo] = 1
    return table


def start_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMD`` 0/1 array over every integer position of ``workspace``."""
    if perf.reference_kernels_enabled():
        return start_table_reference(node_set, workspace)
    table = np.zeros(workspace.width, dtype=np.int64)
    starts = node_set.starts
    inside = starts[(starts >= workspace.lo) & (starts <= workspace.hi)]
    table[inside - workspace.lo] = 1
    return table


def inner_product_size(pma: np.ndarray, pmd: np.ndarray) -> int:
    """Theorem 2's right-hand side: ``Σ PMA[v] · PMD[v]``."""
    if pma.shape != pmd.shape:
        raise ValueError(
            f"tables must align: PMA has {pma.shape}, PMD has {pmd.shape}"
        )
    return int(np.dot(pma, pmd))


def turning_points_reference(node_set: NodeSet) -> list[tuple[int, int]]:
    """Per-element loop implementation of :func:`turning_points`."""
    if len(node_set) == 0:
        return []
    deltas: dict[int, int] = {}
    for element in node_set:
        deltas[element.start] = deltas.get(element.start, 0) + 1
        deltas[element.end + 1] = deltas.get(element.end + 1, 0) - 1
    value = 0
    points: list[tuple[int, int]] = []
    for position in sorted(deltas):
        change = deltas[position]
        if change == 0:
            continue
        value += change
        points.append((position, value))
    return points


def turning_points(node_set: NodeSet) -> list[tuple[int, int]]:
    """The sparse encoding of ``PMA``: ``(position, value)`` change points.

    Returns pairs ``(K, PMA[K])`` for every position ``K`` where
    ``PMA[K] != PMA[K - 1]``; between consecutive turning points the table
    is constant.  There are at most ``2·|S|`` such points.

    ``PMA`` steps up at every ``e.start`` and steps down just after every
    ``e.end`` (position ``e.end`` itself is still covered).
    """
    if perf.reference_kernels_enabled():
        return turning_points_reference(node_set)
    if len(node_set) == 0:
        return []
    breakpoints = np.concatenate((node_set.starts, node_set.ends + 1))
    signs = np.concatenate(
        (
            np.ones(len(node_set), dtype=np.int64),
            -np.ones(len(node_set), dtype=np.int64),
        )
    )
    positions, inverse = np.unique(breakpoints, return_inverse=True)
    changes = np.bincount(
        inverse, weights=signs, minlength=len(positions)
    ).astype(np.int64)
    keep = changes != 0
    values = np.cumsum(changes[keep])
    return list(
        zip(positions[keep].tolist(), values.tolist())
    )
