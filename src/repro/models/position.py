"""The position model (Section 3.3).

For an element set ``S`` and a workspace ``[cmin, cmax]``:

* the *covering table* ``PMA(S)`` maps every position ``v`` to the number of
  elements whose region covers ``v`` (``e.start <= v <= e.end``);
* the *start table* ``PMD(S)`` maps every position ``v`` to 1 if some
  element starts at ``v`` and 0 otherwise (codes are distinct, so the count
  never exceeds 1).

Theorem 2: ``|A ⋈ D| = Σ_v PMA(A)[v] · PMD(D)[v]``.

``PMA`` is piecewise constant with only O(|S|) *turning points* — positions
where its value changes — which is what the T-tree index stores
(Section 5.3.1 and Figure 4).

The public builders are numpy bulk operations (difference arrays filled
with ``np.add.at``, breakpoints aggregated with ``np.unique``/
``np.bincount``); the original per-element loops are retained as
``*_reference`` functions and stay the semantics of record — the property
suite asserts both paths agree bit for bit, and
:func:`repro.perf.reference_kernels` re-selects them package-wide for
benchmarking.
"""

from __future__ import annotations

import numpy as np

from repro import perf
from repro.core.nodeset import NodeSet
from repro.core.workspace import Workspace


def covering_table_reference(
    node_set: NodeSet, workspace: Workspace
) -> np.ndarray:
    """Per-element loop implementation of :func:`covering_table`."""
    width = workspace.width
    delta = np.zeros(width + 1, dtype=np.int64)
    for element in node_set:
        lo = max(element.start, workspace.lo)
        hi = min(element.end, workspace.hi)
        if lo > hi:
            continue
        delta[lo - workspace.lo] += 1
        delta[hi - workspace.lo + 1] -= 1
    return np.cumsum(delta[:-1])


def covering_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMA`` array over every integer position of ``workspace``.

    ``result[v - workspace.lo]`` is the number of regions covering ``v``.
    Built in O(|S| + W) with a difference array.
    """
    if perf.reference_kernels_enabled():
        return covering_table_reference(node_set, workspace)
    width = workspace.width
    delta = np.zeros(width + 1, dtype=np.int64)
    lo = np.maximum(node_set.starts, workspace.lo)
    hi = np.minimum(node_set.ends, workspace.hi)
    valid = lo <= hi
    np.add.at(delta, lo[valid] - workspace.lo, 1)
    np.add.at(delta, hi[valid] - workspace.lo + 1, -1)
    return np.cumsum(delta[:-1])


def start_table_reference(
    node_set: NodeSet, workspace: Workspace
) -> np.ndarray:
    """Per-element loop implementation of :func:`start_table`."""
    table = np.zeros(workspace.width, dtype=np.int64)
    for element in node_set:
        if workspace.contains(element.start):
            table[element.start - workspace.lo] = 1
    return table


def start_table(node_set: NodeSet, workspace: Workspace) -> np.ndarray:
    """Dense ``PMD`` 0/1 array over every integer position of ``workspace``."""
    if perf.reference_kernels_enabled():
        return start_table_reference(node_set, workspace)
    table = np.zeros(workspace.width, dtype=np.int64)
    starts = node_set.starts
    inside = starts[(starts >= workspace.lo) & (starts <= workspace.hi)]
    table[inside - workspace.lo] = 1
    return table


def inner_product_size(pma: np.ndarray, pmd: np.ndarray) -> int:
    """Theorem 2's right-hand side: ``Σ PMA[v] · PMD[v]``."""
    if pma.shape != pmd.shape:
        raise ValueError(
            f"tables must align: PMA has {pma.shape}, PMD has {pmd.shape}"
        )
    return int(np.dot(pma, pmd))


def turning_points_reference(node_set: NodeSet) -> list[tuple[int, int]]:
    """Per-element loop implementation of :func:`turning_points`."""
    if len(node_set) == 0:
        return []
    deltas: dict[int, int] = {}
    for element in node_set:
        deltas[element.start] = deltas.get(element.start, 0) + 1
        deltas[element.end + 1] = deltas.get(element.end + 1, 0) - 1
    value = 0
    points: list[tuple[int, int]] = []
    for position in sorted(deltas):
        change = deltas[position]
        if change == 0:
            continue
        value += change
        points.append((position, value))
    return points


def turning_point_arrays(node_set: NodeSet) -> tuple[np.ndarray, np.ndarray]:
    """The sparse encoding of ``PMA`` as parallel position/value arrays.

    The array-native kernel behind :func:`turning_points`: every hot
    consumer (the T-tree's searchsorted probe arrays, bifocal's dense-run
    scan, the shard merge layer) wants the turning points columnar, so
    the sweep returns ``(positions, values)`` int64 arrays directly and
    the tuple-list API below is a zip adapter kept for compatibility and
    the reference parity suite.
    """
    if perf.reference_kernels_enabled():
        points = turning_points_reference(node_set)
        positions = np.array([k for k, __ in points], dtype=np.int64)
        values = np.array([v for __, v in points], dtype=np.int64)
        return positions, values
    empty = np.empty(0, dtype=np.int64)
    if len(node_set) == 0:
        return empty, empty
    size = len(node_set)
    breakpoints = np.concatenate((node_set.starts, node_set.ends + 1))
    signs = np.empty(2 * size, dtype=np.int64)
    signs[:size] = 1
    signs[size:] = -1
    # One fused event sweep: sort the ±1 events by position, integer-
    # accumulate the running cover count, then keep the last event of
    # each equal-position run (its running value is the table value at
    # that position) wherever the value actually changed.  This replaces
    # the earlier np.unique + float-weighted np.bincount pass with a
    # single argsort and one np.add.accumulate — no float round trip,
    # no inverse-index materialization.
    order = np.argsort(breakpoints, kind="stable")
    positions = breakpoints[order]
    running = np.add.accumulate(signs[order])
    last = np.empty(2 * size, dtype=bool)
    last[-1] = True
    last[:-1] = positions[1:] != positions[:-1]
    run_positions = positions[last]
    run_values = running[last]
    changed = np.empty(run_values.shape[0], dtype=bool)
    changed[0] = run_values[0] != 0
    changed[1:] = run_values[1:] != run_values[:-1]
    return run_positions[changed], run_values[changed]


def turning_points(node_set: NodeSet) -> list[tuple[int, int]]:
    """The sparse encoding of ``PMA``: ``(position, value)`` change points.

    Returns pairs ``(K, PMA[K])`` for every position ``K`` where
    ``PMA[K] != PMA[K - 1]``; between consecutive turning points the table
    is constant.  There are at most ``2·|S|`` such points.

    ``PMA`` steps up at every ``e.start`` and steps down just after every
    ``e.end`` (position ``e.end`` itself is still covered).  The
    per-point tuple materialization here is the only cost over
    :func:`turning_point_arrays` — hot paths take the arrays.
    """
    if perf.reference_kernels_enabled():
        return turning_points_reference(node_set)
    positions, values = turning_point_arrays(node_set)
    return list(zip(positions.tolist(), values.tolist()))
