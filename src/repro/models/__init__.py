"""The paper's two estimation models (Section 3).

* :mod:`repro.models.interval` — the interval model: an element set viewed
  as intervals when it plays the ancestor role (``IMA``) and as start-points
  when it plays the descendant role (``IMD``).  Theorem 1: join size equals
  the number of stabbing (interval, point) pairs.
* :mod:`repro.models.position` — the position model: a covering table
  ``PMA`` and a start table ``PMD`` over the workspace.  Theorem 2: join
  size equals the inner product ``Σ PMA[i]·PMD[i]``.

Both models assume the two joined sets are drawn from one region-coded tree
with distinct codes, and that the ancestor and descendant sets are disjoint
(different predicates) — which holds for every workload in the paper.
"""

from repro.models.interval import (
    interval_view,
    point_view,
    prepare_intervals,
    stabbing_pairs_count,
)
from repro.models.position import (
    covering_table,
    inner_product_size,
    start_table,
    turning_point_arrays,
    turning_points,
)

__all__ = [
    "covering_table",
    "inner_product_size",
    "interval_view",
    "point_view",
    "prepare_intervals",
    "stabbing_pairs_count",
    "start_table",
    "turning_point_arrays",
    "turning_points",
]
