"""The interval model (Section 3.2).

Each element set ``S`` has two one-dimensional views:

* ``IMA(S)`` — the *interval set*: element ``e`` becomes the interval
  ``[e.start, e.end]``.  Used when ``S`` is the ancestor operand.
* ``IMD(S)`` — the *point set*: element ``e`` becomes the point
  ``e.start``.  Used when ``S`` is the descendant operand.

Theorem 1: ``|A ⋈ D|`` equals the number of (interval, point) pairs from
``IMA(A) × IMD(D)`` where the point lies inside the interval.  This module
materializes both views and the theorem's right-hand side, which the test
suite checks against the exact join for random trees.
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet


def interval_view(node_set: NodeSet) -> list[tuple[int, int]]:
    """``IMA(S)``: the set's elements as ``(start, end)`` intervals."""
    return [e.as_interval() for e in node_set]


def point_view(node_set: NodeSet) -> np.ndarray:
    """``IMD(S)``: the set's elements as start-position points (sorted)."""
    return node_set.starts.copy()


def stabbing_pairs_count(
    intervals: NodeSet | list[tuple[int, int]],
    points: np.ndarray,
) -> int:
    """Number of (interval, point) pairs with the point inside the interval.

    Containment is inclusive (``start <= p <= end``); with distinct region
    codes and disjoint operand sets this equals the strict join condition,
    so by Theorem 1 it equals the containment join size.
    """
    if isinstance(intervals, NodeSet):
        starts = intervals.starts
        ends = intervals.sorted_ends
    else:
        starts = np.sort(np.array([s for s, _ in intervals], dtype=np.int64))
        ends = np.sort(np.array([e for _, e in intervals], dtype=np.int64))
    if len(starts) == 0 or len(points) == 0:
        return 0
    started = np.searchsorted(starts, points, side="right")
    ended = np.searchsorted(ends, points, side="left")
    return int((started - ended).sum())
