"""The interval model (Section 3.2).

Each element set ``S`` has two one-dimensional views:

* ``IMA(S)`` — the *interval set*: element ``e`` becomes the interval
  ``[e.start, e.end]``.  Used when ``S`` is the ancestor operand.
* ``IMD(S)`` — the *point set*: element ``e`` becomes the point
  ``e.start``.  Used when ``S`` is the descendant operand.

Theorem 1: ``|A ⋈ D|`` equals the number of (interval, point) pairs from
``IMA(A) × IMD(D)`` where the point lies inside the interval.  This module
materializes both views and the theorem's right-hand side, which the test
suite checks against the exact join for random trees.
"""

from __future__ import annotations

import numpy as np

from repro.core.nodeset import NodeSet


def interval_view(node_set: NodeSet) -> list[tuple[int, int]]:
    """``IMA(S)``: the set's elements as ``(start, end)`` intervals."""
    return [e.as_interval() for e in node_set]


def point_view(node_set: NodeSet) -> np.ndarray:
    """``IMD(S)``: the set's elements as start-position points (sorted)."""
    return node_set.starts.copy()


#: Sorted start and end code arrays, ready for the rank computation.
PreparedIntervals = tuple[np.ndarray, np.ndarray]


def prepare_intervals(
    intervals: NodeSet | list[tuple[int, int]] | PreparedIntervals,
) -> PreparedIntervals:
    """Sorted ``(starts, ends)`` arrays for :func:`stabbing_pairs_count`.

    Callers probing the same interval collection repeatedly should
    prepare once and pass the result back in — a plain interval list
    otherwise pays an O(n log n) conversion-and-sort on every call.
    ``NodeSet`` operands are free either way: their sorted views are
    cached on the set.
    """
    if isinstance(intervals, NodeSet):
        return intervals.starts, intervals.sorted_ends
    if (
        isinstance(intervals, tuple)
        and len(intervals) == 2
        and isinstance(intervals[0], np.ndarray)
    ):
        return intervals
    pairs = np.asarray(intervals, dtype=np.int64).reshape(-1, 2)
    return np.sort(pairs[:, 0]), np.sort(pairs[:, 1])


def stabbing_pairs_count(
    intervals: NodeSet | list[tuple[int, int]] | PreparedIntervals,
    points: np.ndarray,
) -> int:
    """Number of (interval, point) pairs with the point inside the interval.

    Containment is inclusive (``start <= p <= end``); with distinct region
    codes and disjoint operand sets this equals the strict join condition,
    so by Theorem 1 it equals the containment join size.

    ``intervals`` may be a node set, a raw ``(start, end)`` list, or the
    output of :func:`prepare_intervals` (preferred when probing the same
    collection with several point sets).
    """
    starts, ends = prepare_intervals(intervals)
    if len(starts) == 0 or len(points) == 0:
        return 0
    started = np.searchsorted(starts, points, side="right")
    ended = np.searchsorted(ends, points, side="left")
    return int((started - ended).sum())
