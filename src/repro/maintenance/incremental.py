"""Insert/delete-capable PL histogram.

Maintains the Table 1 statistics of one node set — in both join roles —
under element insertions and deletions, over a fixed workspace
partitioning.  Every update is O(buckets crossed); the materialized
histograms are always identical to a fresh
:class:`repro.estimators.pl_histogram.PLHistogram` build over the current
element multiset (a property the tests verify).
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.workspace import Workspace
from repro.estimators.pl_histogram import (
    LengthMode,
    PLBucket,
    PLHistogram,
)


class IncrementalPLHistogram:
    """PL statistics for one element set, maintained under updates.

    Args:
        workspace: fixed position domain; elements outside it are
            rejected (growing documents need a rebuild, as with any
            bounded histogram).
        num_buckets: fixed equal-width partitioning.
        length_mode: ancestor length statistic, as in the estimator.
    """

    def __init__(
        self,
        workspace: Workspace,
        num_buckets: int,
        length_mode: LengthMode = "clipped",
    ) -> None:
        if num_buckets < 1:
            raise EstimationError(f"need >= 1 bucket, got {num_buckets}")
        if length_mode not in ("clipped", "full"):
            raise EstimationError(f"unknown length_mode {length_mode!r}")
        self.workspace = workspace.validate()
        self.num_buckets = num_buckets
        self.length_mode: LengthMode = length_mode
        self._bounds = workspace.buckets(num_buckets)
        self._anc_counts = [0] * num_buckets
        self._anc_lengths = [0.0] * num_buckets
        self._desc_counts = [0] * num_buckets
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _bucket_span(self, element: Element) -> tuple[int, int]:
        if not (
            self.workspace.contains(element.start)
            and self.workspace.contains(element.end)
        ):
            raise EstimationError(
                f"element ({element.start}, {element.end}) outside the "
                f"histogram workspace {tuple(self.workspace)}"
            )
        return (
            self.workspace.bucket_of(element.start, self.num_buckets),
            self.workspace.bucket_of(element.end, self.num_buckets),
        )

    def _apply(self, element: Element, sign: int) -> None:
        first, last = self._bucket_span(element)
        for index in range(first, last + 1):
            self._anc_counts[index] += sign
            if self.length_mode == "clipped":
                portion = min(element.end, self._bounds[index].wse) - max(
                    element.start, self._bounds[index].wss
                )
            else:
                portion = element.length
            self._anc_lengths[index] += sign * portion
            if self._anc_counts[index] < 0:
                raise EstimationError(
                    "removal of an element that was never inserted"
                )
        self._desc_counts[first] += sign
        if self._desc_counts[first] < 0:
            raise EstimationError(
                "removal of an element that was never inserted"
            )
        self._size += sign

    def insert(self, element: Element) -> None:
        """Add one element to the maintained set."""
        self._apply(element, +1)

    def remove(self, element: Element) -> None:
        """Remove a previously inserted element.

        Removal is by value; removing an element that was never inserted
        corrupts no state for disjoint buckets but raises as soon as a
        counter would go negative.
        """
        self._apply(element, -1)

    def ancestor_histogram(self) -> PLHistogram:
        """The current statistics in the ancestor (interval) role."""
        buckets = [
            PLBucket(
                i,
                self._bounds[i].wss,
                self._bounds[i].wse,
                self._anc_counts[i],
                self._anc_lengths[i],
            )
            for i in range(self.num_buckets)
        ]
        return PLHistogram(buckets, "ancestor")

    def descendant_histogram(self) -> PLHistogram:
        """The current statistics in the descendant (point) role."""
        buckets = [
            PLBucket(
                i,
                self._bounds[i].wss,
                self._bounds[i].wse,
                self._desc_counts[i],
            )
            for i in range(self.num_buckets)
        ]
        return PLHistogram(buckets, "descendant")
