"""Reservoir sampling: a standing descendant sample for IM-DA-Est.

Re-drawing a fresh random sample per estimate (Algorithm 2) requires
random access to the whole descendant set.  Under a stream of insertions
— documents being loaded — a classic reservoir (Vitter's Algorithm R)
maintains a uniform ``k``-subset in O(1) amortized per insert, so the
optimizer can estimate at any moment from the standing sample.

The resulting estimator is the with-replacement-free IM-DA-Est over the
current reservoir, scaled by the number of elements seen so far; it stays
unbiased because the reservoir is uniform at every prefix of the stream.
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.index.stab import StabbingCounter


class ReservoirSample:
    """Uniform fixed-size sample of a stream of elements."""

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise EstimationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._items: list[Element] = []
        self._seen = 0

    def add(self, element: Element) -> None:
        """Offer one stream element to the reservoir (Algorithm R)."""
        self._seen += 1
        if len(self._items) < self.capacity:
            self._items.append(element)
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._items[slot] = element

    def extend(self, elements) -> None:
        for element in elements:
            self.add(element)

    @property
    def seen(self) -> int:
        """Number of stream elements offered so far."""
        return self._seen

    @property
    def sample(self) -> list[Element]:
        """The current reservoir contents (size ``min(seen, capacity)``)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def im_estimate(self, ancestors: NodeSet) -> float:
        """IM-DA-Est from the standing sample.

        ``X̂ = (seen / |reservoir|) · Σ_{d ∈ reservoir} ancA(d.start)`` —
        Algorithm 2 with the reservoir as the random sample.
        """
        if not self._items or len(ancestors) == 0:
            return 0.0
        counter = StabbingCounter(ancestors)
        total = sum(counter.count(d.start) for d in self._items)
        return total * self._seen / len(self._items)
