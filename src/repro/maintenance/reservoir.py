"""Reservoir sampling: a standing descendant sample for IM-DA-Est.

Re-drawing a fresh random sample per estimate (Algorithm 2) requires
random access to the whole descendant set.  Under a stream of insertions
— documents being loaded — a classic reservoir (Vitter's Algorithm R)
maintains a uniform ``k``-subset in O(1) amortized per insert, so the
optimizer can estimate at any moment from the standing sample.

Deletions are supported with *random pairing* (Gemulla, Lehner and
Haas, VLDB 2006): a deletion of a sampled element leaves a hole instead
of triggering a rescan, and the next insertions are "paired" against
the uncompensated deletions — each new element fills a hole with
probability ``d_in / (d_in + d_out)`` where ``d_in``/``d_out`` count
uncompensated deletions that were inside/outside the sample.  The
reservoir stays a uniform sample of the *current* population at every
step, and the add-only code path (no deletion ever issued) draws the
exact same random variates as classic Algorithm R, so historical
streams reproduce bit-identically.

The resulting estimator is the with-replacement-free IM-DA-Est over the
current reservoir, scaled by the current population size; it stays
unbiased because the reservoir is uniform at every prefix of the stream.
"""

from __future__ import annotations

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.nodeset import NodeSet
from repro.core.rng import SeedLike, make_rng
from repro.index.stab import StabbingCounter


class ReservoirSample:
    """Uniform fixed-size sample of a stream of inserts and deletes."""

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity < 1:
            raise EstimationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = make_rng(seed)
        self._items: list[Element] = []
        self._seen = 0
        self._live = 0
        self._holes_in = 0  # uncompensated deletions that were sampled
        self._holes_out = 0  # uncompensated deletions that were not

    def add(self, element: Element) -> None:
        """Offer one stream insertion (Algorithm R / random pairing)."""
        self._seen += 1
        self._live += 1
        holes = self._holes_in + self._holes_out
        if holes:
            # Pair the insertion against one uncompensated deletion: it
            # takes the deleted element's place in (or out of) the sample.
            if int(self._rng.integers(0, holes)) < self._holes_in:
                self._items.append(element)
                self._holes_in -= 1
            else:
                self._holes_out -= 1
            return
        if len(self._items) < self.capacity:
            self._items.append(element)
            return
        slot = int(self._rng.integers(0, self._live))
        if slot < self.capacity:
            self._items[slot] = element

    def remove(self, element: Element) -> None:
        """Delete one element from the sampled population (by value)."""
        if self._live == 0:
            raise EstimationError("remove from an empty population")
        self._live -= 1
        try:
            self._items.remove(element)
        except ValueError:
            self._holes_out += 1
        else:
            self._holes_in += 1

    def extend(self, elements) -> None:
        for element in elements:
            self.add(element)

    @property
    def seen(self) -> int:
        """Number of stream insertions offered so far."""
        return self._seen

    @property
    def live(self) -> int:
        """Current population size (insertions minus deletions)."""
        return self._live

    @property
    def sample(self) -> list[Element]:
        """The current reservoir contents (``<= min(live, capacity)``)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def im_estimate(self, ancestors: NodeSet) -> float:
        """IM-DA-Est from the standing sample.

        ``X̂ = (live / |reservoir|) · Σ_{d ∈ reservoir} ancA(d.start)`` —
        Algorithm 2 with the reservoir as the random sample.  On an
        insert-only stream ``live == seen`` and this is exactly the
        classic reservoir estimator.
        """
        if not self._items or len(ancestors) == 0:
            return 0.0
        counter = StabbingCounter(ancestors)
        total = sum(counter.count(d.start) for d in self._items)
        return total * self._live / len(self._items)
