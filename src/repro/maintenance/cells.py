"""Insert/delete-capable PH cell histogram.

The PH baseline's synopsis is a ``g × g`` grid of integer cell counts
(:func:`repro.estimators.ph_histogram.cell_histogram`).  Each element
touches exactly one cell — ``(bucket_of(start), bucket_of(end))`` — so
the grid is trivially maintainable under updates: O(1) per insert or
delete, and the maintained counts are *integer-identical* to a fresh
build over the current element multiset at every point in time.

This is the streaming counterpart of
:class:`repro.maintenance.incremental.IncrementalPLHistogram` for the
PH estimator family; :class:`repro.stream.LiveWorkspace` keeps one per
live tag.
"""

from __future__ import annotations

from collections import Counter

from repro.core.element import Element
from repro.core.errors import EstimationError
from repro.core.workspace import Workspace
from repro.estimators.ph_histogram import grid_side


class IncrementalCellHistogram:
    """PH grid-cell counts for one element set, maintained under updates.

    Args:
        workspace: fixed position domain; elements outside it are
            rejected (growing documents need a rebuild, as with any
            bounded histogram).
        num_cells: cell budget; the grid side is the largest square
            that fits, exactly as in the PH estimator.
    """

    def __init__(self, workspace: Workspace, num_cells: int = 25) -> None:
        self.workspace = workspace.validate()
        self.side = grid_side(num_cells)
        self._cells: Counter = Counter()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _cell_of(self, element: Element) -> tuple[int, int]:
        if not (
            self.workspace.contains(element.start)
            and self.workspace.contains(element.end)
        ):
            raise EstimationError(
                f"element ({element.start}, {element.end}) outside the "
                f"histogram workspace {tuple(self.workspace)}"
            )
        return (
            self.workspace.bucket_of(element.start, self.side),
            self.workspace.bucket_of(element.end, self.side),
        )

    def insert(self, element: Element) -> None:
        """Add one element to the maintained set (O(1))."""
        self._cells[self._cell_of(element)] += 1
        self._size += 1

    def remove(self, element: Element) -> None:
        """Remove a previously inserted element (O(1), by value)."""
        cell = self._cell_of(element)
        count = self._cells.get(cell, 0)
        if count <= 0:
            raise EstimationError(
                "removal of an element that was never inserted"
            )
        if count == 1:
            del self._cells[cell]
        else:
            self._cells[cell] = count - 1
        self._size -= 1

    def cell_histogram(self) -> Counter:
        """The current ``(column, row) -> count`` grid, as a fresh Counter.

        Cell counts are integer-identical to
        ``cell_histogram(rebuilt_set, workspace, side)`` over the current
        element multiset (iteration order may differ; compare as a dict).
        """
        return Counter(self._cells)
